//! Determinism of the discrete-event core, through the public API only.
//!
//! The event queue orders co-timed events by `(time, event rank,
//! scheduling sequence number)` — a total, run-independent order — so two
//! simulations of the same trace must pop the identical event sequence
//! and produce byte-identical reports (`ServingReport: PartialEq`), on
//! every policy, even when the trace is engineered so that many events
//! collide at the same instant.

use deca_serve::{
    AdapterId, Event, EventQueue, LinearCostModel, QosClass, Request, RequestTrace, ServingConfig,
    ServingSimulator, SharedPrefixChatSpec, TokenStream,
};

/// Heap tie-breaking is stable: co-timed events pop by rank (arrivals,
/// then preemption re-queues, then step completions), and equal-rank
/// events pop in scheduling order — on every run, regardless of push
/// interleaving.
#[test]
fn heap_tie_breaking_is_stable_across_runs() {
    let pop_order = |preemption_first: bool| -> Vec<(f64, u64)> {
        let mut q = EventQueue::new();
        // Two co-timed batches at t = 1.0 and t = 2.0, pushed in varying
        // interleavings; `seq` records true scheduling order.
        if preemption_first {
            q.push(1.0, Event::Preemption { request: 9 });
            q.push(2.0, Event::DecodeDone);
            q.push(1.0, Event::Arrival { request: 0 });
            q.push(1.0, Event::Arrival { request: 1 });
            q.push(2.0, Event::Arrival { request: 2 });
            q.push(1.0, Event::PrefillDone);
        } else {
            q.push(1.0, Event::Arrival { request: 0 });
            q.push(1.0, Event::PrefillDone);
            q.push(2.0, Event::Arrival { request: 2 });
            q.push(1.0, Event::Preemption { request: 9 });
            q.push(1.0, Event::Arrival { request: 1 });
            q.push(2.0, Event::DecodeDone);
        }
        std::iter::from_fn(|| q.pop())
            .map(|s| (s.at_s, u64::from(s.event.rank())))
            .collect()
    };
    // Both interleavings drain in the same (time, rank) order...
    let a = pop_order(true);
    let b = pop_order(false);
    assert_eq!(a, b);
    // ...which is: t=1 arrivals, t=1 preemption, t=1 step end, then t=2.
    assert_eq!(
        a,
        vec![(1.0, 0), (1.0, 0), (1.0, 1), (1.0, 2), (2.0, 0), (2.0, 2)]
    );
}

/// Equal-rank, equal-time events preserve scheduling order even at scale
/// (a heap sift could silently reorder them if `seq` were not in the
/// comparison key).
#[test]
fn co_timed_arrivals_pop_in_scheduling_order() {
    let mut q = EventQueue::new();
    for request in 0..1_000 {
        q.push(0.25, Event::Arrival { request });
    }
    let order: Vec<usize> = std::iter::from_fn(|| q.pop())
        .map(|s| match s.event {
            Event::Arrival { request } => request,
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    assert_eq!(order, (0..1_000).collect::<Vec<_>>());
}

/// A trace where every request arrives at the same instant — the maximal
/// event collision — simulates identically on repeated runs, for all
/// three policies (the paged one with a pool small enough to preempt).
#[test]
fn co_timed_arrival_traces_are_deterministic_on_every_policy() {
    let requests: Vec<Request> = (0..40)
        .map(|id| Request {
            id,
            arrival_s: 3.0, // all at once
            prompt_tokens: 48 + (id % 7) * 16,
            output_tokens: 8 + (id % 5) * 24,
            stream: TokenStream::unique(id),
            qos: if id % 3 == 0 {
                QosClass::Batch
            } else {
                QosClass::Interactive
            },
            adapter: AdapterId::BASE,
        })
        .collect();
    let trace = RequestTrace::new(requests);
    for config in [
        ServingConfig::continuous(16, 30_000),
        ServingConfig::static_batching(16, 30_000),
        ServingConfig::paged(16, 2_048, 16),
        ServingConfig::paged(16, 2_048, 16).with_prefix_sharing(true),
    ] {
        let run = || ServingSimulator::new(LinearCostModel::default_70b(), config).run(&trace);
        let first = run();
        assert_eq!(first, run(), "{} rerun diverged", config.scheduler);
        assert_eq!(first.completed() + first.rejected, trace.len());
        if config.scheduler == deca_serve::SchedulerKind::PagedContinuous {
            assert!(
                first.paged.expect("paged stats").preemptions > 0,
                "pool sized to exercise the preemption event path"
            );
        }
    }
}

/// The shared-prefix conversation workload — arrivals, cache hits,
/// evictions, preemptions all interleaving — stays deterministic
/// end to end.
#[test]
fn shared_prefix_serving_is_deterministic() {
    let trace = SharedPrefixChatSpec::fleet(4.0, 30, 23).generate();
    let config = ServingConfig::paged(12, 12_000, 16).with_prefix_sharing(true);
    let run = || ServingSimulator::new(LinearCostModel::default_70b(), config).run(&trace);
    let first = run();
    assert_eq!(first, run());
    assert_eq!(first, run(), "third run too");
    assert!(first.paged.expect("paged stats").prefix_hit_tokens > 0);
}
