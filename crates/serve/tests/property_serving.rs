//! Property-based tests for the serving schedulers.
//!
//! The scheduler contract, for any workload and any configuration:
//!
//! 1. the KV-cache budget is never exceeded (neither reservations nor
//!    actual occupancy),
//! 2. requests are conserved: every request is either completed or
//!    rejected, and everything admitted completes,
//! 3. runs are deterministic for a fixed trace,
//! 4. latencies are physically sane (first token after arrival, completion
//!    not before the first token),
//!
//! plus the regression the subsystem exists to show: on a bursty trace,
//! static batching's tail latency is no better than continuous batching's.

use deca_serve::{
    simulate_fleet_with, ArrivalProcess, LengthDistribution, LinearCostModel, RequestRecord,
    SchedulerKind, ServingConfig, ServingSimulator, SloTarget, WorkloadSpec,
};
use proptest::prelude::*;

fn workload(seed: u64, rate_x10: u32, requests: usize, bursty: bool) -> WorkloadSpec {
    let rate = f64::from(rate_x10) / 10.0;
    let arrivals = if bursty {
        ArrivalProcess::Bursty {
            base_rate: rate * 0.2,
            burst_rate: rate * 4.0,
            burst_secs: 3.0,
            period_secs: 15.0,
        }
    } else {
        ArrivalProcess::Poisson { rate_per_sec: rate }
    };
    WorkloadSpec {
        arrivals,
        prompt_lengths: LengthDistribution::Uniform { min: 8, max: 640 },
        output_lengths: LengthDistribution::Uniform { min: 1, max: 72 },
        requests,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants 1–4 for continuous batching across random workloads,
    /// batch limits and KV budgets (including budgets small enough to
    /// force rejections and head-of-line waits).
    #[test]
    fn continuous_batching_invariants(
        seed in 0u64..10_000,
        rate_x10 in 2u32..400,
        requests in 4usize..120,
        max_batch in 1usize..32,
        budget in 600usize..60_000,
        bursty in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, bursty).generate();
        let config = ServingConfig::continuous(max_batch, budget);
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
        let report = sim.run(&trace);

        // 1. KV budget respected at every instant.
        prop_assert!(report.peak_kv_reserved_tokens <= budget);
        prop_assert!(report.peak_kv_occupied_tokens <= report.peak_kv_reserved_tokens);
        // 2. Conservation.
        prop_assert_eq!(report.completed() + report.rejected, requests);
        prop_assert_eq!(report.admitted, report.completed());
        // Batch limit respected.
        prop_assert!(report.peak_batch <= max_batch);
        // 4. Physical sanity per record.
        for r in &report.records {
            prop_assert!(r.first_token_s > r.arrival_s);
            prop_assert!(r.completion_s >= r.first_token_s);
        }
        // 3. Determinism: an identical replica replays identically.
        let mut again = ServingSimulator::new(LinearCostModel::default_70b(), config);
        prop_assert_eq!(again.run(&trace), report);
    }

    /// The same invariants hold for the static-batching baseline.
    #[test]
    fn static_batching_invariants(
        seed in 0u64..10_000,
        rate_x10 in 2u32..400,
        requests in 4usize..120,
        max_batch in 1usize..32,
        budget in 600usize..60_000,
    ) {
        let trace = workload(seed, rate_x10, requests, false).generate();
        let config = ServingConfig::static_batching(max_batch, budget);
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
        let report = sim.run(&trace);

        prop_assert!(report.peak_kv_reserved_tokens <= budget);
        prop_assert_eq!(report.completed() + report.rejected, requests);
        prop_assert_eq!(report.admitted, report.completed());
        prop_assert!(report.peak_batch <= max_batch);

        let mut again = ServingSimulator::new(LinearCostModel::default_70b(), config);
        prop_assert_eq!(again.run(&trace), report);
    }

    /// Regression companion to the `exponential_gap` clamp: generated
    /// traces are physically sane for extreme seeds and rates — every
    /// timestamp is finite and non-negative, timestamps are monotone, and
    /// every inter-arrival gap is finite and non-negative.
    #[test]
    fn traces_have_finite_monotone_timestamps(
        seed in 0u64..u64::MAX,
        rate_exp in 0u32..10,
        bursty in proptest::prop::bool::ANY,
    ) {
        // Rates from 1e-3 to 1e6 requests/sec: trickle to absurd overload.
        let rate = 10f64.powi(i32::try_from(rate_exp).unwrap() - 3);
        let arrivals = if bursty {
            ArrivalProcess::Bursty {
                base_rate: 0.0,
                burst_rate: rate * 5.0,
                burst_secs: 0.125,
                period_secs: 60.0,
            }
        } else {
            ArrivalProcess::Poisson { rate_per_sec: rate }
        };
        let trace = WorkloadSpec {
            arrivals,
            prompt_lengths: LengthDistribution::Fixed(32),
            output_lengths: LengthDistribution::Fixed(8),
            requests: 64,
            seed,
        }
        .generate();
        prop_assert_eq!(trace.len(), 64);
        let mut previous = 0.0f64;
        for request in trace.requests() {
            let t = request.arrival_s;
            prop_assert!(t.is_finite() && t >= 0.0, "timestamp {t}");
            let gap = t - previous;
            prop_assert!(gap.is_finite() && gap >= 0.0, "gap {gap}");
            previous = t;
        }
    }

    /// Round-robin fleet runs conserve the trace: with a budget that
    /// rejects nothing, every request completes on exactly one replica
    /// (`records().len() == trace.len()`), for any replica count.
    #[test]
    fn fleet_runs_conserve_requests(
        seed in 0u64..10_000,
        replicas in 1usize..9,
        requests in 1usize..100,
    ) {
        let trace = workload(seed, 25, requests, false).generate();
        let config = ServingConfig::continuous(8, 1_000_000);
        let fleet = simulate_fleet_with(
            LinearCostModel::default_70b,
            &config,
            replicas,
            &trace,
        );
        prop_assert_eq!(fleet.rejected(), 0);
        let records = fleet.records();
        prop_assert_eq!(records.len(), trace.len());
        // The union of replica records is exactly the trace's id set.
        let mut ids: Vec<usize> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..requests).collect::<Vec<_>>());
    }

    /// Rejection happens exactly when a request's whole KV footprint
    /// exceeds the budget — never for requests that could run alone.
    #[test]
    fn rejections_are_exactly_the_oversized_requests(
        seed in 0u64..10_000,
        budget in 100usize..900,
    ) {
        let trace = workload(seed, 30, 40, false).generate();
        let config = ServingConfig::continuous(8, budget);
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
        let report = sim.run(&trace);
        let oversized = trace
            .requests()
            .iter()
            .filter(|r| r.kv_tokens_at_completion() > budget)
            .count();
        prop_assert_eq!(report.rejected, oversized);
        // Completed ids and oversized ids partition the trace.
        for r in &report.records {
            let request = trace.requests()[r.id];
            prop_assert!(request.kv_tokens_at_completion() <= budget);
        }
    }
}

/// Regression: on a bursty trace, the static-batching baseline's p99 tail
/// (TTFT and end-to-end) is at least as bad as continuous batching's, and
/// its SLO goodput no better. This is the motivating result of the
/// subsystem — admission at token boundaries absorbs bursts that
/// run-to-completion batching serializes.
#[test]
fn static_batching_tail_is_no_better_than_continuous_on_a_bursty_trace() {
    let trace = WorkloadSpec::bursty_chat(3.0, 240, 77).generate();
    let budget = 60_000;
    let run = |kind: SchedulerKind| {
        let config = ServingConfig::continuous(16, budget).with_scheduler(kind);
        ServingSimulator::new(LinearCostModel::default_70b(), config).run(&trace)
    };
    let continuous = run(SchedulerKind::ContinuousBatching);
    let static_ = run(SchedulerKind::StaticBatching);

    let cm = continuous.metrics();
    let sm = static_.metrics();
    assert!(
        sm.ttft.p99_s >= cm.ttft.p99_s,
        "static p99 TTFT {:.2}s vs continuous {:.2}s",
        sm.ttft.p99_s,
        cm.ttft.p99_s
    );
    assert!(
        sm.e2e.p99_s >= cm.e2e.p99_s,
        "static p99 E2E {:.2}s vs continuous {:.2}s",
        sm.e2e.p99_s,
        cm.e2e.p99_s
    );

    let slo = SloTarget {
        ttft_s: 2.0,
        tpot_s: 0.08,
    };
    let continuous_goodput = continuous.goodput_rps(&slo);
    let static_goodput = static_.goodput_rps(&slo);
    assert!(
        continuous_goodput >= static_goodput,
        "continuous goodput {continuous_goodput:.2} rps vs static {static_goodput:.2} rps"
    );
    // And the win is strict on this trace: bursts pile requests behind
    // run-to-completion batches.
    assert!(
        sm.ttft.p99_s > 1.5 * cm.ttft.p99_s,
        "expected a clear tail gap, got static {:.2}s vs continuous {:.2}s",
        sm.ttft.p99_s,
        cm.ttft.p99_s
    );
}

/// TPOT under static batching is never worse per request than under
/// continuous batching *for the same completed request population shape*:
/// static batches never take prefill interruptions mid-decode. (Sanity
/// check of the modeled trade-off rather than a universal theorem, so it
/// runs on one representative trace.)
#[test]
fn continuous_batching_trades_tpot_for_ttft_on_bursts() {
    let trace = WorkloadSpec::bursty_chat(3.0, 240, 78).generate();
    let run = |kind: SchedulerKind| {
        let config = ServingConfig::continuous(16, 60_000).with_scheduler(kind);
        ServingSimulator::new(LinearCostModel::default_70b(), config).run(&trace)
    };
    let continuous = run(SchedulerKind::ContinuousBatching);
    let static_ = run(SchedulerKind::StaticBatching);
    let mean = |records: &[RequestRecord]| {
        let sum: f64 = records.iter().map(RequestRecord::tpot_s).sum();
        sum / records.len() as f64
    };
    // Continuous decode streams are interrupted by incoming prefills, so
    // their mean TPOT is at least static's...
    assert!(mean(&continuous.records) >= mean(&static_.records));
    // ...but the TTFT win dwarfs it at the tail (checked above), which is
    // exactly the continuous-batching bet.
    assert!(continuous.metrics().ttft.p99_s <= static_.metrics().ttft.p99_s);
}
