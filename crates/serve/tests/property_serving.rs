//! Property-based tests for the serving schedulers.
//!
//! The scheduler contract, for any workload and any configuration:
//!
//! 1. the KV-cache budget is never exceeded (neither reservations nor
//!    actual occupancy),
//! 2. requests are conserved: every request is either completed or
//!    rejected, and everything admitted completes,
//! 3. runs are deterministic for a fixed trace,
//! 4. latencies are physically sane (first token after arrival, completion
//!    not before the first token),
//!
//! plus the regression the subsystem exists to show: on a bursty trace,
//! static batching's tail latency is no better than continuous batching's.
//!
//! The paged-KV subsystem adds its own contract ([`deca_serve::kv`] and
//! [`deca_serve::prefix`] document the invariants):
//!
//! 5. no block is ever double-freed, and `allocated == 0` after every run
//!    drains (sequences retired, prefix cache flushed),
//! 6. ref-counts of shared prefix blocks return to zero once the sharers
//!    and the cache release them,
//! 7. a paged run with `BlockSize = 1` and no prefix sharing reproduces
//!    the reserve-up-front scheduler's completion and rejection sets,
//! 8. paged runs conserve requests and respect the pool even under heavy
//!    preemption.
//!
//! The tiered-offload subsystem ([`deca_serve::tier`]) adds:
//!
//! 9. tiered runs conserve requests too, no tier ever holds more blocks
//!    than its capacity, and every swap-out is matched by a swap-in,
//! 10. the degenerate configs are exact: a zero-capacity tier reproduces
//!     the recompute-only paged run bit for bit, and a zero-cost KV ship
//!     leaves every record untouched.
//!
//! The batch-step axes (chunked prefill and speculative decoding,
//! [`deca_serve::ServingConfig::with_chunked_prefill`] /
//! [`deca_serve::SpeculationSpec`]) add:
//!
//! 11. the degenerate configs are bit-exact: an infinite chunk budget plus
//!     speculation off reproduces the plain run on every policy, prefix
//!     sharing on or off (the equivalence suite in
//!     `scheduler/equivalence_tests.rs` additionally pins the event core
//!     against the reference loop on the live axes),
//! 12. speculation never changes *what* is served: token totals and the
//!     completion set match the plain run for any acceptance rate, and at
//!     acceptance rate 1.0 the burst count never exceeds the plain run's
//!     decode-step count,
//! 13. chunk boundaries conserve prompt tokens: every admitted prompt
//!     token passes through at least one chunk, even under
//!     preemption-by-recompute and swap-tier pressure that force chunked
//!     prefill passes to restart.

use std::collections::HashSet;

use deca_serve::{
    simulate_fleet_with, ArrivalProcess, BlockAllocator, KvShipSpec, KvTierModel, KvTierSpec,
    LengthDistribution, LinearCostModel, PrefixCache, RequestRecord, SchedulerKind, ServingConfig,
    ServingSimulator, SharedPrefixChatSpec, SloTarget, SpeculationSpec, TokenStream, WorkloadSpec,
};
use proptest::prelude::*;

fn workload(seed: u64, rate_x10: u32, requests: usize, bursty: bool) -> WorkloadSpec {
    let rate = f64::from(rate_x10) / 10.0;
    let arrivals = if bursty {
        ArrivalProcess::Bursty {
            base_rate: rate * 0.2,
            burst_rate: rate * 4.0,
            burst_secs: 3.0,
            period_secs: 15.0,
        }
    } else {
        ArrivalProcess::Poisson { rate_per_sec: rate }
    };
    WorkloadSpec {
        arrivals,
        prompt_lengths: LengthDistribution::Uniform { min: 8, max: 640 },
        output_lengths: LengthDistribution::Uniform { min: 1, max: 72 },
        requests,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants 1–4 for continuous batching across random workloads,
    /// batch limits and KV budgets (including budgets small enough to
    /// force rejections and head-of-line waits).
    #[test]
    fn continuous_batching_invariants(
        seed in 0u64..10_000,
        rate_x10 in 2u32..400,
        requests in 4usize..120,
        max_batch in 1usize..32,
        budget in 600usize..60_000,
        bursty in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, bursty).generate();
        let config = ServingConfig::continuous(max_batch, budget);
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
        let report = sim.run(&trace);

        // 1. KV budget respected at every instant.
        prop_assert!(report.peak_kv_reserved_tokens <= budget);
        prop_assert!(report.peak_kv_occupied_tokens <= report.peak_kv_reserved_tokens);
        // 2. Conservation.
        prop_assert_eq!(report.completed() + report.rejected, requests);
        prop_assert_eq!(report.admitted, report.completed());
        // Batch limit respected.
        prop_assert!(report.peak_batch <= max_batch);
        // 4. Physical sanity per record.
        for r in &report.records {
            prop_assert!(r.first_token_s > r.arrival_s);
            prop_assert!(r.completion_s >= r.first_token_s);
        }
        // 3. Determinism: an identical replica replays identically.
        let mut again = ServingSimulator::new(LinearCostModel::default_70b(), config);
        prop_assert_eq!(again.run(&trace), report);
    }

    /// The same invariants hold for the static-batching baseline.
    #[test]
    fn static_batching_invariants(
        seed in 0u64..10_000,
        rate_x10 in 2u32..400,
        requests in 4usize..120,
        max_batch in 1usize..32,
        budget in 600usize..60_000,
    ) {
        let trace = workload(seed, rate_x10, requests, false).generate();
        let config = ServingConfig::static_batching(max_batch, budget);
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
        let report = sim.run(&trace);

        prop_assert!(report.peak_kv_reserved_tokens <= budget);
        prop_assert_eq!(report.completed() + report.rejected, requests);
        prop_assert_eq!(report.admitted, report.completed());
        prop_assert!(report.peak_batch <= max_batch);

        let mut again = ServingSimulator::new(LinearCostModel::default_70b(), config);
        prop_assert_eq!(again.run(&trace), report);
    }

    /// Regression companion to the `exponential_gap` clamp: generated
    /// traces are physically sane for extreme seeds and rates — every
    /// timestamp is finite and non-negative, timestamps are monotone, and
    /// every inter-arrival gap is finite and non-negative.
    #[test]
    fn traces_have_finite_monotone_timestamps(
        seed in 0u64..u64::MAX,
        rate_exp in 0u32..10,
        bursty in proptest::prop::bool::ANY,
    ) {
        // Rates from 1e-3 to 1e6 requests/sec: trickle to absurd overload.
        let rate = 10f64.powi(i32::try_from(rate_exp).unwrap() - 3);
        let arrivals = if bursty {
            ArrivalProcess::Bursty {
                base_rate: 0.0,
                burst_rate: rate * 5.0,
                burst_secs: 0.125,
                period_secs: 60.0,
            }
        } else {
            ArrivalProcess::Poisson { rate_per_sec: rate }
        };
        let trace = WorkloadSpec {
            arrivals,
            prompt_lengths: LengthDistribution::Fixed(32),
            output_lengths: LengthDistribution::Fixed(8),
            requests: 64,
            seed,
        }
        .generate();
        prop_assert_eq!(trace.len(), 64);
        let mut previous = 0.0f64;
        for request in trace.requests() {
            let t = request.arrival_s;
            prop_assert!(t.is_finite() && t >= 0.0, "timestamp {t}");
            let gap = t - previous;
            prop_assert!(gap.is_finite() && gap >= 0.0, "gap {gap}");
            previous = t;
        }
    }

    /// Round-robin fleet runs conserve the trace: with a budget that
    /// rejects nothing, every request completes on exactly one replica
    /// (`records().len() == trace.len()`), for any replica count.
    #[test]
    fn fleet_runs_conserve_requests(
        seed in 0u64..10_000,
        replicas in 1usize..9,
        requests in 1usize..100,
    ) {
        let trace = workload(seed, 25, requests, false).generate();
        let config = ServingConfig::continuous(8, 1_000_000);
        let fleet = simulate_fleet_with(
            LinearCostModel::default_70b,
            &config,
            replicas,
            &trace,
        );
        prop_assert_eq!(fleet.rejected(), 0);
        let records = fleet.records();
        prop_assert_eq!(records.len(), trace.len());
        // The union of replica records is exactly the trace's id set.
        let mut ids: Vec<usize> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..requests).collect::<Vec<_>>());
    }

    /// Rejection happens exactly when a request's whole KV footprint
    /// exceeds the budget — never for requests that could run alone.
    #[test]
    fn rejections_are_exactly_the_oversized_requests(
        seed in 0u64..10_000,
        budget in 100usize..900,
    ) {
        let trace = workload(seed, 30, 40, false).generate();
        let config = ServingConfig::continuous(8, budget);
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
        let report = sim.run(&trace);
        let oversized = trace
            .requests()
            .iter()
            .filter(|r| r.kv_tokens_at_completion() > budget)
            .count();
        prop_assert_eq!(report.rejected, oversized);
        // Completed ids and oversized ids partition the trace.
        for r in &report.records {
            let request = trace.requests()[r.id];
            prop_assert!(request.kv_tokens_at_completion() <= budget);
        }
    }

    /// Invariant 5 at the allocator level, against a shadow reference-count
    /// model driven by a random op stream: alloc/fork/free/cow always agree
    /// with the model, a block is never handed out twice concurrently, and
    /// releasing every outstanding reference drains the pool to zero.
    #[test]
    fn allocator_matches_a_shadow_refcount_model(
        ops in proptest::collection::vec(0u8..4, 1..120),
        total_blocks in 1usize..24,
    ) {
        let mut pool = BlockAllocator::new(4, total_blocks);
        // Outstanding references the "application" holds, as a multiset.
        let mut held: Vec<usize> = Vec::new();
        for (step, op) in ops.iter().enumerate() {
            match op % 4 {
                0 => {
                    if let Some(block) = pool.alloc() {
                        prop_assert_eq!(pool.ref_count(block), 1);
                        held.push(block);
                    } else {
                        prop_assert_eq!(pool.free_blocks(), 0, "alloc only fails when full");
                    }
                }
                1 if !held.is_empty() => {
                    let block = held[step % held.len()];
                    pool.fork(block);
                    held.push(block);
                }
                2 if !held.is_empty() => {
                    let block = held.swap_remove(step % held.len());
                    pool.free(block);
                }
                3 if !held.is_empty() => {
                    let i = step % held.len();
                    if let Some(block) = pool.cow(held[i]) {
                        held[i] = block;
                        prop_assert!(pool.ref_count(block) >= 1);
                    }
                }
                _ => {}
            }
            // The allocator's counts always agree with the shadow multiset.
            let distinct: HashSet<usize> = held.iter().copied().collect();
            prop_assert_eq!(pool.allocated_blocks(), distinct.len());
            prop_assert_eq!(pool.free_blocks(), total_blocks - distinct.len());
            for &block in &distinct {
                let expected = held.iter().filter(|&&b| b == block).count() as u32;
                prop_assert_eq!(pool.ref_count(block), expected);
            }
        }
        // Releasing every outstanding reference drains the pool.
        for block in held {
            pool.free(block);
        }
        prop_assert_eq!(pool.allocated_blocks(), 0);
        prop_assert_eq!(pool.free_blocks(), total_blocks);
    }

    /// Invariants 5 and 6 at the prefix-cache level: sequences sharing
    /// session prefixes insert and look up against one allocator; after the
    /// sequences release their references and the cache is flushed, every
    /// ref-count is zero and the pool has fully drained.
    #[test]
    fn shared_prefix_refcounts_return_to_zero_after_drain(
        sessions in 1usize..5,
        turns in 1usize..4,
        block_size in 1usize..9,
        seed in 0u64..1_000,
    ) {
        let mut pool = BlockAllocator::new(block_size, 512);
        let mut cache = PrefixCache::new(block_size);
        let mut held: Vec<Vec<usize>> = Vec::new();
        for session in 0..sessions {
            let stream = TokenStream::session(seed ^ session as u64, 8);
            for turn in 0..turns {
                let prompt = 8 + (turn + 1) * (5 + session);
                let ids = stream.token_ids(prompt);
                // Look up the cached prefix, allocate the remainder.
                let mut blocks = cache.lookup(&ids, &mut pool);
                while blocks.len() < pool.blocks_for_tokens(prompt) {
                    blocks.push(pool.alloc().expect("512-block pool is plenty"));
                }
                cache.insert(&ids, &blocks, &mut pool);
                // Every shared block is referenced by cache + this holder.
                for &block in &blocks {
                    prop_assert!(pool.ref_count(block) >= 1);
                }
                held.push(blocks);
            }
        }
        // Sequences retire... (releases route through the cache so its
        // shared-block bookkeeping resyncs — the `PrefixCache::release`
        // contract; non-resident private blocks degrade to a plain free.)
        for blocks in held {
            for block in blocks {
                cache.release(block, &mut pool);
            }
        }
        // ...the cache still owns its resident blocks...
        prop_assert_eq!(pool.allocated_blocks(), cache.resident_blocks());
        // ...and flushing it drains the pool to zero.
        cache.flush(&mut pool);
        prop_assert_eq!(cache.resident_blocks(), 0);
        prop_assert_eq!(pool.allocated_blocks(), 0);
        prop_assert_eq!(pool.free_blocks(), 512);
    }

    /// Invariant 7: with one-token blocks and no prefix sharing, the paged
    /// scheduler's admission gate degenerates to token-exact allocation, so
    /// it completes and rejects exactly the same request sets as the
    /// reserve-up-front scheduler (timings differ: paged admits earlier).
    #[test]
    fn paged_block_size_one_reproduces_the_reserve_up_front_completion_set(
        seed in 0u64..10_000,
        rate_x10 in 2u32..300,
        requests in 4usize..80,
        max_batch in 1usize..16,
        budget in 600usize..20_000,
    ) {
        let trace = workload(seed, rate_x10, requests, false).generate();
        let mut reserve = ServingSimulator::new(
            LinearCostModel::default_70b(),
            ServingConfig::continuous(max_batch, budget),
        );
        let reserve_report = reserve.run(&trace);
        let mut paged = ServingSimulator::new(
            LinearCostModel::default_70b(),
            ServingConfig::paged(max_batch, budget, 1),
        );
        let paged_report = paged.run(&trace);

        let ids = |records: &[RequestRecord]| -> Vec<usize> {
            records.iter().map(|r| r.id).collect()
        };
        prop_assert_eq!(ids(&reserve_report.records), ids(&paged_report.records));
        prop_assert_eq!(reserve_report.rejected, paged_report.rejected);
        prop_assert_eq!(paged_report.completed() + paged_report.rejected, requests);
    }

    /// Invariant 8: paged runs (with sharing, odd block sizes, pools small
    /// enough to force preemption) conserve requests, never over-allocate
    /// the pool, stay deterministic, and keep records physically sane.
    #[test]
    fn paged_scheduler_invariants_under_preemption(
        seed in 0u64..10_000,
        sessions in 1usize..12,
        max_batch in 1usize..16,
        blocks in 40usize..400,
        block_size in 1usize..33,
        sharing in proptest::prop::bool::ANY,
    ) {
        let spec = SharedPrefixChatSpec {
            turns_per_session: 3,
            system_prompt_tokens: 48,
            user_tokens: LengthDistribution::Uniform { min: 4, max: 40 },
            output_tokens: LengthDistribution::Uniform { min: 1, max: 48 },
            think_time_s: 4.0,
            ..SharedPrefixChatSpec::fleet(2.0, sessions, seed)
        };
        let trace = spec.generate();
        let config = ServingConfig::paged(max_batch, blocks * block_size, block_size)
            .with_prefix_sharing(sharing);
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
        let report = sim.run(&trace);

        prop_assert_eq!(report.completed() + report.rejected, trace.len());
        prop_assert_eq!(report.admitted, report.completed());
        let paged = report.paged.expect("paged run");
        prop_assert_eq!(paged.total_blocks, blocks);
        prop_assert!(paged.peak_allocated_blocks <= paged.total_blocks);
        prop_assert!(report.peak_batch <= max_batch);
        prop_assert!(!sharing || paged.cache_peak_resident_blocks <= paged.total_blocks);
        prop_assert!(paged.prefix_hit_tokens == 0 || sharing);
        for r in &report.records {
            prop_assert!(r.first_token_s > r.arrival_s);
            prop_assert!(r.completion_s >= r.first_token_s);
        }
        let mut again = ServingSimulator::new(LinearCostModel::default_70b(), config);
        prop_assert_eq!(again.run(&trace), report);
    }

    /// Invariant 9: tiered paged runs under swap-preemption pressure
    /// conserve requests, never hold more blocks in a tier than its
    /// capacity, match every swap-out with a swap-in by the time the run
    /// drains, stay deterministic, and keep records physically sane.
    #[test]
    fn tiered_swap_preemption_conserves_and_respects_tier_capacity(
        seed in 0u64..10_000,
        sessions in 2usize..10,
        max_batch in 2usize..12,
        blocks in 24usize..96,
        ddr_blocks in 0usize..192,
        disk_blocks in 0usize..192,
    ) {
        let spec = SharedPrefixChatSpec {
            turns_per_session: 2,
            system_prompt_tokens: 48,
            user_tokens: LengthDistribution::Uniform { min: 16, max: 64 },
            output_tokens: LengthDistribution::Uniform { min: 8, max: 96 },
            think_time_s: 2.0,
            ..SharedPrefixChatSpec::fleet(4.0, sessions, seed)
        };
        let trace = spec.generate();
        let block_size = 16;
        let tiers = KvTierModel {
            block_kv_bytes: 256.0 * 1024.0,
            ddr: KvTierSpec::ddr(ddr_blocks),
            disk: KvTierSpec::nvme(disk_blocks),
        };
        let config = ServingConfig::paged(max_batch, blocks * block_size, block_size)
            .with_prefix_sharing(true)
            .with_tiers(tiers);
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
        let report = sim.run(&trace);

        prop_assert_eq!(report.completed() + report.rejected, trace.len());
        prop_assert_eq!(report.admitted, report.completed());
        let paged = report.paged.expect("paged run");
        prop_assert!(paged.peak_allocated_blocks <= paged.total_blocks);
        // No tier ever exceeds its capacity — demotions and swap
        // reservations included.
        prop_assert!(paged.peak_ddr_blocks <= ddr_blocks);
        prop_assert!(paged.peak_disk_blocks <= disk_blocks);
        // Every swapped-out sequence swapped back in and retired.
        prop_assert_eq!(paged.swap_ins, paged.swap_outs);
        prop_assert!(paged.swap_outs <= paged.preemptions);
        for r in &report.records {
            prop_assert!(r.first_token_s > r.arrival_s);
            prop_assert!(r.completion_s >= r.first_token_s);
        }
        let mut again = ServingSimulator::new(LinearCostModel::default_70b(), config);
        prop_assert_eq!(again.run(&trace), report);
    }

    /// Invariant 10, the degenerate-config guarantee the subsystem's
    /// equivalence story rests on: a zero-capacity DDR tier reproduces
    /// the plain recompute-only paged run *bit for bit*, and a zero-cost
    /// (infinite-bandwidth, zero-latency) KV ship leaves every record
    /// untouched — only the transfer counter moves.
    #[test]
    fn degenerate_tiers_and_free_shipping_reproduce_the_plain_paged_run(
        seed in 0u64..10_000,
        sessions in 1usize..10,
        max_batch in 1usize..12,
        blocks in 24usize..160,
        sharing in proptest::prop::bool::ANY,
    ) {
        let spec = SharedPrefixChatSpec {
            turns_per_session: 2,
            ..SharedPrefixChatSpec::fleet(3.0, sessions, seed)
        };
        let trace = spec.generate();
        let block_size = 16;
        let base = ServingConfig::paged(max_batch, blocks * block_size, block_size)
            .with_prefix_sharing(sharing);
        let mut plain = ServingSimulator::new(LinearCostModel::default_70b(), base);
        let plain_report = plain.run(&trace);

        let tiered = base.with_tiers(KvTierModel::ddr_only(256.0 * 1024.0, 0));
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), tiered);
        prop_assert_eq!(sim.run(&trace), plain_report.clone());

        let shipped = base.with_kv_ship(KvShipSpec {
            bytes_per_token: 300.0 * 1024.0,
            bandwidth_gbps: f64::INFINITY,
            latency_us: 0.0,
        });
        let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), shipped);
        let ship_report = sim.run(&trace);
        prop_assert_eq!(&ship_report.records, &plain_report.records);
        prop_assert_eq!(ship_report.rejected, plain_report.rejected);
        prop_assert_eq!(
            ship_report.paged.expect("paged run").kv_transfers,
            trace.len() as u64
        );
    }

    /// Invariant 12: speculation changes *when* tokens retire, never *what*
    /// is served. For any acceptance rate the completed id set, every
    /// record's token counts, and the rejection count match the plain run;
    /// at acceptance rate 1.0 every burst retires at least one token, so
    /// the burst count never exceeds the plain run's decode-step count.
    #[test]
    fn speculation_never_changes_what_is_served(
        seed in 0u64..10_000,
        rate_x10 in 2u32..300,
        requests in 4usize..60,
        max_batch in 1usize..16,
        draft_tokens in 1usize..8,
        acceptance_x100 in 0u32..=100,
        spec_seed in 0u64..1_000,
        paged in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, false).generate();
        let base = if paged {
            ServingConfig::paged(max_batch, 60_000, 16)
        } else {
            ServingConfig::continuous(max_batch, 60_000)
        };
        let run = |config: ServingConfig| {
            ServingSimulator::new(LinearCostModel::default_70b(), config).run(&trace)
        };
        let plain = run(base);
        let speculation =
            SpeculationSpec::new(draft_tokens, f64::from(acceptance_x100) / 100.0, spec_seed);
        let spec = run(base.with_speculation(speculation));

        prop_assert_eq!(spec.rejected, plain.rejected);
        let served = |records: &[RequestRecord]| -> Vec<(usize, usize)> {
            records.iter().map(|r| (r.id, r.output_tokens)).collect()
        };
        let mut plain_served = served(&plain.records);
        let mut spec_served = served(&spec.records);
        plain_served.sort_unstable();
        spec_served.sort_unstable();
        prop_assert_eq!(plain_served, spec_served);

        // Rate 1.0: every burst retires draft_tokens + 1, so bursts can
        // only be fewer than the plain run's one-token decode steps.
        let full = run(base.with_speculation(SpeculationSpec::new(draft_tokens, 1.0, spec_seed)));
        prop_assert!(
            full.decode_steps <= plain.decode_steps,
            "rate-1.0 bursts {} exceed plain decode steps {}",
            full.decode_steps,
            plain.decode_steps
        );
    }

    /// Invariant 13: chunk boundaries conserve prompt tokens. Every
    /// admitted prompt token passes through at least one chunk —
    /// `chunked_prefill_tokens` equals the admitted prompt total when
    /// nothing recomputes, and can only grow beyond it when
    /// preemption-by-recompute or swap-tier pressure forces a sequence's
    /// chunked prefill to restart.
    #[test]
    fn chunk_boundaries_conserve_prompt_tokens_under_preemption(
        seed in 0u64..10_000,
        rate_x10 in 5u32..300,
        requests in 4usize..48,
        max_batch in 2usize..12,
        blocks in 48usize..400,
        chunk_budget in 8usize..512,
        tiered in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, false).generate();
        let block_size = 16;
        let mut config = ServingConfig::paged(max_batch, blocks * block_size, block_size)
            .with_chunked_prefill(Some(chunk_budget));
        if tiered {
            config = config.with_tiers(KvTierModel {
                block_kv_bytes: 256.0 * 1024.0,
                ddr: KvTierSpec::ddr(blocks),
                disk: KvTierSpec::nvme(blocks),
            });
        }
        let report =
            ServingSimulator::new(LinearCostModel::default_70b(), config).run(&trace);
        prop_assert_eq!(report.completed() + report.rejected, requests);
        let admitted_prompt_total: u64 = report
            .records
            .iter()
            .map(|r| trace.requests()[r.id].prompt_tokens as u64)
            .sum();
        prop_assert!(
            report.chunked_prefill_tokens >= admitted_prompt_total,
            "chunked {} tokens < admitted prompt total {}",
            report.chunked_prefill_tokens,
            admitted_prompt_total
        );
        let paged = report.paged.expect("paged run");
        if paged.preemptions == 0 {
            prop_assert_eq!(report.chunked_prefill_tokens, admitted_prompt_total);
        }
        // The reserve-up-front policies never preempt: conservation is
        // exact there unconditionally.
        let reserve = ServingConfig::continuous(max_batch, blocks * block_size)
            .with_chunked_prefill(Some(chunk_budget));
        let reserve_report =
            ServingSimulator::new(LinearCostModel::default_70b(), reserve).run(&trace);
        let reserve_admitted: u64 = reserve_report
            .records
            .iter()
            .map(|r| trace.requests()[r.id].prompt_tokens as u64)
            .sum();
        prop_assert_eq!(reserve_report.chunked_prefill_tokens, reserve_admitted);
    }
}

/// Regression: on a bursty trace, the static-batching baseline's p99 tail
/// (TTFT and end-to-end) is at least as bad as continuous batching's, and
/// its SLO goodput no better. This is the motivating result of the
/// subsystem — admission at token boundaries absorbs bursts that
/// run-to-completion batching serializes.
#[test]
fn static_batching_tail_is_no_better_than_continuous_on_a_bursty_trace() {
    let trace = WorkloadSpec::bursty_chat(3.0, 240, 77).generate();
    let budget = 60_000;
    let run = |kind: SchedulerKind| {
        let config = ServingConfig::continuous(16, budget).with_scheduler(kind);
        ServingSimulator::new(LinearCostModel::default_70b(), config).run(&trace)
    };
    let continuous = run(SchedulerKind::ContinuousBatching);
    let static_ = run(SchedulerKind::StaticBatching);

    let cm = continuous.metrics();
    let sm = static_.metrics();
    assert!(
        sm.ttft.p99_s >= cm.ttft.p99_s,
        "static p99 TTFT {:.2}s vs continuous {:.2}s",
        sm.ttft.p99_s,
        cm.ttft.p99_s
    );
    assert!(
        sm.e2e.p99_s >= cm.e2e.p99_s,
        "static p99 E2E {:.2}s vs continuous {:.2}s",
        sm.e2e.p99_s,
        cm.e2e.p99_s
    );

    let slo = SloTarget {
        ttft_s: 2.0,
        tpot_s: 0.08,
    };
    let continuous_goodput = continuous.goodput_rps(&slo);
    let static_goodput = static_.goodput_rps(&slo);
    assert!(
        continuous_goodput >= static_goodput,
        "continuous goodput {continuous_goodput:.2} rps vs static {static_goodput:.2} rps"
    );
    // And the win is strict on this trace: bursts pile requests behind
    // run-to-completion batches.
    assert!(
        sm.ttft.p99_s > 1.5 * cm.ttft.p99_s,
        "expected a clear tail gap, got static {:.2}s vs continuous {:.2}s",
        sm.ttft.p99_s,
        cm.ttft.p99_s
    );
}

/// TPOT under static batching is never worse per request than under
/// continuous batching *for the same completed request population shape*:
/// static batches never take prefill interruptions mid-decode. (Sanity
/// check of the modeled trade-off rather than a universal theorem, so it
/// runs on one representative trace.)
#[test]
fn continuous_batching_trades_tpot_for_ttft_on_bursts() {
    let trace = WorkloadSpec::bursty_chat(3.0, 240, 78).generate();
    let run = |kind: SchedulerKind| {
        let config = ServingConfig::continuous(16, 60_000).with_scheduler(kind);
        ServingSimulator::new(LinearCostModel::default_70b(), config).run(&trace)
    };
    let continuous = run(SchedulerKind::ContinuousBatching);
    let static_ = run(SchedulerKind::StaticBatching);
    let mean = |records: &[RequestRecord]| {
        let sum: f64 = records.iter().map(RequestRecord::tpot_s).sum();
        sum / records.len() as f64
    };
    // Continuous decode streams are interrupted by incoming prefills, so
    // their mean TPOT is at least static's...
    assert!(mean(&continuous.records) >= mean(&static_.records));
    // ...but the TTFT win dwarfs it at the tail (checked above), which is
    // exactly the continuous-batching bet.
    assert!(continuous.metrics().ttft.p99_s <= static_.metrics().ttft.p99_s);
}
