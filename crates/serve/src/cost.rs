//! Per-step cost models: what one engine step costs the serving engine.
//!
//! The scheduler's unit of work is the *batch step*: a [`StepMix`] naming
//! the prefill chunks and the decode batch the engine runs together at one
//! batch boundary, priced as one unit through
//! [`ServingCostModel::step_seconds`]. The classic whole-phase questions —
//! "how long to prefill a `P`-token prompt?" and "how long is one decode
//! step for a batch of `B` sequences at context `C`?" — remain the trait's
//! primitive queries, and the step-mix pricing decomposes into them, so an
//! unchunked step prices exactly as before; chunked prefill
//! (Sarathi-style) and speculative decoding are scheduler policy layered
//! on the same primitives. The production implementation drives
//! [`ShardedEstimator`] (and therefore [`deca_llm::InferenceEstimator`]
//! and the whole compressed-GeMM simulation stack underneath), for
//! single-socket replicas and TP/PP sharded ones alike; a linear model
//! exists for fast property tests and analytical what-ifs.

use std::collections::HashMap;

use deca_compress::{CompressionScheme, EngineKind};
use deca_kernels::Engine;
use deca_llm::{DraftSpec, InterconnectModel, LlmModel, ShardSpec, ShardedEstimator};
use deca_roofsurface::MachineConfig;

/// One prefill chunk inside a batch step: `suffix_tokens` prompt tokens
/// streamed through the FC GeMMs while their attention reads everything
/// already resident for the sequence — `cached_tokens` served by the
/// prefix cache (or promoted from a lower tier) plus `committed_tokens`
/// prefilled by this prompt's *earlier chunks*. Both resident kinds price
/// identically (attention context, no compute), so the chunk collapses to
/// one cached-prefill query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkWork {
    /// Prompt tokens this chunk processes.
    pub suffix_tokens: usize,
    /// Prompt tokens already resident via the prefix cache / tier
    /// promotion (never prefilled by this request).
    pub cached_tokens: usize,
    /// Prompt tokens committed by this prompt's earlier chunks.
    pub committed_tokens: usize,
}

impl ChunkWork {
    /// Tokens already resident when this chunk runs — the attention
    /// context its suffix is charged against.
    #[must_use]
    pub fn context_tokens(&self) -> usize {
        self.cached_tokens + self.committed_tokens
    }
}

/// One batch step: the prefill chunks and the decode batch the engine runs
/// together at a batch boundary, priced as one unit by
/// [`ServingCostModel::step_seconds`]. A pure-prefill step has
/// `decode_batch == 0`; a pure-decode step has no chunks. The degenerate
/// mix — one whole-prompt chunk, no decodes — prices bit-identically to
/// the classic [`ServingCostModel::prefill_seconds_cached`] query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepMix {
    /// Prefill chunks of this step, in batch order.
    pub prefill_chunks: Vec<ChunkWork>,
    /// Sequences gaining one token this step (0 for a pure-prefill step).
    pub decode_batch: usize,
    /// Longest decoding sequence's context, in tokens.
    pub max_context_tokens: usize,
}

/// What one engine step costs. Implementations must be deterministic: the
/// same question always gets the same answer, so serving simulations are
/// replayable.
pub trait ServingCostModel {
    /// Seconds to prefill one fresh request with `prompt_tokens` tokens.
    /// Must be strictly positive.
    fn prefill_seconds(&mut self, prompt_tokens: usize) -> f64;

    /// Seconds of one decode step (one token for every sequence) for a
    /// batch of `batch` sequences whose longest context is
    /// `max_context_tokens`. Must be strictly positive.
    fn decode_step_seconds(&mut self, batch: usize, max_context_tokens: usize) -> f64;

    /// Seconds to prefill a `prompt_tokens`-token prompt whose first
    /// `cached_prefix_tokens` tokens are already resident in the KV cache
    /// (a paged-scheduler prefix hit): only the uncached suffix is
    /// processed. The default prices the suffix as a *fresh* prompt, which
    /// under-prices it — a real cached-prefix prefill still attends over
    /// the cached context — so implementations that can express prior
    /// context should override it, as [`EstimatorCostModel`] does to
    /// charge the suffix's attention against the cached tokens too.
    fn prefill_seconds_cached(&mut self, prompt_tokens: usize, cached_prefix_tokens: usize) -> f64 {
        let uncached = prompt_tokens.saturating_sub(cached_prefix_tokens);
        self.prefill_seconds(uncached)
    }

    /// Seconds of one prefill chunk: `suffix_tokens` prompt tokens with
    /// attention over everything already resident (cached *and* committed
    /// context — the two price identically, so the chunk collapses onto
    /// the cached-prefill query and shares its memo table instead of
    /// keying a fresh suffix × cached × committed triple).
    fn chunk_seconds(&mut self, chunk: ChunkWork) -> f64 {
        let context = chunk.context_tokens();
        self.prefill_seconds_cached(context + chunk.suffix_tokens, context)
    }

    /// Seconds of one batch step: every prefill chunk of the mix plus (if
    /// any sequence is decoding) one decode step, as a single unit. The
    /// decomposition into the primitive queries is exact, so a degenerate
    /// mix reproduces the classic per-phase arithmetic bit for bit.
    fn step_seconds(&mut self, mix: &StepMix) -> f64 {
        let mut seconds = 0.0;
        for &chunk in &mix.prefill_chunks {
            seconds += self.chunk_seconds(chunk);
        }
        if mix.decode_batch > 0 {
            seconds += self.decode_step_seconds(mix.decode_batch, mix.max_context_tokens);
        }
        seconds
    }

    /// Seconds of one speculative-decoding burst: `draft_tokens` drafted
    /// tokens plus the target model's verify step for a batch of `batch`
    /// sequences. The default has no draft model to price, so it charges
    /// every drafted token as a full target decode step (speculation
    /// without a cheaper draft buys nothing); [`EstimatorCostModel`]
    /// overrides it when a [`DraftSpec`] is configured.
    fn speculative_burst_seconds(
        &mut self,
        draft_tokens: usize,
        batch: usize,
        max_context_tokens: usize,
    ) -> f64 {
        (draft_tokens as f64 + 1.0) * self.decode_step_seconds(batch, max_context_tokens)
    }

    /// Seconds to load one LoRA adapter's weights (`weight_tokens` in the
    /// same KV-token-equivalent unit the block pool is denominated in)
    /// into the serving engine — the adapter-cache-miss penalty a batch
    /// step pays for activating a non-resident adapter. Streaming adapter
    /// weights is memory-bound, like prefilling a prompt of the same token
    /// footprint, so the default prices it as exactly that; the result is
    /// strictly positive for any `weight_tokens` because
    /// [`ServingCostModel::prefill_seconds`] is.
    fn adapter_load_seconds(&mut self, weight_tokens: usize) -> f64 {
        self.prefill_seconds(weight_tokens)
    }
}

/// Contexts are bucketed (rounded up) to this granularity before hitting
/// the estimator, so a serving run touches a bounded number of distinct
/// latency queries regardless of trace length.
const CONTEXT_BUCKET_TOKENS: usize = 256;
/// Prompt lengths are bucketed (rounded up) to this granularity.
const PROMPT_BUCKET_TOKENS: usize = 64;

fn bucket_up(value: usize, bucket: usize) -> usize {
    value.max(1).div_ceil(bucket) * bucket
}

/// Hard bound on each memo table of [`EstimatorCostModel`]. Chunked
/// prefill multiplies the query space (suffix × cached context × committed
/// context), and although bucketing collapses the cached/committed axes
/// into one context key, an adversarial trace could still walk an
/// unbounded set of buckets — beyond this many entries per table, answers
/// are computed but not cached.
const MEMO_CAPACITY: usize = 4096;

/// Memoization counters of an [`EstimatorCostModel`], for debugging cache
/// behaviour in long sweeps ([`EstimatorCostModel::memo_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostMemoStats {
    /// Entries currently held across all memo tables (each bounded by an
    /// internal capacity, so this never grows without limit).
    pub entries: usize,
    /// Queries answered from a memo table.
    pub hits: u64,
    /// Queries that had to run the estimator.
    pub misses: u64,
}

impl CostMemoStats {
    /// Fraction of queries answered from the memo tables.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Inserts into a memo table only while it is under [`MEMO_CAPACITY`] —
/// the answer is still returned, just not cached.
fn memo_insert<K: std::hash::Hash + Eq>(cache: &mut HashMap<K, f64>, key: K, seconds: f64) {
    if cache.len() < MEMO_CAPACITY {
        cache.insert(key, seconds);
    }
}

/// The production cost model: every answer comes from the sharded
/// estimator (`deca_llm::parallel`) — decode steps from
/// [`ShardedEstimator::next_token`], prefills from
/// [`ShardedEstimator::prefill`] — memoized per bucketed shape. Bucketing
/// rounds *up*, so the model is conservative — a simulated server is never
/// faster than the estimator says.
///
/// [`EstimatorCostModel::new`] builds the single-socket view; because a
/// `TP=1 × PP=1` plan over a zero-cost interconnect reproduces
/// [`deca_llm::InferenceEstimator`] bit for bit, the unsharded serving
/// numbers are unchanged by the sharding axis.
#[derive(Debug, Clone)]
pub struct EstimatorCostModel {
    estimator: ShardedEstimator,
    model: LlmModel,
    scheme: CompressionScheme,
    engine: Engine,
    /// Draft model for speculative-decoding bursts (None: the trait
    /// default prices drafts as target decode steps).
    draft: Option<DraftSpec>,
    decode_cache: HashMap<(usize, usize), f64>,
    prefill_cache: HashMap<usize, f64>,
    cached_prefill_cache: HashMap<(usize, usize), f64>,
    draft_cache: HashMap<(usize, usize), f64>,
    memo_hits: u64,
    memo_misses: u64,
}

impl EstimatorCostModel {
    /// Builds the single-socket cost model for a machine/model/scheme/engine
    /// combination.
    #[must_use]
    pub fn new(
        machine: MachineConfig,
        model: LlmModel,
        scheme: CompressionScheme,
        engine: Engine,
    ) -> Self {
        Self::sharded(
            machine,
            model,
            scheme,
            engine,
            ShardSpec::single(),
            InterconnectModel::zero_cost(),
        )
    }

    /// Builds the cost model of one sharded replica: `spec.sockets()`
    /// machines serving the model together, paying `interconnect` for every
    /// tensor-parallel all-reduce and pipeline-boundary transfer.
    #[must_use]
    pub fn sharded(
        machine: MachineConfig,
        model: LlmModel,
        scheme: CompressionScheme,
        engine: Engine,
        spec: ShardSpec,
        interconnect: InterconnectModel,
    ) -> Self {
        EstimatorCostModel {
            estimator: ShardedEstimator::new(machine, spec, interconnect),
            model,
            scheme,
            engine,
            draft: None,
            decode_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
            cached_prefill_cache: HashMap::new(),
            draft_cache: HashMap::new(),
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Attaches a draft model for speculative decoding: bursts are then
    /// priced as `k` draft-model decode steps plus one target verify step
    /// (`k` comes from the scheduler's speculation policy at each call;
    /// the spec's own `draft_tokens` is its default burst length). The
    /// draft rides the same shard plan, scheme and engine as the target.
    #[must_use]
    pub fn with_draft_model(mut self, draft: DraftSpec) -> Self {
        self.draft_cache.clear();
        self.draft = Some(draft);
        self
    }

    /// The configured draft model, if any.
    #[must_use]
    pub fn draft_spec(&self) -> Option<&DraftSpec> {
        self.draft.as_ref()
    }

    /// Memoization counters: entries across all tables (each bounded, so
    /// chunked-prefill query storms cannot blow the memory), hits, misses
    /// and the derived hit rate.
    #[must_use]
    pub fn memo_stats(&self) -> CostMemoStats {
        CostMemoStats {
            entries: self.decode_cache.len()
                + self.prefill_cache.len()
                + self.cached_prefill_cache.len()
                + self.draft_cache.len(),
            hits: self.memo_hits,
            misses: self.memo_misses,
        }
    }

    /// Selects the decompression backend driving the software GeMM pipeline
    /// underneath (forwarded through [`ShardedEstimator`] to
    /// `deca_llm::InferenceEstimator`), so serving sweeps inherit an engine
    /// choice — e.g. [`EngineKind::AutoTuned`] — end-to-end. Clears the
    /// memoized latencies so every subsequent answer reflects the backend.
    #[must_use]
    pub fn with_decompress_backend(mut self, backend: EngineKind) -> Self {
        self.estimator = self.estimator.with_decompress_backend(backend);
        self.decode_cache.clear();
        self.prefill_cache.clear();
        self.cached_prefill_cache.clear();
        self.draft_cache.clear();
        self
    }

    /// The LLM being served.
    #[must_use]
    pub fn model(&self) -> &LlmModel {
        &self.model
    }

    /// The sharding plan of this replica.
    #[must_use]
    pub fn shard_spec(&self) -> ShardSpec {
        self.estimator.spec()
    }

    /// The compression scheme of the resident weights.
    #[must_use]
    pub fn scheme(&self) -> &CompressionScheme {
        &self.scheme
    }

    /// The kernel engine (software decompression or DECA).
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }
}

impl ServingCostModel for EstimatorCostModel {
    fn prefill_seconds(&mut self, prompt_tokens: usize) -> f64 {
        let bucketed = bucket_up(prompt_tokens, PROMPT_BUCKET_TOKENS);
        if let Some(&seconds) = self.prefill_cache.get(&bucketed) {
            self.memo_hits += 1;
            return seconds;
        }
        self.memo_misses += 1;
        let seconds = self
            .estimator
            .prefill(&self.model, &self.scheme, self.engine, bucketed, 0)
            .total_seconds();
        memo_insert(&mut self.prefill_cache, bucketed, seconds);
        seconds
    }

    fn decode_step_seconds(&mut self, batch: usize, max_context_tokens: usize) -> f64 {
        let batch = batch.max(1);
        let context = bucket_up(max_context_tokens, CONTEXT_BUCKET_TOKENS);
        if let Some(&seconds) = self.decode_cache.get(&(batch, context)) {
            self.memo_hits += 1;
            return seconds;
        }
        self.memo_misses += 1;
        let seconds = self
            .estimator
            .next_token(&self.model, &self.scheme, self.engine, batch, context)
            .total_seconds();
        memo_insert(&mut self.decode_cache, (batch, context), seconds);
        seconds
    }

    fn prefill_seconds_cached(&mut self, prompt_tokens: usize, cached_prefix_tokens: usize) -> f64 {
        let cached = cached_prefix_tokens.min(prompt_tokens.saturating_sub(1));
        if cached == 0 {
            return self.prefill_seconds(prompt_tokens);
        }
        // Only the uncached suffix streams through the FC GeMMs, but its
        // attention still reads the cached context — the estimator's
        // `context_tokens` argument prices exactly that. Chunked-prefill
        // queries land here too (via the default
        // [`ServingCostModel::chunk_seconds`]): cached and committed
        // context collapse into the one bucketed `context` key, so the
        // chunk axis adds no new key dimension to this table.
        let suffix = bucket_up(prompt_tokens - cached, PROMPT_BUCKET_TOKENS);
        let context = bucket_up(cached, CONTEXT_BUCKET_TOKENS);
        if let Some(&seconds) = self.cached_prefill_cache.get(&(suffix, context)) {
            self.memo_hits += 1;
            return seconds;
        }
        self.memo_misses += 1;
        let seconds = self
            .estimator
            .prefill(&self.model, &self.scheme, self.engine, suffix, context)
            .total_seconds();
        memo_insert(&mut self.cached_prefill_cache, (suffix, context), seconds);
        seconds
    }

    fn speculative_burst_seconds(
        &mut self,
        draft_tokens: usize,
        batch: usize,
        max_context_tokens: usize,
    ) -> f64 {
        if self.draft.is_none() {
            // No draft model configured: the trait default (drafts priced
            // as target decode steps).
            return (draft_tokens as f64 + 1.0)
                * self.decode_step_seconds(batch, max_context_tokens);
        }
        let batch = batch.max(1);
        let context = bucket_up(max_context_tokens, CONTEXT_BUCKET_TOKENS);
        let draft_step = if let Some(&seconds) = self.draft_cache.get(&(batch, context)) {
            self.memo_hits += 1;
            seconds
        } else {
            self.memo_misses += 1;
            let draft = self.draft.as_ref().expect("checked above");
            let seconds = self
                .estimator
                .next_token(draft.model(), &self.scheme, self.engine, batch, context)
                .total_seconds();
            memo_insert(&mut self.draft_cache, (batch, context), seconds);
            seconds
        };
        let verify = self.decode_step_seconds(batch, max_context_tokens);
        draft_tokens as f64 * draft_step + verify
    }
}

/// A closed-form cost model for tests and quick what-ifs: prefills cost
/// `prefill_base + prefill_per_token · P`, decode steps cost
/// `decode_base + decode_per_sequence · B + decode_per_context_token · C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCostModel {
    /// Fixed prefill launch cost in seconds.
    pub prefill_base: f64,
    /// Marginal prefill cost per prompt token.
    pub prefill_per_token: f64,
    /// Fixed decode-step cost in seconds (the weight stream).
    pub decode_base: f64,
    /// Marginal decode cost per sequence in the batch.
    pub decode_per_sequence: f64,
    /// Marginal decode cost per context token (KV-cache traffic).
    pub decode_per_context_token: f64,
}

impl LinearCostModel {
    /// A model with round decode/prefill numbers loosely shaped like a 70B
    /// deployment (tens of milliseconds per step), handy in tests.
    #[must_use]
    pub fn default_70b() -> Self {
        LinearCostModel {
            prefill_base: 0.01,
            prefill_per_token: 2e-4,
            decode_base: 0.03,
            decode_per_sequence: 5e-4,
            decode_per_context_token: 2e-6,
        }
    }
}

impl ServingCostModel for LinearCostModel {
    fn prefill_seconds(&mut self, prompt_tokens: usize) -> f64 {
        self.prefill_base + self.prefill_per_token * prompt_tokens as f64
    }

    fn decode_step_seconds(&mut self, batch: usize, max_context_tokens: usize) -> f64 {
        self.decode_base
            + self.decode_per_sequence * batch as f64
            + self.decode_per_context_token * max_context_tokens as f64
    }
}

/// Registering one shipped block is a metadata write, not a GeMM; this
/// nominal per-prefill cost keeps [`DecodePoolCostModel`]'s answers
/// strictly positive (the [`ServingCostModel`] contract) without ever
/// being visible next to real step latencies.
pub const SHIPPED_PREFILL_EPSILON_S: f64 = 1e-9;

/// The cost model of a *decode-pool* replica in a disaggregated
/// prefill/decode deployment ([`crate::sweep::simulate_disaggregated`]):
/// every admitted request arrives with its KV already computed by the
/// prefill pool and shipped over the interconnect
/// ([`crate::KvShipSpec`] prices the transfer), so "prefill" here is just
/// registering the shipped blocks.
///
/// This is the one sanctioned exception to the trait's "prefill must be
/// strictly positive" contract's *spirit*: prefills return the nominal
/// [`SHIPPED_PREFILL_EPSILON_S`] (still strictly positive, so the letter
/// holds and event ordering stays total), while decode steps delegate to
/// the wrapped model unchanged.
#[derive(Debug, Clone)]
pub struct DecodePoolCostModel<C: ServingCostModel> {
    inner: C,
}

impl<C: ServingCostModel> DecodePoolCostModel<C> {
    /// Wraps a replica cost model, zeroing its prefill side.
    #[must_use]
    pub fn new(inner: C) -> Self {
        DecodePoolCostModel { inner }
    }
}

impl<C: ServingCostModel> ServingCostModel for DecodePoolCostModel<C> {
    fn prefill_seconds(&mut self, _prompt_tokens: usize) -> f64 {
        SHIPPED_PREFILL_EPSILON_S
    }

    fn decode_step_seconds(&mut self, batch: usize, max_context_tokens: usize) -> f64 {
        self.inner.decode_step_seconds(batch, max_context_tokens)
    }

    fn prefill_seconds_cached(
        &mut self,
        _prompt_tokens: usize,
        _cached_prefix_tokens: usize,
    ) -> f64 {
        SHIPPED_PREFILL_EPSILON_S
    }

    // `chunk_seconds`/`step_seconds` inherit the defaults, which route the
    // chunk side through `prefill_seconds_cached` — every chunk of a
    // shipped prompt is a metadata registration, exactly like the whole
    // prompt.

    fn speculative_burst_seconds(
        &mut self,
        draft_tokens: usize,
        batch: usize,
        max_context_tokens: usize,
    ) -> f64 {
        // Decode work is real in the pool; delegate so a draft-configured
        // inner model keeps pricing the drafts.
        self.inner
            .speculative_burst_seconds(draft_tokens, batch, max_context_tokens)
    }

    fn adapter_load_seconds(&mut self, weight_tokens: usize) -> f64 {
        // Adapter weights really stream into the decode pool — only the
        // prompt KV arrives pre-computed — so the load is priced by the
        // wrapped model, not zeroed like the shipped prefill.
        self.inner.adapter_load_seconds(weight_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_model_is_deterministic_and_cached() {
        let mut cost = EstimatorCostModel::new(
            MachineConfig::spr_hbm(),
            LlmModel::llama2_70b(),
            CompressionScheme::bf8_sparse(0.05),
            Engine::deca_default(),
        );
        let a = cost.decode_step_seconds(4, 300);
        let b = cost.decode_step_seconds(4, 300);
        assert_eq!(a, b);
        assert!(a > 0.0);
        // 300 and 500 land in the same 256-token bucket (both round to 512).
        assert_eq!(a, cost.decode_step_seconds(4, 500));
        assert!(cost.decode_step_seconds(4, 2000) > a);
        let p = cost.prefill_seconds(100);
        assert_eq!(p, cost.prefill_seconds(128));
        assert!(cost.prefill_seconds(1024) > p);
    }

    #[test]
    fn deca_steps_are_faster_than_software_steps() {
        let build = |engine| {
            EstimatorCostModel::new(
                MachineConfig::spr_hbm(),
                LlmModel::llama2_70b(),
                CompressionScheme::bf8_sparse(0.05),
                engine,
            )
        };
        let mut sw = build(Engine::software());
        let mut deca = build(Engine::deca_default());
        assert!(deca.decode_step_seconds(1, 128) < sw.decode_step_seconds(1, 128));
        assert!(deca.prefill_seconds(128) <= sw.prefill_seconds(128));
    }

    #[test]
    fn sharded_replicas_price_the_plan() {
        let build = |spec, interconnect| {
            EstimatorCostModel::sharded(
                MachineConfig::spr_hbm(),
                LlmModel::llama2_70b(),
                CompressionScheme::bf8_sparse(0.05),
                Engine::deca_default(),
                spec,
                interconnect,
            )
        };
        // The single-socket plan over a free interconnect is the unsharded
        // model, bit for bit.
        let mut single = build(ShardSpec::single(), InterconnectModel::zero_cost());
        let mut unsharded = EstimatorCostModel::new(
            MachineConfig::spr_hbm(),
            LlmModel::llama2_70b(),
            CompressionScheme::bf8_sparse(0.05),
            Engine::deca_default(),
        );
        assert_eq!(
            single.decode_step_seconds(4, 1000).to_bits(),
            unsharded.decode_step_seconds(4, 1000).to_bits()
        );
        assert_eq!(
            single.prefill_seconds(512).to_bits(),
            unsharded.prefill_seconds(512).to_bits()
        );
        assert_eq!(single.shard_spec(), ShardSpec::single());
        // A TP2 replica over a real interconnect still beats one socket on
        // the weight-stream-bound decode step.
        let mut tp2 = build(ShardSpec::tp(2), InterconnectModel::spr_upi());
        assert_eq!(tp2.shard_spec().sockets(), 2);
        assert!(tp2.decode_step_seconds(4, 1000) < unsharded.decode_step_seconds(4, 1000));
    }

    #[test]
    fn decompress_backend_threads_through_without_moving_latency() {
        let build = || {
            EstimatorCostModel::new(
                MachineConfig::spr_hbm(),
                LlmModel::llama2_70b(),
                CompressionScheme::bf8_sparse(0.05),
                Engine::deca_default(),
            )
        };
        // All decompression backends are bit-exact, so switching the
        // serving stack to the auto-tuned engine must not move a single
        // modeled latency bit.
        let mut base = build();
        let mut tuned = build().with_decompress_backend(EngineKind::AutoTuned);
        assert_eq!(
            base.decode_step_seconds(4, 300).to_bits(),
            tuned.decode_step_seconds(4, 300).to_bits()
        );
        assert_eq!(
            base.prefill_seconds(128).to_bits(),
            tuned.prefill_seconds(128).to_bits()
        );
        assert_eq!(
            base.prefill_seconds_cached(256, 128).to_bits(),
            tuned.prefill_seconds_cached(256, 128).to_bits()
        );
    }

    #[test]
    fn chunk_pricing_collapses_onto_the_cached_prefill_query() {
        let mut cost = EstimatorCostModel::new(
            MachineConfig::spr_hbm(),
            LlmModel::llama2_70b(),
            CompressionScheme::bf8_sparse(0.05),
            Engine::deca_default(),
        );
        // A whole-prompt chunk with no committed context is the classic
        // cached-prefill query, bit for bit.
        let chunk = ChunkWork {
            suffix_tokens: 384,
            cached_tokens: 128,
            committed_tokens: 0,
        };
        assert_eq!(
            cost.chunk_seconds(chunk).to_bits(),
            cost.prefill_seconds_cached(512, 128).to_bits()
        );
        // Cached and committed context price identically — only their sum
        // reaches the estimator.
        let swapped = ChunkWork {
            suffix_tokens: 384,
            cached_tokens: 0,
            committed_tokens: 128,
        };
        assert_eq!(
            cost.chunk_seconds(chunk).to_bits(),
            cost.chunk_seconds(swapped).to_bits()
        );
    }

    #[test]
    fn step_mix_is_the_sum_of_its_parts() {
        let mut cost = LinearCostModel::default_70b();
        let chunks = vec![
            ChunkWork {
                suffix_tokens: 256,
                cached_tokens: 0,
                committed_tokens: 0,
            },
            ChunkWork {
                suffix_tokens: 256,
                cached_tokens: 64,
                committed_tokens: 256,
            },
        ];
        let mix = StepMix {
            prefill_chunks: chunks.clone(),
            decode_batch: 8,
            max_context_tokens: 1024,
        };
        let expected = cost.chunk_seconds(chunks[0])
            + cost.chunk_seconds(chunks[1])
            + cost.decode_step_seconds(8, 1024);
        assert_eq!(cost.step_seconds(&mix).to_bits(), expected.to_bits());
        // A pure-prefill mix prices no decode step.
        let prefill_only = StepMix {
            prefill_chunks: chunks,
            decode_batch: 0,
            max_context_tokens: 0,
        };
        assert!(cost.step_seconds(&prefill_only) < cost.step_seconds(&mix));
    }

    #[test]
    fn memo_stats_count_hits_and_misses() {
        let mut cost = EstimatorCostModel::new(
            MachineConfig::spr_hbm(),
            LlmModel::llama2_70b(),
            CompressionScheme::bf8_sparse(0.05),
            Engine::deca_default(),
        );
        assert_eq!(cost.memo_stats(), CostMemoStats::default());
        let _ = cost.decode_step_seconds(4, 300);
        let _ = cost.decode_step_seconds(4, 300);
        let _ = cost.decode_step_seconds(4, 500); // same 256-token bucket
        let stats = cost.memo_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn speculative_bursts_price_the_draft_model_when_configured() {
        let build = || {
            EstimatorCostModel::new(
                MachineConfig::spr_hbm(),
                LlmModel::llama2_70b(),
                CompressionScheme::bf8_sparse(0.05),
                Engine::deca_default(),
            )
        };
        let mut plain = build();
        // Without a draft model the default pricing holds: k + 1 target
        // decode steps, bit for bit.
        let default_burst = plain.speculative_burst_seconds(4, 8, 1024);
        let step = plain.decode_step_seconds(8, 1024);
        assert_eq!(default_burst.to_bits(), (5.0 * step).to_bits());
        // With the 7B draft attached, four drafted tokens cost far less
        // than four target steps — but still more than the bare verify.
        let mut drafted = build().with_draft_model(deca_llm::DraftSpec::llama2_7b(4));
        assert!(drafted.draft_spec().is_some());
        let burst = drafted.speculative_burst_seconds(4, 8, 1024);
        assert!(burst < default_burst);
        assert!(burst > step);
        // The draft-step memo works: the second identical burst hits.
        let before = drafted.memo_stats();
        let again = drafted.speculative_burst_seconds(4, 8, 1024);
        assert_eq!(burst.to_bits(), again.to_bits());
        assert!(drafted.memo_stats().hits > before.hits);
    }

    #[test]
    fn adapter_loads_price_as_weight_streams() {
        // The default hook prices an adapter load exactly as a prefill of
        // the same token footprint — strictly positive, deterministic.
        let mut linear = LinearCostModel::default_70b();
        let load = linear.adapter_load_seconds(96);
        assert_eq!(load.to_bits(), linear.prefill_seconds(96).to_bits());
        assert!(load > 0.0);
        assert!(linear.adapter_load_seconds(0) > 0.0, "strictly positive");
        let mut estimator = EstimatorCostModel::new(
            MachineConfig::spr_hbm(),
            LlmModel::llama2_70b(),
            CompressionScheme::bf8_sparse(0.05),
            Engine::deca_default(),
        );
        assert_eq!(
            estimator.adapter_load_seconds(128).to_bits(),
            estimator.prefill_seconds(128).to_bits()
        );
        // The decode pool pays real adapter loads (only prompt KV ships).
        let mut pool = DecodePoolCostModel::new(LinearCostModel::default_70b());
        assert_eq!(
            pool.adapter_load_seconds(96).to_bits(),
            LinearCostModel::default_70b()
                .adapter_load_seconds(96)
                .to_bits()
        );
        assert!(pool.adapter_load_seconds(96) > SHIPPED_PREFILL_EPSILON_S);
    }

    #[test]
    fn linear_model_shapes() {
        let mut m = LinearCostModel::default_70b();
        assert!(m.decode_step_seconds(16, 1024) > m.decode_step_seconds(1, 0));
        assert!(m.prefill_seconds(1000) > m.prefill_seconds(10));
    }

    #[test]
    fn decode_pool_model_zeroes_prefill_and_keeps_decode() {
        let mut base = LinearCostModel::default_70b();
        let mut pool = DecodePoolCostModel::new(base);
        assert_eq!(pool.prefill_seconds(4096), SHIPPED_PREFILL_EPSILON_S);
        assert_eq!(
            pool.prefill_seconds_cached(4096, 128),
            SHIPPED_PREFILL_EPSILON_S
        );
        assert!(pool.prefill_seconds(4096) > 0.0);
        assert_eq!(
            pool.decode_step_seconds(8, 2048).to_bits(),
            base.decode_step_seconds(8, 2048).to_bits()
        );
    }
}
