//! Per-step cost models: what one prefill or one decode step costs the
//! serving engine.
//!
//! The scheduler only ever asks two questions — "how long to prefill a
//! `P`-token prompt?" and "how long is one decode step for a batch of `B`
//! sequences at context `C`?" — so the cost model is a small trait. The
//! production implementation drives [`ShardedEstimator`] (and therefore
//! [`deca_llm::InferenceEstimator`] and the whole compressed-GeMM
//! simulation stack underneath), for single-socket replicas and TP/PP
//! sharded ones alike; a linear model exists for fast property tests and
//! analytical what-ifs.

use std::collections::HashMap;

use deca_compress::{CompressionScheme, EngineKind};
use deca_kernels::Engine;
use deca_llm::{InterconnectModel, LlmModel, ShardSpec, ShardedEstimator};
use deca_roofsurface::MachineConfig;

/// What one engine step costs. Implementations must be deterministic: the
/// same question always gets the same answer, so serving simulations are
/// replayable.
pub trait ServingCostModel {
    /// Seconds to prefill one fresh request with `prompt_tokens` tokens.
    /// Must be strictly positive.
    fn prefill_seconds(&mut self, prompt_tokens: usize) -> f64;

    /// Seconds of one decode step (one token for every sequence) for a
    /// batch of `batch` sequences whose longest context is
    /// `max_context_tokens`. Must be strictly positive.
    fn decode_step_seconds(&mut self, batch: usize, max_context_tokens: usize) -> f64;

    /// Seconds to prefill a `prompt_tokens`-token prompt whose first
    /// `cached_prefix_tokens` tokens are already resident in the KV cache
    /// (a paged-scheduler prefix hit): only the uncached suffix is
    /// processed. The default prices the suffix as a *fresh* prompt, which
    /// under-prices it — a real cached-prefix prefill still attends over
    /// the cached context — so implementations that can express prior
    /// context should override it, as [`EstimatorCostModel`] does to
    /// charge the suffix's attention against the cached tokens too.
    fn prefill_seconds_cached(&mut self, prompt_tokens: usize, cached_prefix_tokens: usize) -> f64 {
        let uncached = prompt_tokens.saturating_sub(cached_prefix_tokens);
        self.prefill_seconds(uncached)
    }
}

/// Contexts are bucketed (rounded up) to this granularity before hitting
/// the estimator, so a serving run touches a bounded number of distinct
/// latency queries regardless of trace length.
const CONTEXT_BUCKET_TOKENS: usize = 256;
/// Prompt lengths are bucketed (rounded up) to this granularity.
const PROMPT_BUCKET_TOKENS: usize = 64;

fn bucket_up(value: usize, bucket: usize) -> usize {
    value.max(1).div_ceil(bucket) * bucket
}

/// The production cost model: every answer comes from the sharded
/// estimator (`deca_llm::parallel`) — decode steps from
/// [`ShardedEstimator::next_token`], prefills from
/// [`ShardedEstimator::prefill`] — memoized per bucketed shape. Bucketing
/// rounds *up*, so the model is conservative — a simulated server is never
/// faster than the estimator says.
///
/// [`EstimatorCostModel::new`] builds the single-socket view; because a
/// `TP=1 × PP=1` plan over a zero-cost interconnect reproduces
/// [`deca_llm::InferenceEstimator`] bit for bit, the unsharded serving
/// numbers are unchanged by the sharding axis.
#[derive(Debug, Clone)]
pub struct EstimatorCostModel {
    estimator: ShardedEstimator,
    model: LlmModel,
    scheme: CompressionScheme,
    engine: Engine,
    decode_cache: HashMap<(usize, usize), f64>,
    prefill_cache: HashMap<usize, f64>,
    cached_prefill_cache: HashMap<(usize, usize), f64>,
}

impl EstimatorCostModel {
    /// Builds the single-socket cost model for a machine/model/scheme/engine
    /// combination.
    #[must_use]
    pub fn new(
        machine: MachineConfig,
        model: LlmModel,
        scheme: CompressionScheme,
        engine: Engine,
    ) -> Self {
        Self::sharded(
            machine,
            model,
            scheme,
            engine,
            ShardSpec::single(),
            InterconnectModel::zero_cost(),
        )
    }

    /// Builds the cost model of one sharded replica: `spec.sockets()`
    /// machines serving the model together, paying `interconnect` for every
    /// tensor-parallel all-reduce and pipeline-boundary transfer.
    #[must_use]
    pub fn sharded(
        machine: MachineConfig,
        model: LlmModel,
        scheme: CompressionScheme,
        engine: Engine,
        spec: ShardSpec,
        interconnect: InterconnectModel,
    ) -> Self {
        EstimatorCostModel {
            estimator: ShardedEstimator::new(machine, spec, interconnect),
            model,
            scheme,
            engine,
            decode_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
            cached_prefill_cache: HashMap::new(),
        }
    }

    /// Selects the decompression backend driving the software GeMM pipeline
    /// underneath (forwarded through [`ShardedEstimator`] to
    /// `deca_llm::InferenceEstimator`), so serving sweeps inherit an engine
    /// choice — e.g. [`EngineKind::AutoTuned`] — end-to-end. Clears the
    /// memoized latencies so every subsequent answer reflects the backend.
    #[must_use]
    pub fn with_decompress_backend(mut self, backend: EngineKind) -> Self {
        self.estimator = self.estimator.with_decompress_backend(backend);
        self.decode_cache.clear();
        self.prefill_cache.clear();
        self.cached_prefill_cache.clear();
        self
    }

    /// The LLM being served.
    #[must_use]
    pub fn model(&self) -> &LlmModel {
        &self.model
    }

    /// The sharding plan of this replica.
    #[must_use]
    pub fn shard_spec(&self) -> ShardSpec {
        self.estimator.spec()
    }

    /// The compression scheme of the resident weights.
    #[must_use]
    pub fn scheme(&self) -> &CompressionScheme {
        &self.scheme
    }

    /// The kernel engine (software decompression or DECA).
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }
}

impl ServingCostModel for EstimatorCostModel {
    fn prefill_seconds(&mut self, prompt_tokens: usize) -> f64 {
        let bucketed = bucket_up(prompt_tokens, PROMPT_BUCKET_TOKENS);
        if let Some(&seconds) = self.prefill_cache.get(&bucketed) {
            return seconds;
        }
        let seconds = self
            .estimator
            .prefill(&self.model, &self.scheme, self.engine, bucketed, 0)
            .total_seconds();
        self.prefill_cache.insert(bucketed, seconds);
        seconds
    }

    fn decode_step_seconds(&mut self, batch: usize, max_context_tokens: usize) -> f64 {
        let batch = batch.max(1);
        let context = bucket_up(max_context_tokens, CONTEXT_BUCKET_TOKENS);
        if let Some(&seconds) = self.decode_cache.get(&(batch, context)) {
            return seconds;
        }
        let seconds = self
            .estimator
            .next_token(&self.model, &self.scheme, self.engine, batch, context)
            .total_seconds();
        self.decode_cache.insert((batch, context), seconds);
        seconds
    }

    fn prefill_seconds_cached(&mut self, prompt_tokens: usize, cached_prefix_tokens: usize) -> f64 {
        let cached = cached_prefix_tokens.min(prompt_tokens.saturating_sub(1));
        if cached == 0 {
            return self.prefill_seconds(prompt_tokens);
        }
        // Only the uncached suffix streams through the FC GeMMs, but its
        // attention still reads the cached context — the estimator's
        // `context_tokens` argument prices exactly that.
        let suffix = bucket_up(prompt_tokens - cached, PROMPT_BUCKET_TOKENS);
        let context = bucket_up(cached, CONTEXT_BUCKET_TOKENS);
        if let Some(&seconds) = self.cached_prefill_cache.get(&(suffix, context)) {
            return seconds;
        }
        let seconds = self
            .estimator
            .prefill(&self.model, &self.scheme, self.engine, suffix, context)
            .total_seconds();
        self.cached_prefill_cache.insert((suffix, context), seconds);
        seconds
    }
}

/// A closed-form cost model for tests and quick what-ifs: prefills cost
/// `prefill_base + prefill_per_token · P`, decode steps cost
/// `decode_base + decode_per_sequence · B + decode_per_context_token · C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCostModel {
    /// Fixed prefill launch cost in seconds.
    pub prefill_base: f64,
    /// Marginal prefill cost per prompt token.
    pub prefill_per_token: f64,
    /// Fixed decode-step cost in seconds (the weight stream).
    pub decode_base: f64,
    /// Marginal decode cost per sequence in the batch.
    pub decode_per_sequence: f64,
    /// Marginal decode cost per context token (KV-cache traffic).
    pub decode_per_context_token: f64,
}

impl LinearCostModel {
    /// A model with round decode/prefill numbers loosely shaped like a 70B
    /// deployment (tens of milliseconds per step), handy in tests.
    #[must_use]
    pub fn default_70b() -> Self {
        LinearCostModel {
            prefill_base: 0.01,
            prefill_per_token: 2e-4,
            decode_base: 0.03,
            decode_per_sequence: 5e-4,
            decode_per_context_token: 2e-6,
        }
    }
}

impl ServingCostModel for LinearCostModel {
    fn prefill_seconds(&mut self, prompt_tokens: usize) -> f64 {
        self.prefill_base + self.prefill_per_token * prompt_tokens as f64
    }

    fn decode_step_seconds(&mut self, batch: usize, max_context_tokens: usize) -> f64 {
        self.decode_base
            + self.decode_per_sequence * batch as f64
            + self.decode_per_context_token * max_context_tokens as f64
    }
}

/// Registering one shipped block is a metadata write, not a GeMM; this
/// nominal per-prefill cost keeps [`DecodePoolCostModel`]'s answers
/// strictly positive (the [`ServingCostModel`] contract) without ever
/// being visible next to real step latencies.
pub const SHIPPED_PREFILL_EPSILON_S: f64 = 1e-9;

/// The cost model of a *decode-pool* replica in a disaggregated
/// prefill/decode deployment ([`crate::sweep::simulate_disaggregated`]):
/// every admitted request arrives with its KV already computed by the
/// prefill pool and shipped over the interconnect
/// ([`crate::KvShipSpec`] prices the transfer), so "prefill" here is just
/// registering the shipped blocks.
///
/// This is the one sanctioned exception to the trait's "prefill must be
/// strictly positive" contract's *spirit*: prefills return the nominal
/// [`SHIPPED_PREFILL_EPSILON_S`] (still strictly positive, so the letter
/// holds and event ordering stays total), while decode steps delegate to
/// the wrapped model unchanged.
#[derive(Debug, Clone)]
pub struct DecodePoolCostModel<C: ServingCostModel> {
    inner: C,
}

impl<C: ServingCostModel> DecodePoolCostModel<C> {
    /// Wraps a replica cost model, zeroing its prefill side.
    #[must_use]
    pub fn new(inner: C) -> Self {
        DecodePoolCostModel { inner }
    }
}

impl<C: ServingCostModel> ServingCostModel for DecodePoolCostModel<C> {
    fn prefill_seconds(&mut self, _prompt_tokens: usize) -> f64 {
        SHIPPED_PREFILL_EPSILON_S
    }

    fn decode_step_seconds(&mut self, batch: usize, max_context_tokens: usize) -> f64 {
        self.inner.decode_step_seconds(batch, max_context_tokens)
    }

    fn prefill_seconds_cached(
        &mut self,
        _prompt_tokens: usize,
        _cached_prefix_tokens: usize,
    ) -> f64 {
        SHIPPED_PREFILL_EPSILON_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_model_is_deterministic_and_cached() {
        let mut cost = EstimatorCostModel::new(
            MachineConfig::spr_hbm(),
            LlmModel::llama2_70b(),
            CompressionScheme::bf8_sparse(0.05),
            Engine::deca_default(),
        );
        let a = cost.decode_step_seconds(4, 300);
        let b = cost.decode_step_seconds(4, 300);
        assert_eq!(a, b);
        assert!(a > 0.0);
        // 300 and 500 land in the same 256-token bucket (both round to 512).
        assert_eq!(a, cost.decode_step_seconds(4, 500));
        assert!(cost.decode_step_seconds(4, 2000) > a);
        let p = cost.prefill_seconds(100);
        assert_eq!(p, cost.prefill_seconds(128));
        assert!(cost.prefill_seconds(1024) > p);
    }

    #[test]
    fn deca_steps_are_faster_than_software_steps() {
        let build = |engine| {
            EstimatorCostModel::new(
                MachineConfig::spr_hbm(),
                LlmModel::llama2_70b(),
                CompressionScheme::bf8_sparse(0.05),
                engine,
            )
        };
        let mut sw = build(Engine::software());
        let mut deca = build(Engine::deca_default());
        assert!(deca.decode_step_seconds(1, 128) < sw.decode_step_seconds(1, 128));
        assert!(deca.prefill_seconds(128) <= sw.prefill_seconds(128));
    }

    #[test]
    fn sharded_replicas_price_the_plan() {
        let build = |spec, interconnect| {
            EstimatorCostModel::sharded(
                MachineConfig::spr_hbm(),
                LlmModel::llama2_70b(),
                CompressionScheme::bf8_sparse(0.05),
                Engine::deca_default(),
                spec,
                interconnect,
            )
        };
        // The single-socket plan over a free interconnect is the unsharded
        // model, bit for bit.
        let mut single = build(ShardSpec::single(), InterconnectModel::zero_cost());
        let mut unsharded = EstimatorCostModel::new(
            MachineConfig::spr_hbm(),
            LlmModel::llama2_70b(),
            CompressionScheme::bf8_sparse(0.05),
            Engine::deca_default(),
        );
        assert_eq!(
            single.decode_step_seconds(4, 1000).to_bits(),
            unsharded.decode_step_seconds(4, 1000).to_bits()
        );
        assert_eq!(
            single.prefill_seconds(512).to_bits(),
            unsharded.prefill_seconds(512).to_bits()
        );
        assert_eq!(single.shard_spec(), ShardSpec::single());
        // A TP2 replica over a real interconnect still beats one socket on
        // the weight-stream-bound decode step.
        let mut tp2 = build(ShardSpec::tp(2), InterconnectModel::spr_upi());
        assert_eq!(tp2.shard_spec().sockets(), 2);
        assert!(tp2.decode_step_seconds(4, 1000) < unsharded.decode_step_seconds(4, 1000));
    }

    #[test]
    fn decompress_backend_threads_through_without_moving_latency() {
        let build = || {
            EstimatorCostModel::new(
                MachineConfig::spr_hbm(),
                LlmModel::llama2_70b(),
                CompressionScheme::bf8_sparse(0.05),
                Engine::deca_default(),
            )
        };
        // All decompression backends are bit-exact, so switching the
        // serving stack to the auto-tuned engine must not move a single
        // modeled latency bit.
        let mut base = build();
        let mut tuned = build().with_decompress_backend(EngineKind::AutoTuned);
        assert_eq!(
            base.decode_step_seconds(4, 300).to_bits(),
            tuned.decode_step_seconds(4, 300).to_bits()
        );
        assert_eq!(
            base.prefill_seconds(128).to_bits(),
            tuned.prefill_seconds(128).to_bits()
        );
        assert_eq!(
            base.prefill_seconds_cached(256, 128).to_bits(),
            tuned.prefill_seconds_cached(256, 128).to_bits()
        );
    }

    #[test]
    fn linear_model_shapes() {
        let mut m = LinearCostModel::default_70b();
        assert!(m.decode_step_seconds(16, 1024) > m.decode_step_seconds(1, 0));
        assert!(m.prefill_seconds(1000) > m.prefill_seconds(10));
    }

    #[test]
    fn decode_pool_model_zeroes_prefill_and_keeps_decode() {
        let mut base = LinearCostModel::default_70b();
        let mut pool = DecodePoolCostModel::new(base);
        assert_eq!(pool.prefill_seconds(4096), SHIPPED_PREFILL_EPSILON_S);
        assert_eq!(
            pool.prefill_seconds_cached(4096, 128),
            SHIPPED_PREFILL_EPSILON_S
        );
        assert!(pool.prefill_seconds(4096) > 0.0);
        assert_eq!(
            pool.decode_step_seconds(8, 2048).to_bits(),
            base.decode_step_seconds(8, 2048).to_bits()
        );
    }
}
