//! The serving schedulers: vLLM/Orca-style continuous batching, the paged
//! (PagedAttention-style) variant on the block allocator, and the classic
//! static (run-to-completion) batching baseline.
//!
//! All run on one discrete-event core ([`crate::event`]): simulation time
//! advances by popping typed events — request arrivals, prefill/decode
//! step completions, preemption re-queues — off a binary-heap event queue
//! instead of the old step-and-rescan loop. The engine still alternates
//! *prefill steps* (process the prompts of newly admitted requests —
//! prefill-prioritized, as in vLLM's default policy) and *decode steps*
//! (one token for every running sequence); what changed is the
//! bookkeeping around them:
//!
//! * arrivals are heap events pulled lazily — one at a time — from the
//!   request source, which can be a materialized [`RequestTrace`] or any
//!   arrival-ordered iterator ([`ServingSimulator::run_streamed`]), so a
//!   multi-million-request workload streams through in O(batch + queue)
//!   memory (no per-step `next_arrival` probing, and idle spans are one
//!   pop, not a scan),
//! * occupancy, block utilization and fragmentation come from running
//!   counters maintained at admit/grow/preempt/retire time (no per-step
//!   stamp walk over every sequence's block list),
//! * the time-weighted means integrate the signals over exact inter-event
//!   intervals — including idle gaps and the partial intervals an arrival
//!   splits a step into — via [`crate::metrics::TimeWeightedMean`].
//!
//! The reserve-up-front policies admit against a request's whole
//! `prompt + output` footprint, so the KV-cache budget can never be
//! exceeded and no preemption is needed;
//! [`SchedulerKind::PagedContinuous`] admits on *current* need, allocates
//! [`crate::kv`] blocks on demand as sequences grow, shares prompt
//! prefixes through the [`crate::prefix`] radix cache, and preempts by
//! recompute when the pool runs dry.
//!
//! The pre-event-core step loop survives as a test-only reference
//! implementation (`scheduler::reference`); the equivalence property
//! suite proves the event core reproduces its reports exactly (modulo the
//! interval-integrated means) on seeded traces for all three policies.

use std::collections::{HashMap, VecDeque};

use crate::cost::{ChunkWork, ServingCostModel, StepMix};
use crate::event::{Event, EventQueue};
use crate::kv::{BlockAllocator, BlockId};
use crate::lora::{AdapterCache, AdapterId, AdapterModel, AdapterStats};
use crate::metrics::{RequestRecord, ServingMetrics, SloTarget, TimeWeightedMean};
use crate::prefix::PrefixCache;
use crate::tenant::{QosAdmission, QosClass, QosStats};
use crate::tier::{chain_hash, KvShipSpec, KvTierModel, TierKind, TierResidency, PATH_HASH_SEED};
use crate::workload::{splitmix64, Request, RequestTrace};

/// Which admission policy the simulated server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// Continuous batching: requests join the running batch at any token
    /// boundary and leave on completion. Admission reserves the whole
    /// `prompt + output` KV footprint up front.
    ContinuousBatching,
    /// Static batching: a batch is formed from the queue only when the
    /// server is idle and runs to completion before the next admission.
    StaticBatching,
    /// Paged continuous batching: admission on current need, block-granular
    /// on-demand KV allocation, optional radix-tree prefix sharing, and
    /// preempt-by-recompute when allocation fails.
    PagedContinuous,
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::ContinuousBatching => write!(f, "continuous"),
            SchedulerKind::StaticBatching => write!(f, "static"),
            SchedulerKind::PagedContinuous => write!(f, "paged"),
        }
    }
}

/// Default tokens per KV block of the paged policy (vLLM's default).
pub const DEFAULT_BLOCK_SIZE: usize = 16;

/// Speculative-decoding policy of a replica: every *pure* decode step
/// becomes a draft-and-verify burst of `draft_tokens` drafts priced by
/// [`crate::cost::ServingCostModel::speculative_burst_seconds`], and each
/// decoding sequence retires its accepted prefix (plus the verify step's
/// own token) when the burst completes. Acceptance is a deterministic
/// seeded draw per (request, burst), so two runs of the same trace accept
/// the exact same tokens. Decodes that ride along inside a chunked batch
/// step stay plain single-token decodes — speculation only pays off when
/// the step is decode-bound.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpeculationSpec {
    /// Draft tokens proposed per burst (0 disables speculation).
    pub draft_tokens: usize,
    /// Probability each draft token is accepted, conditioned on every
    /// earlier draft in the burst being accepted (the standard
    /// longest-accepted-prefix model).
    pub acceptance_rate: f64,
    /// Seed of the deterministic acceptance draws.
    pub seed: u64,
}

impl SpeculationSpec {
    /// Speculation switched off: every decode step emits one token.
    #[must_use]
    pub fn disabled() -> Self {
        SpeculationSpec {
            draft_tokens: 0,
            acceptance_rate: 0.0,
            seed: 0,
        }
    }

    /// A burst of `draft_tokens` drafts accepted at `acceptance_rate`.
    ///
    /// # Panics
    ///
    /// Panics if the acceptance rate is outside `[0, 1]`.
    #[must_use]
    pub fn new(draft_tokens: usize, acceptance_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&acceptance_rate),
            "acceptance rate must be in [0, 1]"
        );
        SpeculationSpec {
            draft_tokens,
            acceptance_rate,
            seed,
        }
    }

    /// Whether decode steps run as draft-and-verify bursts.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.draft_tokens > 0
    }

    /// Accepted draft tokens of one burst: the longest prefix of the
    /// `draft_tokens` drafts whose seeded uniform draws all land under the
    /// acceptance rate. Deterministic in `(seed, request_id, burst)`, so
    /// replays and the reference loop reproduce the run bit for bit; rate
    /// 1.0 accepts every draft, rate 0.0 none.
    #[must_use]
    pub fn accepted_tokens(&self, request_id: u64, burst: u64) -> usize {
        let base = self
            .seed
            .wrapping_add(request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(burst.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut accepted = 0;
        for i in 0..self.draft_tokens as u64 {
            let unit = (splitmix64(base.wrapping_add(i)) >> 11) as f64 / (1u64 << 53) as f64;
            if unit < self.acceptance_rate {
                accepted += 1;
            } else {
                break;
            }
        }
        accepted
    }
}

/// Configuration of one simulated serving replica.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingConfig {
    /// Maximum sequences decoded together.
    pub max_batch: usize,
    /// KV-cache budget in tokens (across all resident sequences), e.g. from
    /// [`deca_llm::footprint::max_kv_tokens`]. The paged policy carves this
    /// into `kv_budget_tokens / block_size` whole blocks.
    pub kv_budget_tokens: usize,
    /// Admission policy.
    pub scheduler: SchedulerKind,
    /// Tokens per KV block ([`SchedulerKind::PagedContinuous`] only;
    /// ignored by the reserve-up-front policies).
    pub block_size: usize,
    /// Whether the paged policy shares prompt prefixes through the radix
    /// cache (ignored by the reserve-up-front policies).
    pub prefix_sharing: bool,
    /// KV tiers below HBM ([`SchedulerKind::PagedContinuous`] only).
    /// Disabled by default; with capacity, preemption chooses
    /// swap-vs-recompute by modeled cost and cold prefix blocks demote
    /// instead of evict.
    #[serde(default = "KvTierModel::disabled")]
    pub tiers: KvTierModel,
    /// KV shipping on arrival (the disaggregated decode pool's inbound
    /// transfer). Disabled by default; when enabled, every arrival's KV
    /// crosses the interconnect before the request becomes admissible.
    #[serde(default = "KvShipSpec::disabled")]
    pub kv_ship: KvShipSpec,
    /// Chunked prefill: prompts are split into chunks of at most this many
    /// tokens and interleaved with the decode batch inside chunked batch
    /// steps ([`crate::cost::StepMix`]), so a long document never
    /// monopolizes the engine for a whole prompt. `None` (the default)
    /// prefills whole prompts in dedicated waves — the classic
    /// prefill-prioritized schedule.
    #[serde(default)]
    pub chunk_budget_tokens: Option<usize>,
    /// Speculative decoding policy. Disabled by default.
    #[serde(default = "SpeculationSpec::disabled")]
    pub speculation: SpeculationSpec,
    /// LoRA adapter paging ([`crate::lora`]). Disabled by default; when
    /// enabled, the paged scheduler carves the adapter cache's blocks out
    /// of the KV pool, and every batch step activating a non-resident
    /// adapter pays a weight load.
    #[serde(default = "AdapterModel::disabled")]
    pub adapters: AdapterModel,
    /// Consecutive Interactive-over-Batch admission bypasses before a
    /// waiting Batch request is force-admitted ([`crate::tenant`]'s aging
    /// rule — the anti-starvation bound). Irrelevant on single-class
    /// traces, where admission degenerates to plain FIFO.
    #[serde(default = "default_qos_aging")]
    pub qos_aging: usize,
}

/// Default aging threshold of the QoS admission policy.
fn default_qos_aging() -> usize {
    8
}

impl ServingConfig {
    /// A continuous-batching replica.
    #[must_use]
    pub fn continuous(max_batch: usize, kv_budget_tokens: usize) -> Self {
        ServingConfig {
            max_batch,
            kv_budget_tokens,
            scheduler: SchedulerKind::ContinuousBatching,
            block_size: DEFAULT_BLOCK_SIZE,
            prefix_sharing: false,
            tiers: KvTierModel::disabled(),
            kv_ship: KvShipSpec::disabled(),
            chunk_budget_tokens: None,
            speculation: SpeculationSpec::disabled(),
            adapters: AdapterModel::disabled(),
            qos_aging: default_qos_aging(),
        }
    }

    /// A static-batching replica with the same resources.
    #[must_use]
    pub fn static_batching(max_batch: usize, kv_budget_tokens: usize) -> Self {
        ServingConfig {
            scheduler: SchedulerKind::StaticBatching,
            ..ServingConfig::continuous(max_batch, kv_budget_tokens)
        }
    }

    /// A paged continuous-batching replica (prefix sharing off; enable it
    /// with [`ServingConfig::with_prefix_sharing`]).
    #[must_use]
    pub fn paged(max_batch: usize, kv_budget_tokens: usize, block_size: usize) -> Self {
        ServingConfig {
            max_batch,
            kv_budget_tokens,
            scheduler: SchedulerKind::PagedContinuous,
            block_size,
            prefix_sharing: false,
            tiers: KvTierModel::disabled(),
            kv_ship: KvShipSpec::disabled(),
            chunk_budget_tokens: None,
            speculation: SpeculationSpec::disabled(),
            adapters: AdapterModel::disabled(),
            qos_aging: default_qos_aging(),
        }
    }

    /// The same replica under the other admission policy.
    #[must_use]
    pub fn with_scheduler(self, scheduler: SchedulerKind) -> Self {
        ServingConfig { scheduler, ..self }
    }

    /// The same replica with prefix sharing switched on or off.
    #[must_use]
    pub fn with_prefix_sharing(self, prefix_sharing: bool) -> Self {
        ServingConfig {
            prefix_sharing,
            ..self
        }
    }

    /// The same replica with a KV tier hierarchy below HBM.
    #[must_use]
    pub fn with_tiers(self, tiers: KvTierModel) -> Self {
        ServingConfig { tiers, ..self }
    }

    /// The same replica with inbound KV shipping on every arrival.
    #[must_use]
    pub fn with_kv_ship(self, kv_ship: KvShipSpec) -> Self {
        ServingConfig { kv_ship, ..self }
    }

    /// The same replica with chunked prefill on (`Some(budget)`) or off
    /// (`None`).
    #[must_use]
    pub fn with_chunked_prefill(self, chunk_budget_tokens: Option<usize>) -> Self {
        ServingConfig {
            chunk_budget_tokens,
            ..self
        }
    }

    /// The same replica under a speculative-decoding policy.
    #[must_use]
    pub fn with_speculation(self, speculation: SpeculationSpec) -> Self {
        ServingConfig {
            speculation,
            ..self
        }
    }

    /// The same replica with LoRA adapter paging modeled.
    #[must_use]
    pub fn with_adapters(self, adapters: AdapterModel) -> Self {
        ServingConfig { adapters, ..self }
    }

    /// The same replica with a different QoS aging threshold (the maximum
    /// consecutive Interactive bypasses a waiting Batch request endures).
    #[must_use]
    pub fn with_qos_aging(self, qos_aging: usize) -> Self {
        ServingConfig { qos_aging, ..self }
    }
}

/// Paged-KV counters of one [`SchedulerKind::PagedContinuous`] run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PagedStats {
    /// Tokens per block.
    pub block_size: usize,
    /// Blocks in the pool (`kv_budget_tokens / block_size`).
    pub total_blocks: usize,
    /// Largest allocated-block count observed.
    pub peak_allocated_blocks: usize,
    /// Time-weighted mean fraction of the pool allocated, integrated over
    /// inter-event intervals (idle spans included).
    pub mean_block_utilization: f64,
    /// Time-weighted mean fraction of *sequence-held* block slots not
    /// backing a resident token — the waste of block-granular rounding.
    /// (Blocks held only by the prefix cache are full of cached tokens and
    /// are not waste, so they are excluded; a block shared by N sequences
    /// is one physical block, so it contributes its slots and its tokens
    /// once.)
    pub mean_internal_fragmentation: f64,
    /// Sequences preempted (blocks freed, request re-queued — by
    /// recompute or by swap-out).
    pub preemptions: u64,
    /// Blocks evicted from the prefix cache to satisfy allocations.
    pub cache_evictions: u64,
    /// Largest prefix-cache residency observed, in blocks.
    pub cache_peak_resident_blocks: usize,
    /// Prompt tokens served from the prefix cache (prefill skipped).
    pub prefix_hit_tokens: u64,
    /// Prompt tokens actually prefilled (the uncached suffixes).
    pub prefix_uncached_tokens: u64,
    /// Preemptions resolved by swapping the victim's KV to a lower tier
    /// instead of recomputing it ([`crate::KvTierModel`]).
    #[serde(default)]
    pub swap_outs: u64,
    /// Swapped-out sequences whose KV finished reading back into HBM.
    #[serde(default)]
    pub swap_ins: u64,
    /// Total blocks written out across all swap-outs.
    #[serde(default)]
    pub swapped_out_blocks: u64,
    /// Cold prefix blocks demoted to a lower tier instead of dropped.
    #[serde(default)]
    pub tier_demotions: u64,
    /// Demoted prefix blocks promoted back to HBM by a later admission
    /// (a prefill priced as a transfer instead of compute).
    #[serde(default)]
    pub tier_promotions: u64,
    /// Arrivals whose KV crossed the interconnect before admission
    /// ([`crate::KvShipSpec`], the disaggregated decode pool).
    #[serde(default)]
    pub kv_transfers: u64,
    /// Largest DDR-tier occupancy observed, in blocks.
    #[serde(default)]
    pub peak_ddr_blocks: usize,
    /// Largest disk-tier occupancy observed, in blocks.
    #[serde(default)]
    pub peak_disk_blocks: usize,
    /// Time-weighted mean fraction of the DDR tier occupied (0 when the
    /// tier is disabled).
    #[serde(default)]
    pub mean_ddr_occupancy: f64,
    /// Time-weighted mean fraction of the disk tier occupied (0 when the
    /// tier is disabled).
    #[serde(default)]
    pub mean_disk_occupancy: f64,
}

impl PagedStats {
    /// Fraction of prompt tokens served from the prefix cache.
    #[must_use]
    pub fn prefix_hit_rate(&self) -> f64 {
        let total = self.prefix_hit_tokens + self.prefix_uncached_tokens;
        if total == 0 {
            0.0
        } else {
            self.prefix_hit_tokens as f64 / total as f64
        }
    }
}

/// A request resident in the running batch.
#[derive(Debug, Clone, Copy)]
struct Active {
    /// Slot id of the request in the run's slot store.
    idx: usize,
    /// Whether the prompt has been processed.
    prefilled: bool,
    /// Prompt tokens prefilled so far — the chunk cursor of chunked
    /// prefill (equals the prompt once `prefilled`; unused, and left at
    /// zero, when whole prompts prefill in dedicated waves).
    prefilled_tokens: usize,
    /// Draft-and-verify bursts this sequence has decoded through — the
    /// per-sequence counter feeding the deterministic acceptance draws.
    spec_bursts: u64,
    /// Time the first output token was produced (valid once prefilled).
    first_token_s: f64,
    /// Tokens currently in the KV cache (prompt + generated so far).
    context_tokens: usize,
    /// Decode tokens still to generate (the prefill emits the first).
    remaining_decode: usize,
    /// KV tokens reserved against the budget at admission.
    reserved_tokens: usize,
    /// Time the last output token was produced (set once generation
    /// finishes; under static batching the slot may stay blocked longer).
    done_s: Option<f64>,
}

/// Everything one serving run produced. `PartialEq` so determinism is
/// directly assertable: two runs of the same trace compare equal.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingReport {
    /// The admission policy that ran.
    pub scheduler: SchedulerKind,
    /// Completed requests with their lifecycle timestamps.
    pub records: Vec<RequestRecord>,
    /// Requests admitted into the batch over the whole run.
    pub admitted: usize,
    /// Requests rejected at admission (their full KV footprint exceeds the
    /// budget outright, so they could never run).
    pub rejected: usize,
    /// Wall-clock end of the run (last completion).
    pub makespan_s: f64,
    /// KV budget the run was configured with.
    pub kv_budget_tokens: usize,
    /// Peak KV tokens *reserved* against the budget at any instant.
    pub peak_kv_reserved_tokens: usize,
    /// Peak KV tokens actually resident (prompt + generated so far). Under
    /// paged prefix sharing, blocks shared across sequences count once, so
    /// this never exceeds the pool.
    pub peak_kv_occupied_tokens: usize,
    /// Time-weighted mean KV occupancy as a fraction of the budget
    /// (distinct resident tokens, so at most 1.0), integrated over
    /// inter-event intervals — idle gaps count as zero occupancy.
    pub mean_kv_occupancy: f64,
    /// Largest decode batch observed.
    pub peak_batch: usize,
    /// Largest admission-queue depth observed.
    pub peak_queue_depth: usize,
    /// Time-weighted mean admission-queue depth, integrated over
    /// inter-event intervals (an arrival mid-step raises the depth from
    /// its own instant, not retroactively over the whole step).
    pub mean_queue_depth: f64,
    /// Decode steps executed. Under speculation each is one
    /// draft-and-verify burst.
    pub decode_steps: u64,
    /// Prefill steps executed (one per admission wave).
    pub prefill_steps: u64,
    /// Chunked batch steps executed (prefill chunks interleaved with the
    /// decode batch; zero when chunked prefill is off).
    #[serde(default)]
    pub chunk_steps: u64,
    /// Prompt tokens prefilled inside chunked batch steps. Summed over a
    /// run without preemption this equals the admitted prompt tokens —
    /// the chunk-boundary conservation law the property suite pins.
    #[serde(default)]
    pub chunked_prefill_tokens: u64,
    /// Per-class admission and fairness counters ([`crate::tenant`]). On
    /// the paged policy these count *batch entries*, so re-admissions
    /// after preemption count again (unlike [`ServingReport::admitted`]).
    #[serde(default)]
    pub qos: QosStats,
    /// Adapter-cache counters ([`crate::lora`]); all zero on adapter-free
    /// runs.
    #[serde(default)]
    pub adapters: AdapterStats,
    /// Paged-KV counters (`None` for the reserve-up-front policies).
    pub paged: Option<PagedStats>,
}

impl ServingReport {
    /// Aggregated latency/throughput metrics of the run.
    #[must_use]
    pub fn metrics(&self) -> ServingMetrics {
        ServingMetrics::from_records(&self.records, self.rejected, self.makespan_s)
    }

    /// Requests per second that met `slo`.
    #[must_use]
    pub fn goodput_rps(&self, slo: &SloTarget) -> f64 {
        ServingMetrics::goodput_rps(&self.records, slo, self.makespan_s)
    }

    /// Completed requests.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.records.len()
    }

    /// Completed-request records of one QoS class.
    #[must_use]
    pub fn class_records(&self, class: QosClass) -> Vec<RequestRecord> {
        self.records
            .iter()
            .filter(|r| r.qos == class)
            .copied()
            .collect()
    }

    /// Aggregated metrics of one QoS class (its rejections from
    /// [`ServingReport::qos`], its span the whole run's makespan).
    #[must_use]
    pub fn class_metrics(&self, class: QosClass) -> ServingMetrics {
        let rejected = match class {
            QosClass::Interactive => self.qos.interactive_rejected,
            QosClass::Batch => self.qos.batch_rejected,
        };
        ServingMetrics::from_records(&self.class_records(class), rejected, self.makespan_s)
    }

    /// Requests per second of one QoS class that met `slo`.
    #[must_use]
    pub fn class_goodput_rps(&self, class: QosClass, slo: &SloTarget) -> f64 {
        ServingMetrics::goodput_rps(&self.class_records(class), slo, self.makespan_s)
    }
}

/// A single serving replica: a cost model plus a scheduler configuration.
/// Driving it over a [`RequestTrace`] is a pure function of its inputs.
#[derive(Debug, Clone)]
pub struct ServingSimulator<C: ServingCostModel> {
    cost: C,
    config: ServingConfig,
}

impl<C: ServingCostModel> ServingSimulator<C> {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or the KV budget is zero, if a configured
    /// chunk budget is zero, if the speculative acceptance rate leaves
    /// `[0, 1]`, or — for the paged policy — if the budget does not hold
    /// at least one whole block, or if an enabled adapter cache's
    /// reservation would not leave at least one block for sequences.
    #[must_use]
    pub fn new(cost: C, config: ServingConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.kv_budget_tokens > 0, "KV budget must be positive");
        if let Some(budget) = config.chunk_budget_tokens {
            assert!(budget > 0, "chunk budget must be positive");
        }
        assert!(
            (0.0..=1.0).contains(&config.speculation.acceptance_rate),
            "acceptance rate must be in [0, 1]"
        );
        if config.scheduler == SchedulerKind::PagedContinuous {
            assert!(config.block_size > 0, "block size must be positive");
            assert!(
                config.kv_budget_tokens >= config.block_size,
                "the KV budget must hold at least one whole block"
            );
            if config.adapters.enabled() {
                assert!(
                    config.adapters.reserved_blocks(config.block_size)
                        < config.kv_budget_tokens / config.block_size,
                    "the adapter cache reservation must leave KV blocks for sequences"
                );
            }
        }
        ServingSimulator { cost, config }
    }

    /// The replica configuration.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Consumes the simulator and returns the cost model (with its caches
    /// warm, ready for the next run).
    #[must_use]
    pub fn into_cost_model(self) -> C {
        self.cost
    }

    /// Simulates serving the whole trace to drain: every request is either
    /// completed or rejected when this returns, so
    /// `admitted == completed` and `completed + rejected == trace.len()`.
    pub fn run(&mut self, trace: &RequestTrace) -> ServingReport {
        self.run_streamed(trace.requests().iter().copied())
    }

    /// Simulates serving a stream of requests to drain without ever
    /// materializing them: arrivals are pulled from the iterator lazily,
    /// one at a time, and retired request slots are recycled, so memory
    /// stays O(batch + queue) however long the workload runs. Requests
    /// must arrive in non-decreasing `arrival_s` order with ids assigned
    /// in that order — exactly what [`RequestTrace`] holds and
    /// [`crate::workload::SharedPrefixChatStream`] emits — and on the same
    /// request sequence this produces bit-identical reports to
    /// [`ServingSimulator::run`].
    pub fn run_streamed<I>(&mut self, requests: I) -> ServingReport
    where
        I: IntoIterator<Item = Request>,
    {
        if self.config.scheduler == SchedulerKind::PagedContinuous {
            let mut core = PagedRunCore::new(self.config, requests.into_iter());
            core.drive(&mut self.cost);
            core.into_report()
        } else {
            let mut core = RunCore::new(self.config, requests.into_iter());
            core.drive(&mut self.cost);
            core.into_report()
        }
    }
}

/// The event-driven state of one reserve-up-front serving run.
///
/// Engine steps are *computed at their start*: the step's per-request
/// progress is applied and its completion event scheduled `dt` ahead, so
/// the arithmetic (and therefore every timestamp) is identical to the
/// reference step loop's, while arrivals landing inside the step interval
/// merely join the admission queue until the completion event fires.
struct RunCore<I> {
    config: ServingConfig,
    /// Arrival-ordered request source; pulled lazily, one outstanding
    /// arrival event at a time.
    source: I,
    /// Requests currently alive in the run (queued or running), indexed by
    /// the slot ids that `queue`/`running` carry. Slots are recycled as
    /// requests retire or reject, so the store stays O(batch + queue)
    /// even on an unbounded source.
    slots: Vec<Request>,
    /// Recycled slot indices available for the next arrival.
    free_slots: Vec<usize>,
    /// Arrival time of the last request pulled from the source (the
    /// trace-duration lower bound of the makespan).
    last_arrival_s: f64,
    events: EventQueue,
    queue: VecDeque<usize>,
    running: Vec<Active>,
    records: Vec<RequestRecord>,
    now: f64,
    /// Whether a step-completion event is pending in the heap.
    step_in_flight: bool,
    /// KV tokens currently reserved against the budget.
    reserved: usize,
    /// Running Σ of `context_tokens` over the batch (the occupancy
    /// counter the old loop recomputed by scanning every step).
    sum_context: usize,
    /// Admitted-but-not-yet-prefilled sequences in the batch.
    pending_prefill: usize,
    admitted: usize,
    rejected: usize,
    /// The QoS priority-admission policy and its per-class counters.
    qos: QosAdmission,
    /// LRU of resident LoRA adapters; misses price a weight load into the
    /// step that activates them. Held outside the KV budget here — the
    /// reserve-up-front policies have no block pool to carve.
    adapter_cache: AdapterCache,
    peak_reserved: usize,
    peak_occupied: usize,
    peak_batch: usize,
    peak_queue: usize,
    decode_steps: u64,
    prefill_steps: u64,
    chunk_steps: u64,
    chunked_prefill_tokens: u64,
    queue_depth: TimeWeightedMean,
    occupancy: TimeWeightedMean,
}

impl<I: Iterator<Item = Request>> RunCore<I> {
    fn new(config: ServingConfig, source: I) -> Self {
        RunCore {
            config,
            source,
            slots: Vec::new(),
            free_slots: Vec::new(),
            last_arrival_s: 0.0,
            events: EventQueue::new(),
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            now: 0.0,
            step_in_flight: false,
            reserved: 0,
            sum_context: 0,
            pending_prefill: 0,
            admitted: 0,
            rejected: 0,
            qos: QosAdmission::new(),
            adapter_cache: AdapterCache::new(config.adapters.cache_slots),
            peak_reserved: 0,
            peak_occupied: 0,
            peak_batch: 0,
            peak_queue: 0,
            decode_steps: 0,
            prefill_steps: 0,
            chunk_steps: 0,
            chunked_prefill_tokens: 0,
            queue_depth: TimeWeightedMean::new(),
            occupancy: TimeWeightedMean::new(),
        }
    }

    /// Pulls the next request from the source (if any), stores it in a
    /// recycled slot, and schedules its arrival event.
    fn schedule_next_arrival(&mut self) {
        if let Some(request) = self.source.next() {
            self.last_arrival_s = request.arrival_s;
            let slot = if let Some(slot) = self.free_slots.pop() {
                self.slots[slot] = request;
                slot
            } else {
                self.slots.push(request);
                self.slots.len() - 1
            };
            self.events
                .push(request.arrival_s, Event::Arrival { request: slot });
        }
    }

    /// Integrates the time-weighted signals over `[now, t)` and advances
    /// the clock. The signals are piecewise constant between events, so
    /// the integration is exact.
    fn advance_to(&mut self, t: f64) {
        let dt = t - self.now;
        if dt > 0.0 {
            self.queue_depth.observe(self.queue.len() as f64, dt);
            self.occupancy.observe(
                self.sum_context as f64 / self.config.kv_budget_tokens as f64,
                dt,
            );
        }
        self.now = t;
    }

    /// Applies one fired event; returns whether it was a step completion
    /// (a batch boundary).
    fn apply(&mut self, event: Event) -> bool {
        match event {
            Event::Arrival { request } => {
                if self.config.kv_ship.enabled() {
                    // Disaggregated decode pool: the request's prefilled
                    // KV must cross the interconnect before admission.
                    let prompt = self.slots[request].prompt_tokens;
                    let at = self.now + self.config.kv_ship.transfer_seconds(prompt);
                    self.events.push(at, Event::KvTransferDone { request });
                } else {
                    self.queue.push_back(request);
                }
                self.schedule_next_arrival();
                false
            }
            Event::KvTransferDone { request } => {
                self.queue.push_back(request);
                false
            }
            Event::PrefillDone | Event::DecodeDone | Event::ChunkDone => true,
            // The reserve-up-front policies never preempt or swap.
            Event::Preemption { .. } | Event::SwapOutDone { .. } | Event::SwapInDone { .. } => {
                unreachable!("reserve-up-front runs schedule no preemption or swap I/O")
            }
        }
    }

    /// Drives the run to drain: pop events, drain co-timed ones, process
    /// batch boundaries.
    fn drive<C: ServingCostModel>(&mut self, cost: &mut C) {
        self.schedule_next_arrival();
        while let Some(scheduled) = self.events.pop() {
            self.advance_to(scheduled.at_s);
            let mut step_done = self.apply(scheduled.event);
            // Drain everything co-timed with this event before touching
            // the batch: two arrivals at the same instant must both be
            // admissible in the same wave, exactly as the reference loop's
            // pull-then-admit ordering guarantees.
            while let Some(next) = self.events.pop_due(self.now) {
                step_done |= self.apply(next.event);
            }
            if step_done || !self.step_in_flight {
                self.boundary(cost);
            }
        }
    }

    /// One batch boundary: retire the finished step (if any), admit from
    /// the queue, and launch the next step.
    fn boundary<C: ServingCostModel>(&mut self, cost: &mut C) {
        if self.step_in_flight {
            self.step_in_flight = false;
            self.retire();
        }
        self.peak_queue = self.peak_queue.max(self.queue.len());
        self.admit();
        if self.running.is_empty() {
            // Admission is always open on an empty batch (both policies),
            // and an empty batch can reserve against an empty budget, so
            // the queue must have drained into admissions or rejections.
            debug_assert!(self.queue.is_empty());
        } else {
            self.start_step(cost);
            self.step_in_flight = true;
        }
    }

    /// Admission at this batch boundary: QoS-prioritized FIFO
    /// ([`QosAdmission::pick`] — plain FIFO on single-class queues), gated
    /// by the batch limit and the KV reservation budget. Requests whose
    /// whole footprint exceeds the budget outright are rejected (they
    /// could never run).
    fn admit(&mut self) {
        let admission_open = match self.config.scheduler {
            // The paged policy has its own run core; this state machine
            // only ever sees the reserve-up-front kinds.
            SchedulerKind::ContinuousBatching | SchedulerKind::PagedContinuous => true,
            SchedulerKind::StaticBatching => self.running.is_empty(),
        };
        if !admission_open {
            return;
        }
        while self.running.len() < self.config.max_batch {
            let Some(pick) = self.qos.pick(
                self.queue.iter().map(|&s| self.slots[s].qos),
                self.config.qos_aging,
            ) else {
                break;
            };
            let head = self.queue[pick.position];
            let class = self.slots[head].qos;
            let need = self.slots[head].kv_tokens_at_completion();
            if need > self.config.kv_budget_tokens {
                // Could never run on this replica, even alone.
                self.queue.remove(pick.position);
                self.rejected += 1;
                self.qos.record_reject(class);
                self.free_slots.push(head);
                continue;
            }
            if self.reserved + need > self.config.kv_budget_tokens {
                // Head-of-line wait for residents to finish. The pick is
                // not committed, so the aging clock does not advance.
                break;
            }
            self.queue.remove(pick.position);
            self.qos.record_admit(class, pick);
            self.reserved += need;
            self.admitted += 1;
            self.pending_prefill += 1;
            self.running.push(Active {
                idx: head,
                prefilled: false,
                prefilled_tokens: 0,
                spec_bursts: 0,
                first_token_s: 0.0,
                context_tokens: 0,
                remaining_decode: 0,
                reserved_tokens: need,
                done_s: None,
            });
        }
        self.peak_reserved = self.peak_reserved.max(self.reserved);
    }

    /// Launches one engine step — prefill-prioritized, then decode. The
    /// step's progress is applied now (identical arithmetic to the
    /// reference loop) and its completion event scheduled `dt` ahead.
    /// Chunked prefill and speculation branch into their own step kinds;
    /// with both off, the classic wave/decode paths run unchanged.
    fn start_step<C: ServingCostModel>(&mut self, cost: &mut C) {
        self.peak_batch = self.peak_batch.max(self.running.len());
        let (completion, dt) = if self.pending_prefill > 0 {
            if self.config.chunk_budget_tokens.is_some() {
                (Event::ChunkDone, self.chunked_step(cost))
            } else {
                (Event::PrefillDone, self.prefill_wave(cost))
            }
        } else if self.config.speculation.enabled() {
            (Event::DecodeDone, self.speculative_decode_step(cost))
        } else {
            (Event::DecodeDone, self.decode_step(cost))
        };
        let dt = dt + self.adapter_switch_seconds(cost);
        self.peak_occupied = self.peak_occupied.max(self.sum_context);
        self.events.push(self.now + dt, completion);
    }

    /// Adapter-load seconds this step pays: each distinct non-base adapter
    /// of the batch (in batch order) touches the LRU, and every miss
    /// streams its weights in via
    /// [`ServingCostModel::adapter_load_seconds`]. Zero — and no cache
    /// traffic at all — when adapter paging is disabled or the batch is
    /// all base-model, which keeps those runs bit-identical.
    fn adapter_switch_seconds<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        if !self.config.adapters.enabled() {
            return 0.0;
        }
        let weight_tokens = self.config.adapters.weight_tokens;
        let mut wait = 0.0;
        let mut seen: Vec<AdapterId> = Vec::new();
        let slots = &self.slots;
        let cache = &mut self.adapter_cache;
        for active in &self.running {
            let adapter = slots[active.idx].adapter;
            if adapter.is_base() || seen.contains(&adapter) {
                continue;
            }
            seen.push(adapter);
            if !cache.touch(adapter) {
                wait += cost.adapter_load_seconds(weight_tokens);
            }
        }
        wait
    }

    /// The classic prefill wave: the new prompts run back to back; each
    /// request's first token appears as its own prefill finishes.
    fn prefill_wave<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.prefill_steps += 1;
        let mut cursor = self.now;
        for active in self.running.iter_mut().filter(|a| !a.prefilled) {
            let request = &self.slots[active.idx];
            cursor += cost.prefill_seconds(request.prompt_tokens);
            active.prefilled = true;
            active.first_token_s = cursor;
            active.context_tokens = request.prompt_tokens + 1;
            // Saturating: a deserialized trace can bypass
            // `RequestTrace::new`'s output_tokens ≥ 1 normalization, and
            // an underflow here would wedge the run.
            active.remaining_decode = request.output_tokens.saturating_sub(1);
            self.sum_context += active.context_tokens;
        }
        self.pending_prefill = 0;
        cursor - self.now
    }

    /// One plain decode step: every running sequence gains a token.
    fn decode_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.decode_steps += 1;
        let batch = self.running.len();
        let max_context = self
            .running
            .iter()
            .map(|a| a.context_tokens)
            .fold(0, usize::max);
        let dt = cost.decode_step_seconds(batch, max_context);
        for active in &mut self.running {
            if active.remaining_decode > 0 {
                active.remaining_decode -= 1;
                active.context_tokens += 1;
                self.sum_context += 1;
            }
        }
        dt
    }

    /// One chunked batch step: each unprefilled sequence contributes its
    /// next prompt chunk, FIFO against the shared token budget, while the
    /// already-prefilled sequences decode one token alongside — the whole
    /// [`StepMix`] priced as one unit. A sequence whose last chunk lands
    /// here emits its first token at the step's end and starts decoding
    /// *next* step (its token does not ride the decode batch it was not
    /// part of).
    fn chunked_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.chunk_steps += 1;
        let budget = self
            .config
            .chunk_budget_tokens
            .expect("chunked dispatch requires a budget");
        let mut budget_left = budget;
        // (running index, chunk tokens) of this step's prefill side.
        let mut chunks: Vec<(usize, usize)> = Vec::new();
        let mut mix = StepMix::default();
        let mut decoders: Vec<usize> = Vec::new();
        for (pos, active) in self.running.iter().enumerate() {
            if active.prefilled {
                if active.remaining_decode > 0 {
                    decoders.push(pos);
                    mix.max_context_tokens = mix.max_context_tokens.max(active.context_tokens);
                }
            } else if budget_left > 0 {
                let prompt = self.slots[active.idx].prompt_tokens;
                let take = (prompt - active.prefilled_tokens).min(budget_left);
                budget_left -= take;
                chunks.push((pos, take));
                mix.prefill_chunks.push(ChunkWork {
                    suffix_tokens: take,
                    cached_tokens: 0,
                    committed_tokens: active.prefilled_tokens,
                });
            }
        }
        mix.decode_batch = decoders.len();
        let dt = cost.step_seconds(&mix);
        let end = self.now + dt;
        // Decode progress first, so a prefill completing in this step does
        // not also decode in it.
        for &pos in &decoders {
            let active = &mut self.running[pos];
            active.remaining_decode -= 1;
            active.context_tokens += 1;
            self.sum_context += 1;
        }
        for (pos, take) in chunks {
            self.chunked_prefill_tokens += take as u64;
            let active = &mut self.running[pos];
            active.prefilled_tokens += take;
            let request = &self.slots[active.idx];
            if active.prefilled_tokens == request.prompt_tokens {
                active.prefilled = true;
                active.first_token_s = end;
                active.context_tokens = request.prompt_tokens + 1;
                active.remaining_decode = request.output_tokens.saturating_sub(1);
                self.sum_context += active.context_tokens;
                self.pending_prefill -= 1;
            }
        }
        dt
    }

    /// One draft-and-verify burst: the step is priced as `draft_tokens`
    /// draft steps plus one verify, and every decoding sequence retires
    /// its accepted draft prefix plus the verify step's own token.
    fn speculative_decode_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.decode_steps += 1;
        let spec = self.config.speculation;
        let batch = self.running.len();
        let max_context = self
            .running
            .iter()
            .map(|a| a.context_tokens)
            .fold(0, usize::max);
        let dt = cost.speculative_burst_seconds(spec.draft_tokens, batch, max_context);
        let slots = &self.slots;
        for active in &mut self.running {
            if active.remaining_decode > 0 {
                let accepted =
                    spec.accepted_tokens(slots[active.idx].id as u64, active.spec_bursts);
                active.spec_bursts += 1;
                let gained = (accepted + 1).min(active.remaining_decode);
                active.remaining_decode -= gained;
                active.context_tokens += gained;
                self.sum_context += gained;
            }
        }
        dt
    }

    /// Stamps generation-finish times and retires finished sequences.
    /// Under static batching a finished request's record closes at its own
    /// last token, but its slot (and KV reservation) stays blocked until
    /// the whole batch drains — the padding cost of the baseline.
    fn retire(&mut self) {
        // A single-token output is done at the end of its prefill,
        // everything else at the end of the decode step that produced its
        // last token.
        let now = self.now;
        for active in &mut self.running {
            if active.prefilled && active.remaining_decode == 0 && active.done_s.is_none() {
                let request = &self.slots[active.idx];
                active.done_s = Some(if request.output_tokens == 1 {
                    active.first_token_s
                } else {
                    now
                });
            }
        }

        let batch_done = self.running.iter().all(|a| a.done_s.is_some());
        let scheduler = self.config.scheduler;
        let slots = &self.slots;
        let free_slots = &mut self.free_slots;
        let records = &mut self.records;
        let reserved = &mut self.reserved;
        let sum_context = &mut self.sum_context;
        self.running.retain(|active| {
            let release = match scheduler {
                SchedulerKind::ContinuousBatching | SchedulerKind::PagedContinuous => {
                    active.done_s.is_some()
                }
                SchedulerKind::StaticBatching => batch_done,
            };
            if let (true, Some(done_s)) = (release, active.done_s) {
                let request = &slots[active.idx];
                records.push(RequestRecord {
                    id: request.id,
                    arrival_s: request.arrival_s,
                    first_token_s: active.first_token_s,
                    completion_s: done_s,
                    prompt_tokens: request.prompt_tokens,
                    output_tokens: request.output_tokens,
                    qos: request.qos,
                });
                *reserved -= active.reserved_tokens;
                *sum_context -= active.context_tokens;
                free_slots.push(active.idx);
                return false;
            }
            true
        });
    }

    /// Finalizes the report once the source has drained.
    fn into_report(mut self) -> ServingReport {
        self.records.sort_by_key(|r| r.id);
        let makespan = self
            .records
            .iter()
            .map(|r| r.completion_s)
            .fold(self.now.min(self.last_arrival_s), f64::max);
        ServingReport {
            scheduler: self.config.scheduler,
            records: self.records,
            admitted: self.admitted,
            rejected: self.rejected,
            makespan_s: makespan,
            kv_budget_tokens: self.config.kv_budget_tokens,
            peak_kv_reserved_tokens: self.peak_reserved,
            peak_kv_occupied_tokens: self.peak_occupied,
            mean_kv_occupancy: self.occupancy.mean(),
            peak_batch: self.peak_batch,
            peak_queue_depth: self.peak_queue,
            mean_queue_depth: self.queue_depth.mean(),
            decode_steps: self.decode_steps,
            prefill_steps: self.prefill_steps,
            chunk_steps: self.chunk_steps,
            chunked_prefill_tokens: self.chunked_prefill_tokens,
            qos: self.qos.stats(),
            adapters: self.adapter_cache.stats(),
            paged: None,
        }
    }
}

/// A sequence resident in the paged running batch.
#[derive(Debug, Clone)]
struct PagedActive {
    /// Slot id of the request in the run's slot store.
    idx: usize,
    /// Whether the (possibly resumed) prompt has been processed.
    prefilled: bool,
    /// Prompt tokens committed so far (cached + promoted + chunked
    /// prefill) — the chunk cursor of chunked prefill. Unused when whole
    /// prompts prefill in dedicated waves.
    prefilled_tokens: usize,
    /// Draft-and-verify bursts this sequence has decoded through — the
    /// per-sequence counter feeding the deterministic acceptance draws.
    spec_bursts: u64,
    /// Tokens currently resident (prompt + generated so far).
    context_tokens: usize,
    /// Decode tokens still to generate in this residency.
    remaining_decode: usize,
    /// Prompt tokens served from the prefix cache at admission.
    cached_prefix_tokens: usize,
    /// Prompt tokens promoted from a lower KV tier at admission — their
    /// prefill is priced as a swap-in transfer instead of compute.
    promoted_tokens: usize,
    /// Swap-in seconds of the promoted blocks, added to this sequence's
    /// prefill time.
    promote_wait_s: f64,
    /// Whether the sequence is waiting on its swap-in transfer: its HBM
    /// blocks are reserved but decode makes no progress until the
    /// [`Event::SwapInDone`] fires.
    swapping: bool,
    /// KV blocks this sequence holds a reference to, in sequence order.
    blocks: Vec<BlockId>,
    /// Time the last output token was produced (set once generation
    /// finishes).
    done_s: Option<f64>,
}

/// Where a swap-preempted sequence's KV sits while it waits to re-enter
/// the batch: enough state to resume decode exactly where it stopped,
/// without the recompute path's `generated_before` re-prefill.
#[derive(Debug, Clone, Copy)]
struct SwappedSeq {
    /// Tokens resident when the sequence was preempted.
    context_tokens: usize,
    /// Decode tokens it still had to generate.
    remaining_decode: usize,
    /// HBM blocks it held (and will need again to resume).
    blocks_needed: usize,
    /// The tier holding its KV (reservation released at swap-in).
    tier: TierKind,
}

/// A request alive in a paged run (queued or running) plus the per-request
/// side state that must survive preemption: a victim's blocks are freed
/// and it re-queues at the front, but its first-token timestamp is stamped
/// only once (the token was already streamed) and its re-prefill resumes
/// from `prompt + generated` tokens — the recompute includes everything it
/// had produced. The slot is recycled once the request retires or
/// rejects, so the store stays O(batch + queue) on an unbounded source.
#[derive(Debug, Clone, Copy)]
struct PagedSlot {
    request: Request,
    /// Time of the first output token (survives preemption).
    first_token: Option<f64>,
    /// Tokens generated before the latest preemption — the recompute
    /// prefill covers `prompt + generated_before` tokens.
    generated_before: usize,
    /// Whether the request was ever admitted (re-admissions after
    /// preemption do not count twice).
    was_admitted: bool,
}

impl PagedSlot {
    fn new(request: Request) -> Self {
        PagedSlot {
            request,
            first_token: None,
            generated_before: 0,
            was_admitted: false,
        }
    }
}

/// The event-driven state of one paged serving run.
///
/// Occupancy and fragmentation come from running counters instead of the
/// old per-step stamp walk over every sequence's block list: `run_refs`
/// counts, per block, the *running sequences* referencing it (the prefix
/// cache's own references are deliberately excluded), and
/// `occupied = Σ context − block_size · (Σ run_refs − distinct blocks)`
/// de-duplicates shared prefix blocks exactly like the walk did — a
/// shared block is always a full block fully covered by every sharer's
/// context, so each extra sharer over-counts exactly `block_size` tokens.
struct PagedRunCore<I> {
    config: ServingConfig,
    /// Arrival-ordered request source; pulled lazily, one outstanding
    /// arrival event at a time.
    source: I,
    /// Live request slots, indexed by the ids `queue`/`running` carry;
    /// recycled on retire/reject.
    slots: Vec<PagedSlot>,
    /// Recycled slot indices available for the next arrival.
    free_slots: Vec<usize>,
    /// Arrival time of the last request pulled from the source.
    last_arrival_s: f64,
    events: EventQueue,
    queue: VecDeque<usize>,
    running: Vec<PagedActive>,
    records: Vec<RequestRecord>,
    allocator: BlockAllocator,
    cache: Option<PrefixCache>,
    /// Occupancy of the KV tiers below HBM (demoted prefix blocks and
    /// swap-out reservations).
    residency: TierResidency,
    /// Whether any tier below HBM has capacity; cached so the untiered
    /// hot path pays one branch, never a residency probe.
    tiers_enabled: bool,
    /// Swapped-out sequences by slot id, from swap-out until their
    /// swap-in transfer completes.
    swapped: HashMap<usize, SwappedSeq>,
    now: f64,
    step_in_flight: bool,
    admitted: usize,
    rejected: usize,
    /// The QoS priority-admission policy and its per-class counters.
    qos: QosAdmission,
    /// LRU of resident LoRA adapters, backed by `adapter_blocks`.
    adapter_cache: AdapterCache,
    /// Blocks carved out of the pool up front for the adapter cache
    /// (empty when adapter paging is disabled). Held for the whole run:
    /// adapter residency churns *within* this reservation.
    adapter_blocks: Vec<BlockId>,
    /// Victims preempted inside the step being launched; their re-queue
    /// events are scheduled at the step's completion time (the reference
    /// loop pushes them mid-step, but the queue is only read at
    /// boundaries, so deferring to the boundary is equivalent).
    pending_preemptions: Vec<usize>,
    /// Victims swapped out inside the step being launched, with their
    /// swap-out durations; their [`Event::SwapOutDone`] re-queues are
    /// scheduled when the step is (transfer overlaps the step).
    pending_swap_outs: Vec<(usize, f64)>,
    /// Per-block count of *running sequences* referencing it.
    run_refs: Vec<u32>,
    /// Σ over blocks of `run_refs` (sequence→block reference pairs).
    total_run_refs: usize,
    /// Blocks with at least one running-sequence reference.
    distinct_blocks: usize,
    /// Running Σ of `context_tokens` over the batch.
    sum_context: usize,
    /// Admitted-but-not-yet-prefilled sequences in the batch.
    pending_prefill: usize,
    preemptions: u64,
    prefix_hit_tokens: u64,
    prefix_uncached_tokens: u64,
    swap_outs: u64,
    swap_ins: u64,
    swapped_out_blocks: u64,
    tier_demotions: u64,
    tier_promotions: u64,
    kv_transfers: u64,
    peak_ddr_blocks: usize,
    peak_disk_blocks: usize,
    peak_occupied: usize,
    peak_batch: usize,
    peak_queue: usize,
    decode_steps: u64,
    prefill_steps: u64,
    chunk_steps: u64,
    chunked_prefill_tokens: u64,
    queue_depth: TimeWeightedMean,
    occupancy: TimeWeightedMean,
    block_util: TimeWeightedMean,
    fragmentation: TimeWeightedMean,
    ddr_occupancy: TimeWeightedMean,
    disk_occupancy: TimeWeightedMean,
}

impl<I: Iterator<Item = Request>> PagedRunCore<I> {
    fn new(config: ServingConfig, source: I) -> Self {
        let mut allocator =
            BlockAllocator::from_token_budget(config.block_size, config.kv_budget_tokens);
        let total_blocks = allocator.total_blocks();
        let cache = config
            .prefix_sharing
            .then(|| PrefixCache::new(config.block_size));
        let mut adapter_cache = AdapterCache::new(config.adapters.cache_slots);
        let mut adapter_blocks = Vec::new();
        if config.adapters.enabled() {
            // The adapter cache's weights live *inside* the KV pool
            // (the S-LoRA unified-paging scheme): carve its blocks out up
            // front so sequence admission competes against the remainder.
            let reserve = config.adapters.reserved_blocks(config.block_size);
            assert!(
                reserve < total_blocks,
                "the adapter cache reservation must leave KV blocks for sequences"
            );
            for _ in 0..reserve {
                adapter_blocks.push(allocator.alloc().expect("reservation fits the pool"));
            }
            adapter_cache.set_reserved_blocks(reserve);
        }
        PagedRunCore {
            config,
            source,
            slots: Vec::new(),
            free_slots: Vec::new(),
            last_arrival_s: 0.0,
            events: EventQueue::new(),
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            allocator,
            cache,
            residency: TierResidency::new(config.tiers),
            tiers_enabled: config.tiers.enabled(),
            swapped: HashMap::new(),
            now: 0.0,
            step_in_flight: false,
            admitted: 0,
            rejected: 0,
            qos: QosAdmission::new(),
            adapter_cache,
            adapter_blocks,
            pending_preemptions: Vec::new(),
            pending_swap_outs: Vec::new(),
            run_refs: vec![0; total_blocks],
            total_run_refs: 0,
            distinct_blocks: 0,
            sum_context: 0,
            pending_prefill: 0,
            preemptions: 0,
            prefix_hit_tokens: 0,
            prefix_uncached_tokens: 0,
            swap_outs: 0,
            swap_ins: 0,
            swapped_out_blocks: 0,
            tier_demotions: 0,
            tier_promotions: 0,
            kv_transfers: 0,
            peak_ddr_blocks: 0,
            peak_disk_blocks: 0,
            peak_occupied: 0,
            peak_batch: 0,
            peak_queue: 0,
            decode_steps: 0,
            prefill_steps: 0,
            chunk_steps: 0,
            chunked_prefill_tokens: 0,
            queue_depth: TimeWeightedMean::new(),
            occupancy: TimeWeightedMean::new(),
            block_util: TimeWeightedMean::new(),
            fragmentation: TimeWeightedMean::new(),
            ddr_occupancy: TimeWeightedMean::new(),
            disk_occupancy: TimeWeightedMean::new(),
        }
    }

    /// A running sequence took a reference to `block`.
    fn add_run_ref(&mut self, block: BlockId) {
        if self.run_refs[block] == 0 {
            self.distinct_blocks += 1;
        }
        self.run_refs[block] += 1;
        self.total_run_refs += 1;
    }

    /// A running sequence dropped its reference to `block`.
    fn drop_run_ref(&mut self, block: BlockId) {
        self.run_refs[block] -= 1;
        if self.run_refs[block] == 0 {
            self.distinct_blocks -= 1;
        }
        self.total_run_refs -= 1;
    }

    /// Drops one sequence-held block reference: through the prefix cache
    /// when one is attached, so its shared-block bookkeeping resyncs as the
    /// ref-count falls back to the cache's own reference (the
    /// [`PrefixCache::release`] contract), and straight to the allocator
    /// otherwise.
    fn release_block(&mut self, block: BlockId) {
        match &mut self.cache {
            Some(cache) => cache.release(block, &mut self.allocator),
            None => self.allocator.free(block),
        }
    }

    /// Distinct resident tokens across the batch: a prefix block shared by
    /// several sequences backs one physical block, so its tokens count
    /// once, not once per sharer — which is what keeps
    /// `peak_kv_occupied_tokens` within the pool and `mean_kv_occupancy`
    /// within 1.0 under heavy prefix sharing.
    fn occupied_tokens(&self) -> usize {
        self.sum_context - self.config.block_size * (self.total_run_refs - self.distinct_blocks)
    }

    /// Token slots of the blocks held by at least one running sequence.
    fn sequence_slots(&self) -> usize {
        self.distinct_blocks * self.config.block_size
    }

    /// The prompt a (possibly resumed) request must prefill: its original
    /// prompt plus everything it had generated before preemption.
    fn effective_prompt(&self, idx: usize) -> usize {
        let slot = &self.slots[idx];
        slot.request.prompt_tokens + slot.generated_before
    }

    /// Pulls the next request from the source (if any), stores it in a
    /// recycled slot, and schedules its arrival event.
    fn schedule_next_arrival(&mut self) {
        if let Some(request) = self.source.next() {
            self.last_arrival_s = request.arrival_s;
            let slot = if let Some(slot) = self.free_slots.pop() {
                self.slots[slot] = PagedSlot::new(request);
                slot
            } else {
                self.slots.push(PagedSlot::new(request));
                self.slots.len() - 1
            };
            self.events
                .push(request.arrival_s, Event::Arrival { request: slot });
        }
    }

    /// Integrates the time-weighted signals over `[now, t)` — all four are
    /// O(1) reads of running counters — and advances the clock.
    fn advance_to(&mut self, t: f64) {
        let dt = t - self.now;
        if dt > 0.0 {
            let occupied = self.occupied_tokens();
            let seq_slots = self.sequence_slots();
            self.queue_depth.observe(self.queue.len() as f64, dt);
            self.occupancy
                .observe(occupied as f64 / self.allocator.total_tokens() as f64, dt);
            self.block_util.observe(self.allocator.utilization(), dt);
            // Internal fragmentation over the sequence-held slots only
            // (cache-only blocks are full of cached tokens, not waste).
            let frag = if seq_slots > 0 {
                1.0 - occupied as f64 / seq_slots as f64
            } else {
                0.0
            };
            self.fragmentation.observe(frag, dt);
            if self.tiers_enabled {
                let model = self.residency.model();
                let ddr_cap = model.ddr.capacity_blocks;
                let disk_cap = model.disk.capacity_blocks;
                if ddr_cap > 0 {
                    let used = self.residency.used_blocks(TierKind::Ddr);
                    self.ddr_occupancy.observe(used as f64 / ddr_cap as f64, dt);
                }
                if disk_cap > 0 {
                    let used = self.residency.used_blocks(TierKind::Disk);
                    self.disk_occupancy
                        .observe(used as f64 / disk_cap as f64, dt);
                }
            }
        }
        self.now = t;
    }

    /// Applies one fired event; returns whether it was a step completion.
    fn apply(&mut self, event: Event) -> bool {
        match event {
            Event::Arrival { request } => {
                if self.config.kv_ship.enabled() {
                    // Disaggregated decode pool: the request's prefilled
                    // KV must cross the interconnect before admission.
                    let prompt = self.slots[request].request.prompt_tokens;
                    let at = self.now + self.config.kv_ship.transfer_seconds(prompt);
                    self.events.push(at, Event::KvTransferDone { request });
                    self.kv_transfers += 1;
                } else {
                    self.queue.push_back(request);
                }
                self.schedule_next_arrival();
                false
            }
            Event::KvTransferDone { request } => {
                self.queue.push_back(request);
                false
            }
            Event::Preemption { request } => {
                // Preempted work outranks new arrivals; firing in
                // preemption order re-queues successive victims in their
                // original admission order.
                self.queue.push_front(request);
                false
            }
            Event::SwapOutDone { request } => {
                // The victim's KV landed in its tier: it can re-enter the
                // batch (at the queue front, like a recompute victim) as
                // soon as admission finds it HBM blocks.
                self.queue.push_front(request);
                false
            }
            Event::SwapInDone { request } => {
                let swapped = self
                    .swapped
                    .remove(&request)
                    .expect("swap-in completion for a sequence that is not swapped");
                self.residency.release(swapped.tier, swapped.blocks_needed);
                let active = self
                    .running
                    .iter_mut()
                    .find(|a| a.idx == request)
                    .expect("swapping sequence left the batch before its swap-in landed");
                debug_assert!(active.swapping);
                active.swapping = false;
                self.swap_ins += 1;
                false
            }
            Event::PrefillDone | Event::DecodeDone | Event::ChunkDone => true,
        }
    }

    /// Drives the run to drain.
    fn drive<C: ServingCostModel>(&mut self, cost: &mut C) {
        self.schedule_next_arrival();
        while let Some(scheduled) = self.events.pop() {
            self.advance_to(scheduled.at_s);
            let mut step_done = self.apply(scheduled.event);
            while let Some(next) = self.events.pop_due(self.now) {
                step_done |= self.apply(next.event);
            }
            if step_done || !self.step_in_flight {
                self.boundary(cost);
            }
        }
    }

    /// One batch boundary: retire, admit, launch the next step.
    fn boundary<C: ServingCostModel>(&mut self, cost: &mut C) {
        if self.step_in_flight {
            self.step_in_flight = false;
            self.retire();
        }
        self.peak_queue = self.peak_queue.max(self.queue.len());
        self.admit();
        if self.running.is_empty() {
            // With no sequences running, every resident block belongs
            // solely to the prefix cache, so admission can always evict
            // its way to room for the queue head (whose footprint fits
            // the pool outright, or it was rejected above).
            debug_assert!(self.queue.is_empty());
        } else if self.has_steppable_work() {
            self.start_step(cost);
            self.step_in_flight = true;
        }
        // Otherwise every running sequence is waiting on a swap-in: spin
        // no decode steps — each swapping sequence has a `SwapInDone`
        // pending in the heap, so the run is guaranteed to progress.
    }

    /// Whether a step launched now would make progress: something to
    /// prefill, or at least one running sequence that can actually gain a
    /// token. Without tiers this is always true of a non-empty batch
    /// (finished sequences retire at the boundary and unprefilled ones
    /// count as pending prefill); only swap-in waits can make it false.
    fn has_steppable_work(&self) -> bool {
        self.pending_prefill > 0
            || self
                .running
                .iter()
                .any(|a| a.remaining_decode > 0 && !a.swapping)
    }

    /// Probes the lower tiers for demoted continuations of a cached
    /// prefix: each consecutive demoted block promotes back to HBM, its
    /// prefill priced as a swap-in transfer instead of compute. Returns
    /// the promoted token count and the modeled transfer wait.
    fn promote_demoted_suffix(&mut self, ids: &[u64], cached_tokens: usize) -> (usize, f64) {
        if !self.tiers_enabled || self.cache.is_none() {
            return (0, 0.0);
        }
        let block_size = self.config.block_size;
        let mut hash = PATH_HASH_SEED;
        for chunk in ids[..cached_tokens].chunks_exact(block_size) {
            hash = chain_hash(hash, chunk);
        }
        let model = *self.residency.model();
        let mut promoted_tokens = 0;
        let mut promote_wait_s = 0.0;
        for chunk in ids[cached_tokens..].chunks_exact(block_size) {
            let next = chain_hash(hash, chunk);
            let Some(tier) = self.residency.promote(next) else {
                break;
            };
            promoted_tokens += block_size;
            promote_wait_s += model.swap_in_seconds(tier, 1);
            self.tier_promotions += 1;
            hash = next;
        }
        (promoted_tokens, promote_wait_s)
    }

    /// Paged admission: QoS-prioritized FIFO ([`QosAdmission::pick`] —
    /// plain FIFO on single-class queues), gated by the batch limit and by
    /// *current* need — enough free blocks for the prompt and the first
    /// output token, after prefix-cache hits and cold-block eviction —
    /// instead of the whole lifetime footprint. Requests whose completed
    /// footprint exceeds the sequence-usable pool (the adapter cache's
    /// carve excluded) are rejected outright (they could never run, even
    /// alone with the cache flushed).
    fn admit(&mut self) {
        while self.running.len() < self.config.max_batch {
            let Some(pick) = self.qos.pick(
                self.queue.iter().map(|&s| self.slots[s].request.qos),
                self.config.qos_aging,
            ) else {
                break;
            };
            let head = self.queue[pick.position];
            let class = self.slots[head].request.qos;
            if self.swapped.contains_key(&head) {
                // A swapped-out victim resumes instead of re-prefilling:
                // admission waits here (head-of-line within its class)
                // until its blocks fit, then its swap-in transfer starts.
                if !self.admit_swap_in(head, pick) {
                    break;
                }
                continue;
            }
            let request = self.slots[head].request;
            let full_need = self
                .allocator
                .blocks_for_tokens(request.kv_tokens_at_completion());
            if full_need > self.allocator.total_blocks() - self.adapter_blocks.len() {
                self.queue.remove(pick.position);
                self.rejected += 1;
                self.qos.record_reject(class);
                self.free_slots.push(head);
                continue;
            }
            let prompt = self.effective_prompt(head);
            // At least one prompt token must be prefilled to produce the
            // next output token, so the lookup stops one short of the
            // prompt end.
            let ids = if self.cache.is_some() {
                request.stream.token_ids(prompt.saturating_sub(1))
            } else {
                Vec::new()
            };
            let matched = match &mut self.cache {
                Some(cache) => cache.lookup(&ids, &mut self.allocator),
                None => Vec::new(),
            };
            let cached_tokens = matched.len() * self.config.block_size;
            // Blocks for the post-prefill context (prompt + first token).
            let target = self.allocator.blocks_for_tokens(prompt + 1);
            let need_now = target - matched.len();
            // Check feasibility *before* evicting: a head request that
            // cannot be admitted even with the cache fully drained must
            // not flush resident blocks for nothing (later same-prefix
            // arrivals would lose their hits to a failed admission). The
            // O(cache nodes) evictable scan only runs when the free list
            // alone cannot cover the need.
            if self.allocator.free_blocks() < need_now {
                let evictable = self
                    .cache
                    .as_ref()
                    .map_or(0, |cache| cache.evictable_blocks(&self.allocator));
                if self.allocator.free_blocks() + evictable < need_now {
                    // Head-of-line wait: hand the shared references back.
                    for block in matched {
                        self.release_block(block);
                    }
                    break;
                }
            }
            let mut starved = false;
            while self.allocator.free_blocks() < need_now {
                if !self.evict_one() {
                    // Defense in depth: the feasibility count above is the
                    // cascade-deliverable total, but if eviction ever
                    // under-delivers, fall back to head-of-line waiting
                    // rather than spinning on an unevictable cache.
                    starved = true;
                    break;
                }
            }
            if starved {
                for block in matched {
                    self.release_block(block);
                }
                break;
            }
            let (promoted_tokens, promote_wait_s) =
                self.promote_demoted_suffix(&ids, cached_tokens);
            self.queue.remove(pick.position);
            self.qos.record_admit(class, pick);
            let mut blocks = matched;
            for _ in 0..need_now {
                blocks.push(self.allocator.alloc().expect("free blocks checked"));
            }
            for &block in &blocks {
                self.add_run_ref(block);
            }
            if !self.slots[head].was_admitted {
                self.slots[head].was_admitted = true;
                self.admitted += 1;
            }
            self.pending_prefill += 1;
            self.running.push(PagedActive {
                idx: head,
                prefilled: false,
                // The cached and promoted prefix is already committed
                // context: chunked prefill resumes after it.
                prefilled_tokens: cached_tokens + promoted_tokens,
                spec_bursts: 0,
                context_tokens: 0,
                remaining_decode: 0,
                cached_prefix_tokens: cached_tokens,
                promoted_tokens,
                promote_wait_s,
                swapping: false,
                blocks,
                done_s: None,
            });
        }
    }

    /// Re-admits a swapped-out sequence: finds it `blocks_needed` free
    /// HBM blocks (evicting cold cache blocks as usual), schedules its
    /// [`Event::SwapInDone`], and parks it in the batch with `swapping`
    /// set — it holds its slot and blocks but gains no tokens until the
    /// transfer lands. Returns `false` when the blocks don't fit yet
    /// (admission waits head-of-line on the in-flight swap-in).
    fn admit_swap_in(&mut self, head: usize, pick: crate::tenant::QosPick) -> bool {
        let swapped = self.swapped[&head];
        let need = swapped.blocks_needed;
        if self.allocator.free_blocks() < need {
            let evictable = self
                .cache
                .as_ref()
                .map_or(0, |cache| cache.evictable_blocks(&self.allocator));
            if self.allocator.free_blocks() + evictable < need {
                return false;
            }
        }
        while self.allocator.free_blocks() < need {
            if !self.evict_one() {
                return false; // defense in depth, as in `admit`
            }
        }
        self.queue.remove(pick.position);
        // A resumed victim re-enters the batch: that is a per-class batch
        // entry, and it moves the aging clock like a fresh admission.
        self.qos.record_admit(self.slots[head].request.qos, pick);
        let mut blocks = Vec::with_capacity(need);
        for _ in 0..need {
            blocks.push(self.allocator.alloc().expect("free blocks checked"));
        }
        for &block in &blocks {
            self.add_run_ref(block);
        }
        self.sum_context += swapped.context_tokens;
        let swap_in = self
            .residency
            .model()
            .swap_in_seconds(swapped.tier, swapped.blocks_needed);
        self.events
            .push(self.now + swap_in, Event::SwapInDone { request: head });
        self.running.push(PagedActive {
            idx: head,
            prefilled: true,
            prefilled_tokens: swapped.context_tokens,
            spec_bursts: 0,
            context_tokens: swapped.context_tokens,
            remaining_decode: swapped.remaining_decode,
            cached_prefix_tokens: 0,
            promoted_tokens: 0,
            promote_wait_s: 0.0,
            swapping: true,
            blocks,
            done_s: None,
        });
        true
    }

    /// Evicts one cold prefix-cache block; `false` when nothing is
    /// evictable (no cache, or every resident block is still shared).
    /// With tiers enabled the victim *demotes* — its path hash lands in
    /// the residency map so a later admission can promote it back —
    /// instead of vanishing.
    fn evict_one(&mut self) -> bool {
        if self.tiers_enabled {
            let Some(cache) = self.cache.as_mut() else {
                return false;
            };
            let Some(hash) = cache.evict_lru_demoting(&mut self.allocator) else {
                return false;
            };
            if self.residency.demote(hash).is_some() {
                self.tier_demotions += 1;
                self.note_tier_peaks();
            }
            true
        } else {
            self.cache
                .as_mut()
                .is_some_and(|cache| cache.evict_lru(&mut self.allocator))
        }
    }

    /// Updates the peak tier-occupancy counters after a demotion or swap
    /// reservation.
    fn note_tier_peaks(&mut self) {
        self.peak_ddr_blocks = self
            .peak_ddr_blocks
            .max(self.residency.used_blocks(TierKind::Ddr));
        self.peak_disk_blocks = self
            .peak_disk_blocks
            .max(self.residency.used_blocks(TierKind::Disk));
    }

    /// Launches one engine step — prefill-prioritized, then decode — and
    /// schedules its completion (plus any preemption re-queues) `dt`
    /// ahead. Chunked prefill and speculation branch into their own step
    /// kinds; with both off, the classic wave/decode paths run unchanged.
    fn start_step<C: ServingCostModel>(&mut self, cost: &mut C) {
        self.peak_batch = self.peak_batch.max(self.running.len());
        let (completion, dt) = if self.pending_prefill > 0 {
            if self.config.chunk_budget_tokens.is_some() {
                (Event::ChunkDone, self.chunked_step(cost))
            } else {
                (Event::PrefillDone, self.prefill_step(cost))
            }
        } else if self.config.speculation.enabled() {
            (Event::DecodeDone, self.speculative_decode_step(cost))
        } else {
            (Event::DecodeDone, self.decode_step(cost))
        };
        let dt = dt + self.adapter_switch_seconds(cost);
        self.peak_occupied = self.peak_occupied.max(self.occupied_tokens());
        let end = self.now + dt;
        for victim in std::mem::take(&mut self.pending_preemptions) {
            self.events.push(end, Event::Preemption { request: victim });
        }
        // Swap-out transfers start with the step and overlap it; the
        // victim re-queues when its writes land (which may be mid-step —
        // the queue is only read at boundaries, so that is safe).
        for (victim, dur) in std::mem::take(&mut self.pending_swap_outs) {
            self.events
                .push(self.now + dur, Event::SwapOutDone { request: victim });
        }
        self.events.push(end, completion);
    }

    /// Adapter-load seconds this step pays — the [`RunCore`] rule verbatim
    /// (distinct non-base adapters in batch order, misses priced by
    /// [`ServingCostModel::adapter_load_seconds`]), except that swap-in
    /// waiters contribute nothing: they gain no token this step, so their
    /// adapter is not activated.
    fn adapter_switch_seconds<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        if !self.config.adapters.enabled() {
            return 0.0;
        }
        let weight_tokens = self.config.adapters.weight_tokens;
        let mut wait = 0.0;
        let mut seen: Vec<AdapterId> = Vec::new();
        let slots = &self.slots;
        let cache = &mut self.adapter_cache;
        for active in self.running.iter().filter(|a| !a.swapping) {
            let adapter = slots[active.idx].request.adapter;
            if adapter.is_base() || seen.contains(&adapter) {
                continue;
            }
            seen.push(adapter);
            if !cache.touch(adapter) {
                wait += cost.adapter_load_seconds(weight_tokens);
            }
        }
        wait
    }

    /// Prefills every newly admitted (or resumed) sequence back to back,
    /// pricing only the uncached suffix, and publishes the prompt's full
    /// blocks into the prefix cache so concurrent and later same-prefix
    /// requests hit.
    fn prefill_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.prefill_steps += 1;
        let mut cursor = self.now;
        for active in self.running.iter_mut().filter(|a| !a.prefilled) {
            let slot = &mut self.slots[active.idx];
            let request = slot.request;
            let prompt = request.prompt_tokens + slot.generated_before;
            let cached = active.cached_prefix_tokens;
            // Promoted tokens skip the prefill compute like cached ones,
            // but pay their swap-in transfer instead.
            cursor += cost.prefill_seconds_cached(prompt, cached + active.promoted_tokens);
            if active.promote_wait_s > 0.0 {
                cursor += active.promote_wait_s;
            }
            active.prefilled = true;
            active.context_tokens = prompt + 1;
            self.sum_context += active.context_tokens;
            // Saturating for the same reason as the reserve-up-front path:
            // a denormalized zero-output request must not underflow.
            active.remaining_decode = request
                .output_tokens
                .saturating_sub(1 + slot.generated_before);
            if slot.first_token.is_none() {
                slot.first_token = Some(cursor);
            }
            if active.remaining_decode == 0 {
                // The prefill produced the final token (single-token
                // output, or a resume that had one token left).
                active.done_s = Some(cursor);
            }
            self.prefix_hit_tokens += cached as u64;
            self.prefix_uncached_tokens += (prompt - cached - active.promoted_tokens) as u64;
            if let Some(cache) = &mut self.cache {
                let ids = request.stream.token_ids(prompt);
                cache.insert(&ids, &active.blocks, &mut self.allocator);
            }
        }
        self.pending_prefill = 0;
        cursor - self.now
    }

    /// One decode step: every running sequence gains a token, allocating a
    /// fresh block at each block boundary. Allocation failure resolves by
    /// evicting cold cache blocks first and preempting the latest-admitted
    /// sequence (recompute) second.
    fn decode_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.decode_steps += 1;
        let batch = self.running.len();
        let max_context = self
            .running
            .iter()
            .map(|a| a.context_tokens)
            .fold(0, usize::max);
        let dt = cost.decode_step_seconds(batch, max_context);
        let mut i = 0;
        while i < self.running.len() {
            // Swap-in waiters hold their batch slot but gain no token
            // until the transfer lands.
            if self.running[i].remaining_decode == 0 || self.running[i].swapping {
                i += 1;
                continue;
            }
            let active = &self.running[i];
            let needs_block =
                self.allocator.blocks_for_tokens(active.context_tokens + 1) > active.blocks.len();
            if needs_block {
                match self.grow(i, cost) {
                    Some(at) => i = at,
                    None => continue, // self-preempted; `i` now names the next sequence
                }
            }
            let active = &mut self.running[i];
            active.context_tokens += 1;
            active.remaining_decode -= 1;
            self.sum_context += 1;
            i += 1;
        }
        dt
    }

    /// One chunked batch step: each unprefilled sequence contributes its
    /// next prompt chunk, FIFO against the shared token budget, while the
    /// already-prefilled sequences decode one token alongside — the whole
    /// [`StepMix`] priced as one unit, plus any promoted prefix's swap-in
    /// wait at its sequence's first chunk. Chunk-completed full blocks
    /// publish into the prefix cache *incrementally*, so a concurrent
    /// same-prefix arrival hits mid-document. Chunks are keyed by slot id:
    /// the decode side can preempt and shift running indices, but
    /// mid-prefill sequences are never victims (their `remaining_decode`
    /// is zero), so they survive the step.
    fn chunked_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.chunk_steps += 1;
        let budget = self
            .config
            .chunk_budget_tokens
            .expect("chunked dispatch requires a budget");
        let mut budget_left = budget;
        // (slot id, chunk tokens) of this step's prefill side.
        let mut chunks: Vec<(usize, usize)> = Vec::new();
        let mut mix = StepMix::default();
        let mut decode_batch = 0;
        let mut promote_wait = 0.0;
        for active in &self.running {
            if active.prefilled {
                if active.remaining_decode > 0 && !active.swapping {
                    decode_batch += 1;
                    mix.max_context_tokens = mix.max_context_tokens.max(active.context_tokens);
                }
            } else if budget_left > 0 {
                let prompt = self.effective_prompt(active.idx);
                let committed = active.cached_prefix_tokens + active.promoted_tokens;
                let take = (prompt - active.prefilled_tokens).min(budget_left);
                budget_left -= take;
                if active.prefilled_tokens == committed {
                    // First chunk: the promoted prefix's transfer lands
                    // inside this step.
                    promote_wait += active.promote_wait_s;
                }
                chunks.push((active.idx, take));
                mix.prefill_chunks.push(ChunkWork {
                    suffix_tokens: take,
                    cached_tokens: committed,
                    committed_tokens: active.prefilled_tokens - committed,
                });
            }
        }
        mix.decode_batch = decode_batch;
        let dt = cost.step_seconds(&mix) + promote_wait;
        let end = self.now + dt;
        // Decode progress first (so a prefill completing in this step does
        // not also decode in it), mirroring the plain decode step's
        // grow-and-preempt loop.
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining_decode == 0 || self.running[i].swapping {
                i += 1;
                continue;
            }
            let active = &self.running[i];
            let needs_block =
                self.allocator.blocks_for_tokens(active.context_tokens + 1) > active.blocks.len();
            if needs_block {
                match self.grow(i, cost) {
                    Some(at) => i = at,
                    None => continue, // self-preempted; `i` names the next sequence
                }
            }
            let active = &mut self.running[i];
            active.context_tokens += 1;
            active.remaining_decode -= 1;
            self.sum_context += 1;
            i += 1;
        }
        for (slot, take) in chunks {
            self.chunked_prefill_tokens += take as u64;
            let pos = self
                .running
                .iter()
                .position(|a| a.idx == slot)
                .expect("mid-prefill sequences are never preempted");
            let active = &mut self.running[pos];
            active.prefilled_tokens += take;
            // Committed context is resident context: growing it with the
            // cursor keeps the shared-block occupancy arithmetic exact
            // while the document streams in.
            let before = active.context_tokens;
            active.context_tokens = active.prefilled_tokens;
            self.sum_context += active.context_tokens - before;
            let slot_state = &mut self.slots[slot];
            let request = slot_state.request;
            let prompt = request.prompt_tokens + slot_state.generated_before;
            if active.prefilled_tokens == prompt {
                active.prefilled = true;
                active.context_tokens = prompt + 1;
                self.sum_context += 1;
                active.remaining_decode = request
                    .output_tokens
                    .saturating_sub(1 + slot_state.generated_before);
                if slot_state.first_token.is_none() {
                    slot_state.first_token = Some(end);
                }
                if active.remaining_decode == 0 {
                    active.done_s = Some(end);
                }
                self.prefix_hit_tokens += active.cached_prefix_tokens as u64;
                self.prefix_uncached_tokens +=
                    (prompt - active.cached_prefix_tokens - active.promoted_tokens) as u64;
                self.pending_prefill -= 1;
            }
            if let Some(cache) = &mut self.cache {
                // Publish the chunk-completed blocks now, not at the end
                // of the whole prompt.
                let active = &self.running[pos];
                let ids = request.stream.token_ids(active.prefilled_tokens);
                cache.insert(&ids, &active.blocks, &mut self.allocator);
            }
        }
        dt
    }

    /// One draft-and-verify burst: the step is priced as `draft_tokens`
    /// draft steps plus one verify, and every decoding sequence retires
    /// its accepted draft prefix plus the verify step's own token —
    /// growing blocks token by token, with the plain step's
    /// evict-then-preempt fallback. A sequence that must preempt *itself*
    /// mid-burst keeps nothing from the burst's remainder (the recompute
    /// prefill covers what it had committed).
    fn speculative_decode_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.decode_steps += 1;
        let spec = self.config.speculation;
        let batch = self.running.len();
        let max_context = self
            .running
            .iter()
            .map(|a| a.context_tokens)
            .fold(0, usize::max);
        let dt = cost.speculative_burst_seconds(spec.draft_tokens, batch, max_context);
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining_decode == 0 || self.running[i].swapping {
                i += 1;
                continue;
            }
            let accepted = {
                let active = &mut self.running[i];
                let id = self.slots[active.idx].request.id as u64;
                let accepted = spec.accepted_tokens(id, active.spec_bursts);
                active.spec_bursts += 1;
                accepted
            };
            let gained = (accepted + 1).min(self.running[i].remaining_decode);
            let mut preempted_self = false;
            for _ in 0..gained {
                let active = &self.running[i];
                let needs_block = self.allocator.blocks_for_tokens(active.context_tokens + 1)
                    > active.blocks.len();
                if needs_block {
                    if let Some(at) = self.grow(i, cost) {
                        i = at;
                    } else {
                        preempted_self = true;
                        break;
                    }
                }
                let active = &mut self.running[i];
                active.context_tokens += 1;
                active.remaining_decode -= 1;
                self.sum_context += 1;
            }
            if !preempted_self {
                i += 1;
            }
        }
        dt
    }

    /// Obtains one more block for the sequence at `i`, evicting and then
    /// preempting as needed. Returns the sequence's (possibly shifted)
    /// index, or `None` if the sequence had to preempt itself.
    fn grow<C: ServingCostModel>(&mut self, mut i: usize, cost: &mut C) -> Option<usize> {
        loop {
            if let Some(block) = self.allocator.alloc() {
                self.running[i].blocks.push(block);
                self.add_run_ref(block);
                return Some(i);
            }
            if self.evict_one() {
                continue;
            }
            // Preempt the latest-admitted sequence that is still decoding
            // (sequences that just finished retire at the end of this step
            // and release their blocks then; swap-in waiters keep their
            // blocks — their transfer is already paid for).
            let victim = (0..self.running.len()).rev().find(|&j| {
                j != i && self.running[j].remaining_decode > 0 && !self.running[j].swapping
            });
            let Some(j) = victim else {
                self.preempt(i, cost);
                return None;
            };
            self.preempt(j, cost);
            if j < i {
                i -= 1;
            }
        }
    }

    /// Preempts the sequence at `j`, choosing swap-vs-recompute by
    /// modeled cost. Either way the victim's HBM blocks are freed and it
    /// re-enters the queue *front* — through a [`Event::SwapOutDone`]
    /// when its writes land, or a [`Event::Preemption`] at the step's end
    /// (the queue is only read at boundaries, so both match the
    /// reference loop's mid-step `push_front`).
    ///
    /// *Swap*: a lower tier reserves the victim's blocks; it resumes its
    /// decode after a swap-in transfer, no recompute. *Recompute*: how
    /// far it had generated is recorded and its prefill is re-priced on
    /// resume. Swap wins when `swap_out + swap_in < re-prefill` of the
    /// victim's context — with no tiers configured the recompute path is
    /// taken unconditionally, without even pricing the comparison.
    fn preempt<C: ServingCostModel>(&mut self, j: usize, cost: &mut C) {
        let victim = self.running.remove(j);
        debug_assert!(victim.prefilled && !victim.swapping);
        self.sum_context -= victim.context_tokens;
        self.preemptions += 1;
        if self.tiers_enabled {
            let blocks_needed = victim.blocks.len();
            if let Some(tier) = self.residency.can_reserve(blocks_needed) {
                let model = *self.residency.model();
                let swap_s = model.swap_out_seconds(tier, blocks_needed)
                    + model.swap_in_seconds(tier, blocks_needed);
                if swap_s < cost.prefill_seconds(victim.context_tokens) {
                    let reserved = self.residency.reserve_swap(blocks_needed);
                    debug_assert_eq!(reserved, Some(tier));
                    self.note_tier_peaks();
                    for block in victim.blocks {
                        self.drop_run_ref(block);
                        self.release_block(block);
                    }
                    self.swapped.insert(
                        victim.idx,
                        SwappedSeq {
                            context_tokens: victim.context_tokens,
                            remaining_decode: victim.remaining_decode,
                            blocks_needed,
                            tier,
                        },
                    );
                    self.pending_swap_outs
                        .push((victim.idx, model.swap_out_seconds(tier, blocks_needed)));
                    self.swap_outs += 1;
                    self.swapped_out_blocks += blocks_needed as u64;
                    return;
                }
            }
        }
        let slot = &mut self.slots[victim.idx];
        slot.generated_before = victim.context_tokens - slot.request.prompt_tokens;
        for block in victim.blocks {
            self.drop_run_ref(block);
            self.release_block(block);
        }
        self.pending_preemptions.push(victim.idx);
    }

    /// Retires finished sequences: publishes their full blocks (prompt +
    /// output) into the prefix cache so later conversation turns hit, then
    /// releases every block reference.
    fn retire(&mut self) {
        let now = self.now;
        for active in &mut self.running {
            if active.prefilled && active.remaining_decode == 0 && active.done_s.is_none() {
                active.done_s = Some(now);
            }
        }
        let mut retired = Vec::new();
        self.running.retain(|active| {
            if active.done_s.is_some() {
                retired.push(active.clone());
                false
            } else {
                true
            }
        });
        for active in retired {
            let done_s = active.done_s.expect("retired implies done");
            let slot = self.slots[active.idx];
            let request = slot.request;
            if let Some(cache) = &mut self.cache {
                let ids = request.stream.token_ids(active.context_tokens);
                cache.insert(&ids, &active.blocks, &mut self.allocator);
            }
            self.sum_context -= active.context_tokens;
            for &block in &active.blocks {
                self.drop_run_ref(block);
                self.release_block(block);
            }
            self.records.push(RequestRecord {
                id: request.id,
                arrival_s: request.arrival_s,
                first_token_s: slot.first_token.expect("prefilled"),
                completion_s: done_s,
                prompt_tokens: request.prompt_tokens,
                output_tokens: request.output_tokens,
                qos: request.qos,
            });
            self.free_slots.push(active.idx);
        }
    }

    /// Finalizes the report once the source has drained.
    fn into_report(mut self) -> ServingReport {
        self.records.sort_by_key(|r| r.id);
        let makespan = self
            .records
            .iter()
            .map(|r| r.completion_s)
            .fold(self.now.min(self.last_arrival_s), f64::max);
        let allocator_stats = self.allocator.stats();
        let cache_stats = self
            .cache
            .as_ref()
            .map(PrefixCache::stats)
            .unwrap_or_default();
        ServingReport {
            scheduler: self.config.scheduler,
            records: self.records,
            admitted: self.admitted,
            rejected: self.rejected,
            makespan_s: makespan,
            kv_budget_tokens: self.allocator.total_tokens(),
            peak_kv_reserved_tokens: allocator_stats.peak_allocated_blocks * self.config.block_size,
            peak_kv_occupied_tokens: self.peak_occupied,
            mean_kv_occupancy: self.occupancy.mean(),
            peak_batch: self.peak_batch,
            peak_queue_depth: self.peak_queue,
            mean_queue_depth: self.queue_depth.mean(),
            decode_steps: self.decode_steps,
            prefill_steps: self.prefill_steps,
            chunk_steps: self.chunk_steps,
            chunked_prefill_tokens: self.chunked_prefill_tokens,
            qos: self.qos.stats(),
            adapters: self.adapter_cache.stats(),
            paged: Some(PagedStats {
                block_size: self.config.block_size,
                total_blocks: allocator_stats.total_blocks,
                peak_allocated_blocks: allocator_stats.peak_allocated_blocks,
                mean_block_utilization: self.block_util.mean(),
                mean_internal_fragmentation: self.fragmentation.mean(),
                preemptions: self.preemptions,
                cache_evictions: cache_stats.evictions,
                cache_peak_resident_blocks: cache_stats.peak_resident_blocks,
                prefix_hit_tokens: self.prefix_hit_tokens,
                prefix_uncached_tokens: self.prefix_uncached_tokens,
                swap_outs: self.swap_outs,
                swap_ins: self.swap_ins,
                swapped_out_blocks: self.swapped_out_blocks,
                tier_demotions: self.tier_demotions,
                tier_promotions: self.tier_promotions,
                kv_transfers: self.kv_transfers,
                peak_ddr_blocks: self.peak_ddr_blocks,
                peak_disk_blocks: self.peak_disk_blocks,
                mean_ddr_occupancy: self.ddr_occupancy.mean(),
                mean_disk_occupancy: self.disk_occupancy.mean(),
            }),
        }
    }
}

#[cfg(test)]
mod reference;

#[cfg(test)]
mod equivalence_tests;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearCostModel;
    use crate::workload::{Request, SharedPrefixChatSpec, TokenStream, WorkloadSpec};

    fn sim(config: ServingConfig) -> ServingSimulator<LinearCostModel> {
        ServingSimulator::new(LinearCostModel::default_70b(), config)
    }

    fn req(id: usize, arrival_s: f64, prompt_tokens: usize, output_tokens: usize) -> Request {
        Request {
            id,
            arrival_s,
            prompt_tokens,
            output_tokens,
            stream: TokenStream::unique(id),
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        }
    }

    /// Regression: a replayed-log request asking for zero output tokens is
    /// normalized to a single-token (prefill-only) request instead of
    /// underflowing `remaining_decode` and spinning the run loop forever.
    #[test]
    fn zero_output_request_terminates_as_single_token() {
        let trace = RequestTrace::new(vec![req(0, 0.0, 64, 0)]);
        assert_eq!(trace.requests()[0].output_tokens, 1);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.completed(), 1);
        let r = report.records[0];
        assert_eq!(r.output_tokens, 1);
        // Prefill-only: done at the first token.
        assert_eq!(r.completion_s, r.first_token_s);
    }

    /// Regression companion to the saturating `kv_tokens_at_completion`:
    /// a fuzzed request whose lengths sum past `usize::MAX` is rejected at
    /// admission (its footprint exceeds any budget) on every policy,
    /// instead of overflowing in debug builds.
    #[test]
    fn overflowing_footprints_are_rejected_not_panicking() {
        let huge = Request {
            id: 0,
            arrival_s: 0.0,
            prompt_tokens: usize::MAX - 4,
            output_tokens: 64,
            stream: TokenStream::unique(0),
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        };
        let trace = RequestTrace::new(vec![huge, req(1, 0.1, 32, 4)]);
        for config in [
            ServingConfig::continuous(8, 1_000),
            ServingConfig::static_batching(8, 1_000),
            ServingConfig::paged(8, 1_000, 16).with_prefix_sharing(true),
        ] {
            let report = sim(config).run(&trace);
            assert_eq!(report.rejected, 1, "{}", config.scheduler);
            assert_eq!(report.completed(), 1);
            assert_eq!(report.records[0].id, 1);
        }
    }

    /// Regression: admission's eviction loop must terminate when the
    /// prefix cache cannot deliver what the feasibility check promised.
    /// Two same-system-prompt sessions admitted in one wave leave session
    /// 1 sharing a mid-tree block without referencing its ancestor (the
    /// dedup-insert case); once session 0 retires, a third arrival sized
    /// exactly to the over-promised gap used to spin forever in release
    /// builds (and fail a debug_assert in debug builds).
    #[test]
    fn paged_admission_terminates_when_eviction_under_delivers() {
        let session = |id: usize, key: u64, output_tokens: usize| Request {
            id,
            arrival_s: 0.0,
            prompt_tokens: 8,
            output_tokens,
            stream: TokenStream::session(key, 4),
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        };
        let trace = RequestTrace::new(vec![session(0, 1, 2), session(1, 2, 6), req(2, 0.0, 19, 1)]);
        // 8 blocks of 4 tokens: the two sessions take 3 blocks each in the
        // first wave; request 2 needs 5 blocks, feasible only by evicting
        // the retired session's cache residue — of which only the leaf is
        // actually deliverable while session 1 still runs.
        let config = ServingConfig::paged(2, 32, 4).with_prefix_sharing(true);
        let report = sim(config).run(&trace);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.rejected, 0);
    }

    /// Regression: occupancy counts *distinct* resident tokens. Four
    /// sequences sharing a 16-token system prompt used to report the
    /// shared blocks once per sharer, pushing `peak_kv_occupied_tokens`
    /// past the pool itself.
    #[test]
    fn shared_prefix_occupancy_counts_distinct_tokens_once() {
        let session = |id: usize, arrival_s: f64| Request {
            id,
            arrival_s,
            prompt_tokens: 17,
            output_tokens: 8,
            stream: TokenStream::session(id as u64, 16),
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        };
        let trace = RequestTrace::new(vec![
            session(0, 0.0),
            session(1, 1e-6),
            session(2, 1e-6),
            session(3, 1e-6),
        ]);
        // 20 blocks of 4: sessions 1-3 share session 0's four system-
        // prompt blocks, so distinct residency peaks at 16 blocks while
        // the per-sharer sum would claim 100 tokens against an 80-token
        // pool.
        let config = ServingConfig::paged(4, 80, 4).with_prefix_sharing(true);
        let report = sim(config).run(&trace);
        assert_eq!(report.completed(), 4);
        let paged = report.paged.expect("paged run");
        assert!(paged.prefix_hit_tokens > 0, "sessions 1-3 hit the cache");
        assert_eq!(paged.preemptions, 0, "pool is sized to avoid preemption");
        assert!(
            report.peak_kv_occupied_tokens <= report.kv_budget_tokens,
            "distinct occupancy {} must fit the pool {}",
            report.peak_kv_occupied_tokens,
            report.kv_budget_tokens
        );
        assert!(report.mean_kv_occupancy <= 1.0);
    }

    #[test]
    fn single_request_lifecycle() {
        let trace = RequestTrace::new(vec![req(0, 1.0, 100, 5)]);
        let mut cost = LinearCostModel::default_70b();
        let prefill = cost.prefill_seconds(100);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.admitted, 1);
        assert_eq!(report.rejected, 0);
        let r = report.records[0];
        assert!((r.ttft_s() - prefill).abs() < 1e-12);
        assert_eq!(report.decode_steps, 4);
        assert_eq!(report.prefill_steps, 1);
        assert!(r.completion_s > r.first_token_s);
        assert_eq!(report.peak_kv_reserved_tokens, 105);
    }

    #[test]
    fn single_token_outputs_complete_at_the_prefill() {
        let trace = RequestTrace::new(vec![req(0, 0.0, 64, 1)]);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.completed(), 1);
        let r = report.records[0];
        assert_eq!(r.completion_s, r.first_token_s);
        assert_eq!(r.tpot_s(), 0.0);
        assert_eq!(report.decode_steps, 0);
    }

    #[test]
    fn oversized_requests_are_rejected_not_wedged() {
        let trace = RequestTrace::new(vec![req(0, 0.0, 5_000, 10), req(1, 0.1, 50, 10)]);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.records[0].id, 1);
        assert_eq!(report.admitted + report.rejected, 2);
    }

    #[test]
    fn kv_budget_gates_admission() {
        // Two requests that each need 600 tokens against a 1000-token
        // budget: the second must wait for the first to retire.
        let trace = RequestTrace::new(vec![req(0, 0.0, 590, 10), req(1, 0.0, 590, 10)]);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.completed(), 2);
        assert!(report.peak_kv_reserved_tokens <= 1_000);
        assert_eq!(report.peak_batch, 1);
        // Sequential service: the second request's first token comes after
        // the first request fully completes.
        assert!(report.records[1].first_token_s >= report.records[0].completion_s);
    }

    #[test]
    fn continuous_admits_mid_batch_but_static_waits() {
        // Request 0 is long-running; request 1 arrives while 0 decodes.
        let trace = RequestTrace::new(vec![req(0, 0.0, 10, 200), req(1, 0.5, 10, 5)]);
        let continuous = sim(ServingConfig::continuous(8, 10_000)).run(&trace);
        let static_ = sim(ServingConfig::static_batching(8, 10_000)).run(&trace);
        // Continuous: request 1 joins while 0 is still going.
        assert!(continuous.peak_batch == 2);
        assert!(continuous.records[1].first_token_s < continuous.records[0].completion_s);
        // Static: request 1 waits for the whole first batch to finish.
        assert_eq!(static_.peak_batch, 1);
        assert!(static_.records[1].first_token_s >= static_.records[0].completion_s);
        // Both conserve requests.
        for r in [&continuous, &static_] {
            assert_eq!(r.admitted, r.completed());
            assert_eq!(r.completed() + r.rejected, 2);
        }
    }

    #[test]
    fn static_batching_pads_to_the_longest_member() {
        // Short and long request admitted together: the short one's record
        // closes at its own last token, but the engine keeps stepping (and
        // its slot stays occupied) until the long one drains.
        let trace = RequestTrace::new(vec![req(0, 0.0, 10, 3), req(1, 0.0, 10, 50)]);
        let report = sim(ServingConfig::static_batching(8, 10_000)).run(&trace);
        assert_eq!(report.completed(), 2);
        assert!(report.records[0].completion_s < report.records[1].completion_s);
        // 49 decode steps for the long request; the short rode along.
        assert_eq!(report.decode_steps, 49);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = WorkloadSpec::chat(6.0, 150, 9).generate();
        let config = ServingConfig::continuous(16, 50_000);
        let a = sim(config).run(&trace);
        let b = sim(config).run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn drains_everything_under_overload() {
        // Offered load far above capacity: the queue grows, but a finite
        // trace still drains and conserves requests.
        let trace = WorkloadSpec::chat(1000.0, 300, 21).generate();
        let report = sim(ServingConfig::continuous(4, 4_000)).run(&trace);
        assert_eq!(report.completed() + report.rejected, 300);
        assert_eq!(report.admitted, report.completed());
        assert!(report.peak_queue_depth > 4);
        assert!(report.mean_queue_depth > 0.0);
        assert!(report.peak_kv_reserved_tokens <= 4_000);
    }

    #[test]
    fn paged_single_request_allocates_blocks_on_demand() {
        let trace = RequestTrace::new(vec![req(0, 0.0, 33, 40)]);
        let report = sim(ServingConfig::paged(8, 1_600, 16)).run(&trace);
        assert_eq!(report.completed(), 1);
        let paged = report.paged.expect("paged stats");
        assert_eq!(paged.block_size, 16);
        assert_eq!(paged.total_blocks, 100);
        // Final context = 73 tokens = 5 blocks; on-demand growth never
        // allocated more than that (no lifetime reservation).
        assert_eq!(paged.peak_allocated_blocks, 5);
        assert_eq!(report.peak_kv_reserved_tokens, 80);
        assert_eq!(paged.preemptions, 0);
        assert_eq!(report.kv_budget_tokens, 1_600);
        assert!(paged.mean_internal_fragmentation > 0.0);
    }

    #[test]
    fn paged_admits_what_reserve_up_front_must_queue() {
        // Two requests, each with a 600-token *lifetime* footprint against
        // a 1000-token budget, but prompts of only 90 tokens: reserve-up-
        // front serializes them, paged runs them together.
        let trace = RequestTrace::new(vec![req(0, 0.0, 90, 510), req(1, 0.0, 90, 510)]);
        let reserve = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(reserve.peak_batch, 1, "reserve-up-front serializes");
        let paged = sim(ServingConfig::paged(8, 1_000, 16)).run(&trace);
        assert_eq!(paged.peak_batch, 2, "paged co-runs on current need");
        assert!(
            paged.records[1].first_token_s < reserve.records[1].first_token_s,
            "the queued request starts much earlier under paging"
        );
        // Both runs complete everything; paged preempts one sequence near
        // the end when the pool truly runs out (1200 > 1000 final tokens).
        assert_eq!(paged.completed(), 2);
        assert!(paged.paged.unwrap().preemptions > 0);
    }

    #[test]
    fn paged_preemption_recomputes_and_conserves() {
        // Far more concurrent lifetime demand than the pool holds: heavy
        // preemption, yet every request completes exactly once and the
        // pool is never over-allocated.
        let requests: Vec<Request> = (0..12).map(|id| req(id, 0.0, 64, 200)).collect();
        let trace = RequestTrace::new(requests);
        let report = sim(ServingConfig::paged(12, 1_024, 16)).run(&trace);
        assert_eq!(report.completed(), 12);
        assert_eq!(report.rejected, 0);
        let paged = report.paged.expect("paged stats");
        assert!(paged.preemptions > 0, "the pool must have run dry");
        assert!(paged.peak_allocated_blocks <= paged.total_blocks);
        // Records stay physically sane through preemption.
        for r in &report.records {
            assert!(r.first_token_s > r.arrival_s);
            assert!(r.completion_s >= r.first_token_s);
        }
    }

    #[test]
    fn prefix_sharing_skips_cached_prefill_and_reports_hits() {
        // Same-session turns: the second turn's prompt extends the first
        // turn's prompt + output, so after turn 1 completes, turn 2 hits.
        let stream = TokenStream::session(99, 32);
        let turn1 = Request {
            id: 0,
            arrival_s: 0.0,
            prompt_tokens: 64,
            output_tokens: 32,
            stream,
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        };
        let turn2 = Request {
            id: 1,
            arrival_s: 100.0, // long after turn 1 drains
            prompt_tokens: 64 + 32 + 16,
            output_tokens: 8,
            stream,
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        };
        let trace = RequestTrace::new(vec![turn1, turn2]);
        let config = ServingConfig::paged(8, 4_096, 16).with_prefix_sharing(true);
        let report = sim(config).run(&trace);
        assert_eq!(report.completed(), 2);
        let paged = report.paged.expect("paged stats");
        // Turn 1 inserted 6 full blocks (96 tokens); turn 2's 112-token
        // prompt hits all of them.
        assert_eq!(paged.prefix_hit_tokens, 96);
        assert!(paged.prefix_hit_rate() > 0.5, "{}", paged.prefix_hit_rate());
        assert!(paged.cache_peak_resident_blocks >= 6);
        // The cached prefill is cheaper: TTFT of turn 2 (112-token prompt)
        // beats turn 1's (64-token prompt) despite the longer prompt.
        assert!(report.records[1].ttft_s() < report.records[0].ttft_s());

        // Without sharing, the same trace prefills every token.
        let cold = sim(ServingConfig::paged(8, 4_096, 16)).run(&trace);
        let cold_paged = cold.paged.expect("paged stats");
        assert_eq!(cold_paged.prefix_hit_tokens, 0);
        assert_eq!(cold_paged.prefix_hit_rate(), 0.0);
        assert!(report.records[1].ttft_s() < cold.records[1].ttft_s());
    }

    /// The streamed entry point is the materialized one, bit for bit:
    /// pulling arrivals lazily from [`SharedPrefixChatSpec::stream`] with
    /// slot recycling must reproduce `run(&spec.generate())` exactly —
    /// records, counters, and the interval-integrated means — for every
    /// policy, including the paged one whose slots carry preemption state.
    #[test]
    fn streamed_runs_match_materialized_traces_exactly() {
        let spec = SharedPrefixChatSpec::fleet(4.0, 48, 23);
        let trace = spec.generate();
        for config in [
            ServingConfig::continuous(16, 30_000),
            ServingConfig::static_batching(16, 30_000),
            ServingConfig::paged(16, 3_000, 16).with_prefix_sharing(true),
        ] {
            let materialized = sim(config).run(&trace);
            let streamed = sim(config).run_streamed(spec.stream());
            assert_eq!(materialized, streamed, "{:?}", config.scheduler);
        }
        // The paged run above must actually exercise the interesting
        // machinery, or the equality proves nothing.
        let paged = sim(ServingConfig::paged(16, 3_000, 16).with_prefix_sharing(true)).run(&trace);
        let stats = paged.paged.expect("paged stats");
        assert!(stats.prefix_hit_tokens > 0, "cache must hit");
        assert!(stats.preemptions > 0, "pool must run dry");
    }

    #[test]
    fn paged_runs_are_deterministic() {
        let trace = SharedPrefixChatSpec::fleet(2.0, 24, 17).generate();
        let config = ServingConfig::paged(16, 20_000, 16).with_prefix_sharing(true);
        let a = sim(config).run(&trace);
        let b = sim(config).run(&trace);
        assert_eq!(a, b);
        assert_eq!(a.completed() + a.rejected, trace.len());
        assert!(a.paged.unwrap().prefix_hit_tokens > 0);
    }

    /// The interval-integrated time-weighted means, pinned on a
    /// hand-computed 3-request trace (the satellite fix of the event-core
    /// refactor): queue depth and occupancy integrate over exact
    /// inter-event intervals — including the idle gap before request 2 and
    /// the partial interval request 1's mid-prefill arrival splits the
    /// first step into — instead of sampling once per engine step.
    ///
    /// Timeline under `LinearCostModel::default_70b`, `max_batch = 1`,
    /// budget 1000 (prefill(p) = 0.01 + 2e-4·p; decode(b, c) = 0.03 +
    /// 5e-4·b + 2e-6·c):
    ///
    /// * t = 0: r0 (prompt 100, output 2) admitted; prefill takes 0.03 s.
    /// * t = 0.01: r1 (prompt 50, output 1) arrives — queue depth 1 from
    ///   here until its admission.
    /// * t = 0.03: r0 decodes once: 0.03 + 5e-4 + 2e-6·101 = 0.030702 s.
    /// * t = 0.060702: r0 done; r1 admitted, prefill(50) = 0.02 s; done at
    ///   its own prefill end (single-token output).
    /// * t = 0.080702 → 10: idle (queue 0, occupancy 0).
    /// * t = 10: r2 (prompt 100, output 1) arrives, prefills 0.03 s, done
    ///   at t = 10.03 — the end of the observed span.
    #[test]
    fn time_weighted_means_integrate_over_event_intervals() {
        let trace = RequestTrace::new(vec![
            req(0, 0.0, 100, 2),
            req(1, 0.01, 50, 1),
            req(2, 10.0, 100, 1),
        ]);
        let config = ServingConfig::continuous(1, 1_000);
        let report = sim(config).run(&trace);
        assert_eq!(report.completed(), 3);

        let decode = 0.03 + 5e-4 + 2e-6 * 101.0; // 0.030702
        let elapsed = 10.03;
        // Queue depth 1 over [0.01, 0.060702): r1 waits while r0 prefills
        // (from 0.01) and decodes.
        let queue_integral = (0.03 - 0.01) + decode;
        assert!(
            (report.mean_queue_depth - queue_integral / elapsed).abs() < 1e-12,
            "mean queue depth {}",
            report.mean_queue_depth
        );
        // Occupancy: 101 tokens over r0's prefill + 102 over its decode +
        // 51 over r1's prefill + 101 over r2's prefill, against budget
        // 1000, over 10.03 s total.
        let occupancy_integral = (101.0 * 0.03 + 102.0 * decode + 51.0 * 0.02 + 101.0 * 0.03)
            / config.kv_budget_tokens as f64;
        assert!(
            (report.mean_kv_occupancy - occupancy_integral / elapsed).abs() < 1e-12,
            "mean occupancy {}",
            report.mean_kv_occupancy
        );

        // The reference step loop samples per step and skips idle time, so
        // its means differ — the reason the equivalence suite compares
        // reports modulo the mean fields. Everything else matches exactly.
        let mut cost = LinearCostModel::default_70b();
        let reference = reference::run_reference(&mut cost, config, &trace);
        assert!(reference.mean_queue_depth > report.mean_queue_depth);
        assert_eq!(reference.records, report.records);
        assert_eq!(reference.makespan_s, report.makespan_s);
    }

    /// A fast DDR tier under a pool that runs dry: preemption chooses
    /// swap-out over recompute (its modeled transfer is microseconds
    /// against a ~35 ms re-prefill), every swapped victim swaps back in
    /// and resumes without re-prefilling a single token, the tier
    /// capacity is respected, and the run conserves requests.
    #[test]
    fn swap_preemption_conserves_and_resumes_without_recompute() {
        let requests: Vec<Request> = (0..12).map(|id| req(id, 0.0, 64, 200)).collect();
        let trace = RequestTrace::new(requests);
        // 256 KB per 16-token block over a 200 GB/s DDR tier: a whole
        // victim swaps in microseconds.
        let tiers = KvTierModel::ddr_only(256.0 * 1024.0, 1024);
        let config = ServingConfig::paged(12, 1_024, 16).with_tiers(tiers);
        let report = sim(config).run(&trace);
        assert_eq!(report.completed(), 12);
        assert_eq!(report.rejected, 0);
        let stats = report.paged.expect("paged stats");
        assert!(stats.swap_outs > 0, "the pool must have run dry");
        assert_eq!(
            stats.swap_ins, stats.swap_outs,
            "every swapped victim resumed"
        );
        assert_eq!(
            stats.preemptions, stats.swap_outs,
            "swap won every preemption decision"
        );
        assert!(stats.swapped_out_blocks > 0);
        assert!(stats.peak_ddr_blocks <= 1024);
        assert!(stats.mean_ddr_occupancy >= 0.0);
        // No recompute: each request prefilled exactly once, so the
        // uncached-token total is exactly the sum of the twelve prompts.
        assert_eq!(stats.prefix_uncached_tokens, 12 * 64);
        // The recompute run on the same trace re-prefills its victims.
        let recompute = sim(ServingConfig::paged(12, 1_024, 16)).run(&trace);
        let recompute_stats = recompute.paged.expect("paged stats");
        assert!(recompute_stats.preemptions > 0);
        assert_eq!(recompute_stats.swap_outs, 0, "no tiers, no swaps");
        assert!(
            recompute_stats.prefix_uncached_tokens > 12 * 64,
            "recompute re-prefills generated context"
        );
        // Swapping is also simply faster end to end here.
        assert!(report.makespan_s < recompute.makespan_s);
        // Determinism.
        assert_eq!(report, sim(config).run(&trace));
    }

    /// A tier too small to hold any victim falls back to recompute on
    /// every preemption: zero-capacity DDR behaves exactly like no tiers
    /// at all — bit for bit, not just statistically.
    #[test]
    fn zero_capacity_tiers_reproduce_the_recompute_run_exactly() {
        let requests: Vec<Request> = (0..12).map(|id| req(id, 0.0, 64, 200)).collect();
        let trace = RequestTrace::new(requests);
        let base = ServingConfig::paged(12, 1_024, 16);
        let zero = base.with_tiers(KvTierModel::ddr_only(256.0 * 1024.0, 0));
        assert!(!zero.tiers.enabled(), "zero capacity means disabled");
        let a = sim(base).run(&trace);
        let b = sim(zero).run(&trace);
        assert_eq!(a, b);
        assert!(a.paged.unwrap().preemptions > 0, "the comparison is live");
    }

    /// KV shipping delays admission by the modeled transfer: a decode-pool
    /// replica's first token waits for the prompt's KV to cross the
    /// interconnect. A zero-cost ship is invisible except in the transfer
    /// counter.
    #[test]
    fn kv_shipping_delays_admission_by_the_transfer() {
        let trace = RequestTrace::new(vec![req(0, 1.0, 512, 8)]);
        let ship = KvShipSpec {
            bytes_per_token: 300_000.0,
            bandwidth_gbps: 50.0,
            latency_us: 10.0,
        };
        let transfer = ship.transfer_seconds(512);
        assert!(transfer > 1e-4, "the transfer must be visible");
        for config in [
            ServingConfig::continuous(8, 4_096),
            ServingConfig::paged(8, 4_096, 16),
        ] {
            let base = sim(config).run(&trace);
            let shipped = sim(config.with_kv_ship(ship)).run(&trace);
            assert_eq!(shipped.completed(), 1);
            let delay = shipped.records[0].first_token_s - base.records[0].first_token_s;
            assert!(
                (delay - transfer).abs() < 1e-12,
                "TTFT shifted by {delay} vs transfer {transfer}"
            );
        }
        // Free shipping moves nothing: the paged records match bit for bit
        // and only the transfer counter tells the runs apart.
        let free = KvShipSpec {
            bytes_per_token: 300_000.0,
            bandwidth_gbps: f64::INFINITY,
            latency_us: 0.0,
        };
        let paged = ServingConfig::paged(8, 4_096, 16);
        let base = sim(paged).run(&trace);
        let freighted = sim(paged.with_kv_ship(free)).run(&trace);
        assert_eq!(base.records, freighted.records);
        assert_eq!(freighted.paged.unwrap().kv_transfers, 1);
    }

    /// Chunked prefill splits a long prompt across several batch steps and
    /// lets a co-resident chat sequence keep decoding between the chunks —
    /// the TPOT-isolation effect the headline experiment measures. The
    /// unchunked run stalls the chat decode for the whole document
    /// prefill.
    #[test]
    fn chunked_prefill_interleaves_decode_with_a_long_document() {
        // A short chat request whose decode window sits inside the
        // document prefill: unchunked it stalls for the whole 4096-token
        // wave; chunked it rides the chunk boundaries.
        let trace = RequestTrace::new(vec![req(0, 0.0, 16, 12), req(1, 0.1, 4_096, 8)]);
        let base = ServingConfig::continuous(8, 16_000);
        let unchunked = sim(base).run(&trace);
        let chunked = sim(base.with_chunked_prefill(Some(256))).run(&trace);
        for report in [&unchunked, &chunked] {
            assert_eq!(report.completed(), 2);
            assert_eq!(report.rejected, 0);
        }
        // 4096 tokens at 256 per chunk = 16 chunked steps (the chat
        // prompt rides the first one).
        assert!(
            chunked.chunk_steps >= 16,
            "{} chunk steps",
            chunked.chunk_steps
        );
        assert_eq!(
            chunked.chunked_prefill_tokens,
            16 + 4_096,
            "every admitted prompt token prefills through a chunk"
        );
        assert_eq!(unchunked.chunk_steps, 0);
        assert_eq!(unchunked.chunked_prefill_tokens, 0);
        // The chat request keeps decoding between chunks instead of
        // stalling for the whole document prefill, so both its completion
        // time and its per-token latency improve even though each chunked
        // step is pricier than a plain decode.
        let chat_unchunked = unchunked.records[0];
        let chat_chunked = chunked.records[0];
        assert!(
            chat_chunked.completion_s < chat_unchunked.completion_s,
            "chunked chat completion {} must beat unchunked {}",
            chat_chunked.completion_s,
            chat_unchunked.completion_s
        );
        assert!(
            chat_chunked.tpot_s() < chat_unchunked.tpot_s(),
            "chunked chat TPOT {} must beat unchunked {}",
            chat_chunked.tpot_s(),
            chat_unchunked.tpot_s()
        );
        // Determinism on the new axis.
        assert_eq!(
            chunked,
            sim(base.with_chunked_prefill(Some(256))).run(&trace)
        );
    }

    /// Chunk-boundary conservation on the paged policy under preemption
    /// pressure: every admitted prompt token passes through exactly one
    /// chunk per prefill pass, so the counter equals the prompt total when
    /// nothing recomputes and can only grow beyond it with preemption.
    #[test]
    fn chunked_paged_conserves_prompt_tokens() {
        let requests: Vec<Request> = (0..12).map(|id| req(id, 0.0, 64, 200)).collect();
        let trace = RequestTrace::new(requests);
        let config = ServingConfig::paged(12, 1_024, 16).with_chunked_prefill(Some(48));
        let report = sim(config).run(&trace);
        assert_eq!(report.completed(), 12);
        assert_eq!(report.rejected, 0);
        let prompt_total: u64 = 12 * 64;
        assert!(
            report.chunked_prefill_tokens >= prompt_total,
            "chunked {} must cover the {} prompt tokens",
            report.chunked_prefill_tokens,
            prompt_total
        );
        let paged = report.paged.expect("paged stats");
        assert!(paged.preemptions > 0, "the pool must have run dry");
        // Recomputed prefills re-chunk `generated_before` context too.
        assert_eq!(
            report.chunked_prefill_tokens,
            paged.prefix_hit_tokens + paged.prefix_uncached_tokens,
            "chunks partition the (effective) prompt stream"
        );
        // A preemption-free run is exact.
        let roomy =
            sim(ServingConfig::paged(12, 8_192, 16).with_chunked_prefill(Some(48))).run(&trace);
        assert_eq!(roomy.paged.expect("paged stats").preemptions, 0);
        assert_eq!(roomy.chunked_prefill_tokens, prompt_total);
    }

    /// Chunked prefill publishes completed blocks into the prefix cache
    /// *incrementally*: a same-prefix arrival landing mid-document hits
    /// the chunks already committed, before the first request finishes.
    #[test]
    fn chunked_prefill_publishes_chunks_into_the_prefix_cache() {
        let stream = TokenStream::session(11, 2_048);
        let doc = |id: usize, arrival_s: f64| Request {
            id,
            arrival_s,
            prompt_tokens: 2_048,
            output_tokens: 4,
            stream,
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        };
        // The second document arrives while the first is mid-prefill
        // (chunk budget 128 stretches the 2048-token prefill over 16
        // steps of ~35ms each), late enough that roughly half the chunks
        // have been committed — and published — by the time it admits.
        let trace = RequestTrace::new(vec![doc(0, 0.0), doc(1, 0.3)]);
        let config = ServingConfig::paged(4, 8_192, 16)
            .with_prefix_sharing(true)
            .with_chunked_prefill(Some(128));
        let report = sim(config).run(&trace);
        assert_eq!(report.completed(), 2);
        let paged = report.paged.expect("paged stats");
        assert!(
            paged.prefix_hit_tokens > 0,
            "the second document must hit the first's committed chunks"
        );
        // Admission-time lookup sees only the chunks committed so far —
        // several, but not the whole prompt. Without incremental
        // publication the hit would be zero; without chunking it would be
        // the full prompt.
        assert!(
            (512..2_048).contains(&(paged.prefix_hit_tokens as usize)),
            "hit {} tokens",
            paged.prefix_hit_tokens
        );
    }

    /// Speculative decoding at acceptance rate 1.0 retires
    /// `draft_tokens + 1` tokens per burst, cutting decode steps by that
    /// factor; rate 0.0 accepts nothing and decodes one token per burst,
    /// matching the plain run's step count exactly.
    #[test]
    fn speculation_retires_accepted_tokens_per_burst() {
        let trace = RequestTrace::new(vec![req(0, 0.0, 32, 81)]);
        let base = ServingConfig::continuous(4, 2_000);
        let plain = sim(base).run(&trace);
        assert_eq!(plain.decode_steps, 80);
        let always = sim(base.with_speculation(SpeculationSpec::new(4, 1.0, 7))).run(&trace);
        // 80 decode tokens at 5 per burst = 16 bursts.
        assert_eq!(always.decode_steps, 16);
        let never = sim(base.with_speculation(SpeculationSpec::new(4, 0.0, 7))).run(&trace);
        assert_eq!(never.decode_steps, 80);
        // Token totals are conserved on every run.
        for report in [&plain, &always, &never] {
            assert_eq!(report.completed(), 1);
            assert_eq!(report.records[0].output_tokens, 81);
        }
        // Each rejected-draft burst still costs the drafts: the
        // never-accept run is strictly slower than the plain one.
        assert!(never.makespan_s > plain.makespan_s);
    }

    /// The acceptance draws are deterministic and mid-rate runs land
    /// between the all-accept and none-accept extremes.
    #[test]
    fn speculative_acceptance_draws_are_seeded_and_monotone() {
        let spec = SpeculationSpec::new(8, 0.7, 42);
        for burst in 0..4 {
            assert_eq!(
                spec.accepted_tokens(3, burst),
                spec.accepted_tokens(3, burst),
                "draws are pure"
            );
        }
        assert_eq!(SpeculationSpec::new(8, 1.0, 42).accepted_tokens(5, 0), 8);
        assert_eq!(SpeculationSpec::new(8, 0.0, 42).accepted_tokens(5, 0), 0);
        let trace = WorkloadSpec::chat(6.0, 60, 9).generate();
        let base = ServingConfig::paged(16, 50_000, 16);
        let steps = |rate: f64| {
            sim(base.with_speculation(SpeculationSpec::new(4, rate, 11)))
                .run(&trace)
                .decode_steps
        };
        let (lo, mid, hi) = (steps(0.0), steps(0.6), steps(1.0));
        assert!(
            hi < mid && mid < lo,
            "steps must fall with acceptance: {lo} {mid} {hi}"
        );
        // Determinism across repeat runs of the same seeded config.
        let config = base.with_speculation(SpeculationSpec::new(4, 0.6, 11));
        assert_eq!(sim(config).run(&trace), sim(config).run(&trace));
    }

    /// Config validation of the new axes.
    #[test]
    #[should_panic(expected = "chunk budget must be positive")]
    fn zero_chunk_budget_panics() {
        let _ = sim(ServingConfig::continuous(4, 1_000).with_chunked_prefill(Some(0)));
    }

    #[test]
    #[should_panic(expected = "acceptance rate must be in [0, 1]")]
    fn out_of_range_acceptance_rate_panics() {
        let _ = SpeculationSpec::new(4, 1.5, 0);
    }

    /// Cold prefix subtrees demote to DDR instead of vanishing: a later
    /// same-session turn promotes them back at transfer cost, skipping
    /// their prefill compute — cheaper than the no-tier run, which must
    /// re-prefill everything the eviction destroyed.
    #[test]
    fn demoted_prefixes_promote_back_instead_of_reprefilling() {
        let stream = TokenStream::session(7, 16);
        let turn1 = Request {
            id: 0,
            arrival_s: 0.0,
            prompt_tokens: 64,
            output_tokens: 32,
            stream,
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        };
        // An unrelated request big enough to force eviction of turn 1's
        // cached blocks while the session thinks.
        let intruder = req(1, 50.0, 100, 1);
        let turn2 = Request {
            id: 2,
            arrival_s: 100.0,
            prompt_tokens: 64 + 32 + 16,
            output_tokens: 8,
            stream,
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        };
        let trace = RequestTrace::new(vec![turn1, intruder, turn2]);
        // 10 blocks of 16 tokens: turn 1 leaves 6 cached blocks, the
        // intruder needs 7, so cold blocks must go.
        let base = ServingConfig::paged(4, 160, 16).with_prefix_sharing(true);
        let tiered = base.with_tiers(KvTierModel::ddr_only(256.0 * 1024.0, 64));
        let cold = sim(base).run(&trace);
        let warm = sim(tiered).run(&trace);
        for report in [&cold, &warm] {
            assert_eq!(report.completed(), 3);
            assert_eq!(report.rejected, 0);
        }
        let warm_stats = warm.paged.expect("paged stats");
        assert!(warm_stats.tier_demotions > 0, "evictions must demote");
        assert!(warm_stats.tier_promotions > 0, "the return must promote");
        assert!(warm_stats.peak_ddr_blocks <= 64);
        // Turn 2's first token: promotion replaces tens of prefill
        // milliseconds with a microsecond transfer.
        assert!(
            warm.records[2].ttft_s() < cold.records[2].ttft_s(),
            "warm {} vs cold {}",
            warm.records[2].ttft_s(),
            cold.records[2].ttft_s()
        );
        assert_eq!(warm, sim(tiered).run(&trace), "deterministic");
    }

    /// Priority admission with the aging bound, on every policy: a Batch
    /// request queued behind a burst of Interactive arrivals is bypassed
    /// exactly `qos_aging` times, then force-admitted — never starved —
    /// and the per-class counters plus the class-filtered report helpers
    /// agree on what happened.
    #[test]
    fn interactive_bypasses_batch_until_the_aging_bound_promotes_it() {
        let qreq = |id: usize, arrival_s: f64, qos: QosClass| Request {
            qos,
            ..req(id, arrival_s, 64, 16)
        };
        // Request 0 occupies the single batch slot while everything else
        // queues: one Batch job, then four Interactive chats behind it.
        let trace = RequestTrace::new(vec![
            qreq(0, 0.0, QosClass::Interactive),
            qreq(1, 0.01, QosClass::Batch),
            qreq(2, 0.02, QosClass::Interactive),
            qreq(3, 0.03, QosClass::Interactive),
            qreq(4, 0.04, QosClass::Interactive),
            qreq(5, 0.05, QosClass::Interactive),
        ]);
        for config in [
            ServingConfig::continuous(1, 1_000),
            ServingConfig::static_batching(1, 1_000),
            ServingConfig::paged(1, 1_000, 16),
        ] {
            let report = sim(config.with_qos_aging(2)).run(&trace);
            assert_eq!(report.completed(), 6, "{}", config.scheduler);
            let qos = report.qos;
            assert_eq!(qos.interactive_admitted, 5);
            assert_eq!(qos.batch_admitted, 1);
            assert_eq!(qos.interactive_bypasses, 2, "requests 2 and 3 jump");
            assert_eq!(qos.aging_promotions, 1, "then the Batch job ages in");
            assert_eq!(qos.peak_interactive_run, 2);
            assert!(qos.peak_interactive_run <= config.with_qos_aging(2).qos_aging);
            // Service order: the two bypassing chats finish first, the
            // aged Batch job beats the remaining chats.
            let batch = report.records[1];
            assert!(batch.first_token_s > report.records[3].first_token_s);
            assert!(batch.first_token_s < report.records[4].first_token_s);
            // The class-filtered helpers agree with the counters.
            assert_eq!(report.class_records(QosClass::Batch).len(), 1);
            assert_eq!(report.class_metrics(QosClass::Interactive).completed, 5);
            assert_eq!(report.class_metrics(QosClass::Batch).rejected, 0);
            let slo = SloTarget {
                ttft_s: 1e9,
                tpot_s: 1e9,
            };
            assert!(report.class_goodput_rps(QosClass::Interactive, &slo) > 0.0);
            // Determinism on the new axis.
            assert_eq!(report, sim(config.with_qos_aging(2)).run(&trace));
        }
    }

    /// Adapter paging prices the cache misses: a two-tenant batch over a
    /// one-slot cache thrashes (two loads per step), the two-slot cache
    /// loads each adapter once, and the adapter-free run is fastest. The
    /// paged policy additionally carves the cache out of its block pool,
    /// shrinking what sequences can claim.
    #[test]
    fn adapter_cache_misses_price_weight_loads() {
        let tenant = |id: usize, adapter: u32| Request {
            adapter: AdapterId(adapter),
            ..req(id, 0.0, 32, 16)
        };
        let trace = RequestTrace::new(vec![tenant(0, 1), tenant(1, 2)]);
        let base = ServingConfig::continuous(4, 2_000);
        let off = sim(base).run(&trace);
        let thrash = sim(base.with_adapters(AdapterModel::new(64, 1))).run(&trace);
        let roomy = sim(base.with_adapters(AdapterModel::new(64, 2))).run(&trace);
        // 1 prefill wave + 15 decode steps, two tenants each: the one-slot
        // cache reloads both every step, the two-slot cache never evicts.
        assert_eq!(thrash.adapters.cache_loads, 32);
        assert_eq!(thrash.adapters.cache_hits, 0);
        assert!(thrash.adapters.evictions > 0);
        assert_eq!(roomy.adapters.cache_loads, 2);
        assert_eq!(roomy.adapters.evictions, 0);
        assert!(roomy.adapters.hit_rate() > 0.9);
        assert_eq!(off.adapters.cache_loads, 0);
        assert!(off.makespan_s < roomy.makespan_s);
        assert!(roomy.makespan_s < thrash.makespan_s);
        // Identical request progression: only the step times moved. The
        // switch wait lands after the prefill wave's TTFT stamps (it
        // delays the step's completion, not the tokens inside it), so
        // first tokens match and every completion slips.
        for (a, b) in off.records.iter().zip(&thrash.records) {
            assert_eq!(a.output_tokens, b.output_tokens);
            assert_eq!(a.first_token_s, b.first_token_s);
            assert!(b.completion_s > a.completion_s);
        }
        // The paged policy carves the cache (2 × 4 blocks of the 20-block
        // pool) out of the sequence-usable space: a request that fits the
        // raw pool but not the remainder is rejected, and the carve is
        // visible in the stats.
        let paged = ServingConfig::paged(4, 320, 16).with_adapters(AdapterModel::new(64, 2));
        let big = RequestTrace::new(vec![req(0, 0.0, 200, 8)]);
        let without = sim(ServingConfig::paged(4, 320, 16)).run(&big);
        assert_eq!(without.completed(), 1, "13 of 20 blocks fit");
        let carved = sim(paged).run(&big);
        assert_eq!(carved.rejected, 1, "13 blocks exceed the 12 left");
        assert_eq!(carved.adapters.reserved_blocks, 8);
        assert_eq!(carved.qos.interactive_rejected, 1);
    }

    /// The tenant axes are invisible until used: explicitly-disabled
    /// adapters and a different aging threshold reproduce the default run
    /// bit for bit on a single-class base-model trace, and an *enabled*
    /// adapter cache that no request touches changes nothing either (on
    /// the reserve-up-front policies, whose cache lives outside the pool).
    #[test]
    fn unused_tenant_axes_are_bit_invisible() {
        let trace = WorkloadSpec::chat(6.0, 80, 9).generate();
        for config in [
            ServingConfig::continuous(8, 20_000),
            ServingConfig::static_batching(8, 20_000),
            ServingConfig::paged(8, 20_000, 16).with_prefix_sharing(true),
        ] {
            let plain = sim(config).run(&trace);
            let explicit = sim(config
                .with_adapters(AdapterModel::disabled())
                .with_qos_aging(3))
            .run(&trace);
            assert_eq!(plain, explicit, "{}", config.scheduler);
            assert_eq!(plain.adapters, AdapterStats::default());
            assert_eq!(plain.qos.batch_admitted, 0);
            assert_eq!(plain.qos.interactive_bypasses, 0);
        }
        // Enabled-but-untouched adapters: all-BASE traffic never touches
        // the cache, so the reserve-up-front reports match exactly.
        for config in [
            ServingConfig::continuous(8, 20_000),
            ServingConfig::static_batching(8, 20_000),
        ] {
            let plain = sim(config).run(&trace);
            let armed = sim(config.with_adapters(AdapterModel::new(64, 2))).run(&trace);
            assert_eq!(plain, armed, "{}", config.scheduler);
        }
    }

    #[test]
    #[should_panic(expected = "adapter cache reservation")]
    fn adapter_carve_swallowing_the_pool_panics() {
        // 20 blocks of 16 tokens; 2 adapters × 10 blocks leave nothing.
        let config = ServingConfig::paged(4, 320, 16).with_adapters(AdapterModel::new(160, 2));
        let _ = sim(config);
    }
}
