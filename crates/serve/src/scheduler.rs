//! The serving schedulers: vLLM/Orca-style continuous batching and the
//! classic static (run-to-completion) batching baseline.
//!
//! Both are discrete-event simulations at token-step granularity. The
//! engine alternates *prefill steps* (process the prompts of newly admitted
//! requests — prefill-prioritized, as in vLLM's default policy) and *decode
//! steps* (one token for every running sequence). Admission reserves a
//! request's whole KV footprint (`prompt + output` tokens) up front, so the
//! KV-cache budget can never be exceeded and no preemption is needed.

use std::collections::VecDeque;

use crate::cost::ServingCostModel;
use crate::metrics::{RequestRecord, ServingMetrics, SloTarget};
use crate::workload::RequestTrace;

/// Which admission policy the simulated server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// Continuous batching: requests join the running batch at any token
    /// boundary and leave on completion.
    ContinuousBatching,
    /// Static batching: a batch is formed from the queue only when the
    /// server is idle and runs to completion before the next admission.
    StaticBatching,
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::ContinuousBatching => write!(f, "continuous"),
            SchedulerKind::StaticBatching => write!(f, "static"),
        }
    }
}

/// Configuration of one simulated serving replica.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingConfig {
    /// Maximum sequences decoded together.
    pub max_batch: usize,
    /// KV-cache budget in tokens (across all resident sequences), e.g. from
    /// [`deca_llm::footprint::max_kv_tokens`].
    pub kv_budget_tokens: usize,
    /// Admission policy.
    pub scheduler: SchedulerKind,
}

impl ServingConfig {
    /// A continuous-batching replica.
    #[must_use]
    pub fn continuous(max_batch: usize, kv_budget_tokens: usize) -> Self {
        ServingConfig {
            max_batch,
            kv_budget_tokens,
            scheduler: SchedulerKind::ContinuousBatching,
        }
    }

    /// A static-batching replica with the same resources.
    #[must_use]
    pub fn static_batching(max_batch: usize, kv_budget_tokens: usize) -> Self {
        ServingConfig {
            max_batch,
            kv_budget_tokens,
            scheduler: SchedulerKind::StaticBatching,
        }
    }

    /// The same replica under the other admission policy.
    #[must_use]
    pub fn with_scheduler(self, scheduler: SchedulerKind) -> Self {
        ServingConfig { scheduler, ..self }
    }
}

/// A request resident in the running batch.
#[derive(Debug, Clone, Copy)]
struct Active {
    /// Index into the trace's request slice.
    idx: usize,
    /// Whether the prompt has been processed.
    prefilled: bool,
    /// Time the first output token was produced (valid once prefilled).
    first_token_s: f64,
    /// Tokens currently in the KV cache (prompt + generated so far).
    context_tokens: usize,
    /// Decode tokens still to generate (the prefill emits the first).
    remaining_decode: usize,
    /// KV tokens reserved against the budget at admission.
    reserved_tokens: usize,
    /// Time the last output token was produced (set once generation
    /// finishes; under static batching the slot may stay blocked longer).
    done_s: Option<f64>,
}

/// Everything one serving run produced. `PartialEq` so determinism is
/// directly assertable: two runs of the same trace compare equal.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingReport {
    /// The admission policy that ran.
    pub scheduler: SchedulerKind,
    /// Completed requests with their lifecycle timestamps.
    pub records: Vec<RequestRecord>,
    /// Requests admitted into the batch over the whole run.
    pub admitted: usize,
    /// Requests rejected at admission (their full KV footprint exceeds the
    /// budget outright, so they could never run).
    pub rejected: usize,
    /// Wall-clock end of the run (last completion).
    pub makespan_s: f64,
    /// KV budget the run was configured with.
    pub kv_budget_tokens: usize,
    /// Peak KV tokens *reserved* against the budget at any instant.
    pub peak_kv_reserved_tokens: usize,
    /// Peak KV tokens actually resident (prompt + generated so far).
    pub peak_kv_occupied_tokens: usize,
    /// Time-weighted mean KV occupancy as a fraction of the budget.
    pub mean_kv_occupancy: f64,
    /// Largest decode batch observed.
    pub peak_batch: usize,
    /// Largest admission-queue depth observed.
    pub peak_queue_depth: usize,
    /// Time-weighted mean admission-queue depth.
    pub mean_queue_depth: f64,
    /// Decode steps executed.
    pub decode_steps: u64,
    /// Prefill steps executed (one per admission wave).
    pub prefill_steps: u64,
}

impl ServingReport {
    /// Aggregated latency/throughput metrics of the run.
    #[must_use]
    pub fn metrics(&self) -> ServingMetrics {
        ServingMetrics::from_records(&self.records, self.rejected, self.makespan_s)
    }

    /// Requests per second that met `slo`.
    #[must_use]
    pub fn goodput_rps(&self, slo: &SloTarget) -> f64 {
        ServingMetrics::goodput_rps(&self.records, slo, self.makespan_s)
    }

    /// Completed requests.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.records.len()
    }
}

/// A single serving replica: a cost model plus a scheduler configuration.
/// Driving it over a [`RequestTrace`] is a pure function of its inputs.
#[derive(Debug, Clone)]
pub struct ServingSimulator<C: ServingCostModel> {
    cost: C,
    config: ServingConfig,
}

impl<C: ServingCostModel> ServingSimulator<C> {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or the KV budget is zero.
    #[must_use]
    pub fn new(cost: C, config: ServingConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.kv_budget_tokens > 0, "KV budget must be positive");
        ServingSimulator { cost, config }
    }

    /// The replica configuration.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Consumes the simulator and returns the cost model (with its caches
    /// warm, ready for the next run).
    #[must_use]
    pub fn into_cost_model(self) -> C {
        self.cost
    }

    /// Simulates serving the whole trace to drain: every request is either
    /// completed or rejected when this returns, so
    /// `admitted == completed` and `completed + rejected == trace.len()`.
    pub fn run(&mut self, trace: &RequestTrace) -> ServingReport {
        let mut state = RunState::new(self.config, trace.requests());
        loop {
            state.pull_arrivals();
            state.admit();
            if state.running.is_empty() {
                // Admission is always open on an empty batch (both
                // policies), and an empty batch can reserve against an
                // empty budget, so the queue must have drained into
                // admissions or rejections above.
                debug_assert!(state.queue.is_empty());
                if state.next_arrival >= state.requests.len() {
                    break; // drained
                }
                // Idle: jump to the next arrival.
                state.now = state.now.max(state.requests[state.next_arrival].arrival_s);
                continue;
            }
            let step_seconds = state.engine_step(&mut self.cost);
            state.account(step_seconds);
            state.retire();
        }
        state.into_report(trace.duration_s())
    }
}

/// The mutable state of one serving run.
struct RunState<'a> {
    config: ServingConfig,
    requests: &'a [crate::workload::Request],
    queue: VecDeque<usize>,
    running: Vec<Active>,
    records: Vec<RequestRecord>,
    now: f64,
    next_arrival: usize,
    reserved: usize,
    admitted: usize,
    rejected: usize,
    peak_reserved: usize,
    peak_occupied: usize,
    peak_batch: usize,
    peak_queue: usize,
    decode_steps: u64,
    prefill_steps: u64,
    queue_depth_integral: f64,
    occupancy_integral: f64,
    elapsed: f64,
}

impl<'a> RunState<'a> {
    fn new(config: ServingConfig, requests: &'a [crate::workload::Request]) -> Self {
        RunState {
            config,
            requests,
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            now: 0.0,
            next_arrival: 0,
            reserved: 0,
            admitted: 0,
            rejected: 0,
            peak_reserved: 0,
            peak_occupied: 0,
            peak_batch: 0,
            peak_queue: 0,
            decode_steps: 0,
            prefill_steps: 0,
            queue_depth_integral: 0.0,
            occupancy_integral: 0.0,
            elapsed: 0.0,
        }
    }

    /// Pulls every arrival up to the current time into the queue.
    fn pull_arrivals(&mut self) {
        while self.next_arrival < self.requests.len()
            && self.requests[self.next_arrival].arrival_s <= self.now
        {
            self.queue.push_back(self.next_arrival);
            self.next_arrival += 1;
        }
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Admission at this token boundary: FIFO, gated by the batch limit and
    /// the KV reservation budget. Requests whose whole footprint exceeds
    /// the budget outright are rejected (they could never run).
    fn admit(&mut self) {
        let admission_open = match self.config.scheduler {
            SchedulerKind::ContinuousBatching => true,
            SchedulerKind::StaticBatching => self.running.is_empty(),
        };
        if !admission_open {
            return;
        }
        while self.running.len() < self.config.max_batch {
            let Some(&head) = self.queue.front() else {
                break;
            };
            let need = self.requests[head].kv_tokens_at_completion();
            if need > self.config.kv_budget_tokens {
                // Could never run on this replica, even alone.
                self.queue.pop_front();
                self.rejected += 1;
                continue;
            }
            if self.reserved + need > self.config.kv_budget_tokens {
                break; // FIFO: wait for residents to finish.
            }
            self.queue.pop_front();
            self.reserved += need;
            self.admitted += 1;
            self.running.push(Active {
                idx: head,
                prefilled: false,
                first_token_s: 0.0,
                context_tokens: 0,
                remaining_decode: 0,
                reserved_tokens: need,
                done_s: None,
            });
        }
        self.peak_reserved = self.peak_reserved.max(self.reserved);
    }

    /// One engine step — prefill-prioritized, then decode. Returns the step
    /// duration and advances per-request progress (but not the clock).
    fn engine_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.peak_batch = self.peak_batch.max(self.running.len());
        let pending_prefill = self.running.iter().any(|a| !a.prefilled);
        if pending_prefill {
            self.prefill_steps += 1;
            // The new prompts run back to back; each request's first token
            // appears as its own prefill finishes.
            let mut cursor = self.now;
            for active in self.running.iter_mut().filter(|a| !a.prefilled) {
                let request = &self.requests[active.idx];
                cursor += cost.prefill_seconds(request.prompt_tokens);
                active.prefilled = true;
                active.first_token_s = cursor;
                active.context_tokens = request.prompt_tokens + 1;
                // Saturating: a deserialized trace can bypass
                // `RequestTrace::new`'s output_tokens ≥ 1 normalization, and
                // an underflow here would spin the run loop forever.
                active.remaining_decode = request.output_tokens.saturating_sub(1);
            }
            cursor - self.now
        } else {
            self.decode_steps += 1;
            let batch = self.running.len();
            let max_context = self
                .running
                .iter()
                .map(|a| a.context_tokens)
                .fold(0, usize::max);
            let dt = cost.decode_step_seconds(batch, max_context);
            for active in &mut self.running {
                if active.remaining_decode > 0 {
                    active.remaining_decode -= 1;
                    active.context_tokens += 1;
                }
            }
            dt
        }
    }

    /// Advances the clock and the time-weighted queue/occupancy statistics
    /// by one step.
    fn account(&mut self, step_seconds: f64) {
        let occupied: usize = self.running.iter().map(|a| a.context_tokens).sum();
        self.peak_occupied = self.peak_occupied.max(occupied);
        self.queue_depth_integral += self.queue.len() as f64 * step_seconds;
        self.occupancy_integral +=
            occupied as f64 / self.config.kv_budget_tokens as f64 * step_seconds;
        self.elapsed += step_seconds;
        self.now += step_seconds;
    }

    /// Stamps generation-finish times and retires finished sequences.
    /// Under static batching a finished request's record closes at its own
    /// last token, but its slot (and KV reservation) stays blocked until
    /// the whole batch drains — the padding cost of the baseline.
    fn retire(&mut self) {
        // A single-token output is done at the end of its prefill,
        // everything else at the end of the decode step that produced its
        // last token.
        let now = self.now;
        for active in &mut self.running {
            if active.prefilled && active.remaining_decode == 0 && active.done_s.is_none() {
                let request = &self.requests[active.idx];
                active.done_s = Some(if request.output_tokens == 1 {
                    active.first_token_s
                } else {
                    now
                });
            }
        }

        let batch_done = self.running.iter().all(|a| a.done_s.is_some());
        let scheduler = self.config.scheduler;
        let requests = self.requests;
        let records = &mut self.records;
        let reserved = &mut self.reserved;
        self.running.retain(|active| {
            let release = match scheduler {
                SchedulerKind::ContinuousBatching => active.done_s.is_some(),
                SchedulerKind::StaticBatching => batch_done,
            };
            if let (true, Some(done_s)) = (release, active.done_s) {
                let request = &requests[active.idx];
                records.push(RequestRecord {
                    id: request.id,
                    arrival_s: request.arrival_s,
                    first_token_s: active.first_token_s,
                    completion_s: done_s,
                    prompt_tokens: request.prompt_tokens,
                    output_tokens: request.output_tokens,
                });
                *reserved -= active.reserved_tokens;
                return false;
            }
            true
        });
    }

    /// Finalizes the report once the trace has drained.
    fn into_report(mut self, trace_duration_s: f64) -> ServingReport {
        self.records.sort_by_key(|r| r.id);
        let makespan = self
            .records
            .iter()
            .map(|r| r.completion_s)
            .fold(self.now.min(trace_duration_s), f64::max);
        ServingReport {
            scheduler: self.config.scheduler,
            records: self.records,
            admitted: self.admitted,
            rejected: self.rejected,
            makespan_s: makespan,
            kv_budget_tokens: self.config.kv_budget_tokens,
            peak_kv_reserved_tokens: self.peak_reserved,
            peak_kv_occupied_tokens: self.peak_occupied,
            mean_kv_occupancy: if self.elapsed > 0.0 {
                self.occupancy_integral / self.elapsed
            } else {
                0.0
            },
            peak_batch: self.peak_batch,
            peak_queue_depth: self.peak_queue,
            mean_queue_depth: if self.elapsed > 0.0 {
                self.queue_depth_integral / self.elapsed
            } else {
                0.0
            },
            decode_steps: self.decode_steps,
            prefill_steps: self.prefill_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearCostModel;
    use crate::workload::{Request, WorkloadSpec};

    fn sim(config: ServingConfig) -> ServingSimulator<LinearCostModel> {
        ServingSimulator::new(LinearCostModel::default_70b(), config)
    }

    /// Regression: a replayed-log request asking for zero output tokens is
    /// normalized to a single-token (prefill-only) request instead of
    /// underflowing `remaining_decode` and spinning the run loop forever.
    #[test]
    fn zero_output_request_terminates_as_single_token() {
        let trace = RequestTrace::new(vec![Request {
            id: 0,
            arrival_s: 0.0,
            prompt_tokens: 64,
            output_tokens: 0,
        }]);
        assert_eq!(trace.requests()[0].output_tokens, 1);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.completed(), 1);
        let r = report.records[0];
        assert_eq!(r.output_tokens, 1);
        // Prefill-only: done at the first token.
        assert_eq!(r.completion_s, r.first_token_s);
    }

    #[test]
    fn single_request_lifecycle() {
        let trace = RequestTrace::new(vec![Request {
            id: 0,
            arrival_s: 1.0,
            prompt_tokens: 100,
            output_tokens: 5,
        }]);
        let mut cost = LinearCostModel::default_70b();
        let prefill = cost.prefill_seconds(100);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.admitted, 1);
        assert_eq!(report.rejected, 0);
        let r = report.records[0];
        assert!((r.ttft_s() - prefill).abs() < 1e-12);
        assert_eq!(report.decode_steps, 4);
        assert_eq!(report.prefill_steps, 1);
        assert!(r.completion_s > r.first_token_s);
        assert_eq!(report.peak_kv_reserved_tokens, 105);
    }

    #[test]
    fn single_token_outputs_complete_at_the_prefill() {
        let trace = RequestTrace::new(vec![Request {
            id: 0,
            arrival_s: 0.0,
            prompt_tokens: 64,
            output_tokens: 1,
        }]);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.completed(), 1);
        let r = report.records[0];
        assert_eq!(r.completion_s, r.first_token_s);
        assert_eq!(r.tpot_s(), 0.0);
        assert_eq!(report.decode_steps, 0);
    }

    #[test]
    fn oversized_requests_are_rejected_not_wedged() {
        let trace = RequestTrace::new(vec![
            Request {
                id: 0,
                arrival_s: 0.0,
                prompt_tokens: 5_000,
                output_tokens: 10,
            },
            Request {
                id: 1,
                arrival_s: 0.1,
                prompt_tokens: 50,
                output_tokens: 10,
            },
        ]);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.records[0].id, 1);
        assert_eq!(report.admitted + report.rejected, 2);
    }

    #[test]
    fn kv_budget_gates_admission() {
        // Two requests that each need 600 tokens against a 1000-token
        // budget: the second must wait for the first to retire.
        let mk = |id, arrival| Request {
            id,
            arrival_s: arrival,
            prompt_tokens: 590,
            output_tokens: 10,
        };
        let trace = RequestTrace::new(vec![mk(0, 0.0), mk(1, 0.0)]);
        let report = sim(ServingConfig::continuous(8, 1_000)).run(&trace);
        assert_eq!(report.completed(), 2);
        assert!(report.peak_kv_reserved_tokens <= 1_000);
        assert_eq!(report.peak_batch, 1);
        // Sequential service: the second request's first token comes after
        // the first request fully completes.
        assert!(report.records[1].first_token_s >= report.records[0].completion_s);
    }

    #[test]
    fn continuous_admits_mid_batch_but_static_waits() {
        // Request 0 is long-running; request 1 arrives while 0 decodes.
        let trace = RequestTrace::new(vec![
            Request {
                id: 0,
                arrival_s: 0.0,
                prompt_tokens: 10,
                output_tokens: 200,
            },
            Request {
                id: 1,
                arrival_s: 0.5,
                prompt_tokens: 10,
                output_tokens: 5,
            },
        ]);
        let continuous = sim(ServingConfig::continuous(8, 10_000)).run(&trace);
        let static_ = sim(ServingConfig::static_batching(8, 10_000)).run(&trace);
        // Continuous: request 1 joins while 0 is still going.
        assert!(continuous.peak_batch == 2);
        assert!(continuous.records[1].first_token_s < continuous.records[0].completion_s);
        // Static: request 1 waits for the whole first batch to finish.
        assert_eq!(static_.peak_batch, 1);
        assert!(static_.records[1].first_token_s >= static_.records[0].completion_s);
        // Both conserve requests.
        for r in [&continuous, &static_] {
            assert_eq!(r.admitted, r.completed());
            assert_eq!(r.completed() + r.rejected, 2);
        }
    }

    #[test]
    fn static_batching_pads_to_the_longest_member() {
        // Short and long request admitted together: the short one's record
        // closes at its own last token, but the engine keeps stepping (and
        // its slot stays occupied) until the long one drains.
        let trace = RequestTrace::new(vec![
            Request {
                id: 0,
                arrival_s: 0.0,
                prompt_tokens: 10,
                output_tokens: 3,
            },
            Request {
                id: 1,
                arrival_s: 0.0,
                prompt_tokens: 10,
                output_tokens: 50,
            },
        ]);
        let report = sim(ServingConfig::static_batching(8, 10_000)).run(&trace);
        assert_eq!(report.completed(), 2);
        assert!(report.records[0].completion_s < report.records[1].completion_s);
        // 49 decode steps for the long request; the short rode along.
        assert_eq!(report.decode_steps, 49);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = WorkloadSpec::chat(6.0, 150, 9).generate();
        let config = ServingConfig::continuous(16, 50_000);
        let a = sim(config).run(&trace);
        let b = sim(config).run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn drains_everything_under_overload() {
        // Offered load far above capacity: the queue grows, but a finite
        // trace still drains and conserves requests.
        let trace = WorkloadSpec::chat(1000.0, 300, 21).generate();
        let report = sim(ServingConfig::continuous(4, 4_000)).run(&trace);
        assert_eq!(report.completed() + report.rejected, 300);
        assert_eq!(report.admitted, report.completed());
        assert!(report.peak_queue_depth > 4);
        assert!(report.mean_queue_depth > 0.0);
        assert!(report.peak_kv_reserved_tokens <= 4_000);
    }
}
