//! Workload generation: request arrival processes, prompt/output-length
//! distributions, and the replayable [`RequestTrace`] the schedulers
//! consume.
//!
//! Everything is a deterministic function of a seed, so a trace can be
//! regenerated bit-for-bit (and the whole serving simulation above it is
//! replayable).

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::lora::AdapterId;
use crate::tenant::QosClass;

/// `splitmix64`: the token-id mixer behind [`TokenStream`] (and the
/// scheduler's seeded speculative-acceptance draws). Cheap, and a
/// bijection on `u64`, so distinct (stream, position) pairs essentially
/// never collide into equal block keys.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The stream key every session's shared system prompt draws from.
const SYSTEM_STREAM: u64 = 0x5953_5445_4d5f_5052; // "SYSTEM_PR"

/// Salt distinguishing per-request unique streams from session streams.
const UNIQUE_SALT: u64 = 0x554e_4951_5545_5f53; // "UNIQUE_S"

/// Deterministic token-id source for one request's prompt (and generated
/// continuation): token `p` of the sequence is a pure function of the
/// stream, so two requests of the same session share identical token-id
/// prefixes — the real keys the radix prefix cache ([`crate::prefix`])
/// matches on — without the trace storing any token arrays.
///
/// Positions below `system_tokens` are drawn from a shared stream —
/// normally the global system-prompt stream, but a document stream
/// ([`TokenStream::document`]) scopes the sharing to one document's
/// sessions instead of all sessions; positions at or above it come from
/// the per-session stream (the deterministic "conversation transcript",
/// which also covers generated tokens, so a follow-up turn's prompt
/// extends its predecessor's prompt + output exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TokenStream {
    /// Key of the per-session token stream.
    pub session: u64,
    /// Leading positions drawn from the shared stream.
    pub system_tokens: usize,
    /// Key of the shared stream the leading positions draw from. Defaults
    /// to the global system-prompt stream (what every pre-RAG trace used);
    /// RAG traces put a per-document key here so exactly that document's
    /// sessions share the prefix.
    #[serde(default = "default_shared_stream")]
    pub shared: u64,
}

/// The pre-RAG shared stream: every session's system prompt.
fn default_shared_stream() -> u64 {
    SYSTEM_STREAM
}

impl TokenStream {
    /// A stream unique to one request: no shared system prefix, session key
    /// derived from the request id. (Distinct requests share no token-id
    /// blocks, so the prefix cache stays cold — the pre-paged behavior.)
    #[must_use]
    pub fn unique(request_id: usize) -> Self {
        TokenStream {
            session: splitmix64(UNIQUE_SALT ^ request_id as u64),
            system_tokens: 0,
            shared: default_shared_stream(),
        }
    }

    /// The stream of one chat session: `system_tokens` of shared system
    /// prompt, then the session's own transcript.
    #[must_use]
    pub fn session(session: u64, system_tokens: usize) -> Self {
        TokenStream {
            session,
            system_tokens,
            shared: default_shared_stream(),
        }
    }

    /// The stream of one RAG session: `document_tokens` drawn from the
    /// per-`document` stream (shared by every session querying that
    /// document, and only those), then the session's own question and
    /// generated answer.
    #[must_use]
    pub fn document(document: u64, session: u64, document_tokens: usize) -> Self {
        TokenStream {
            session,
            system_tokens: document_tokens,
            shared: document,
        }
    }

    /// The token id at `position` of this stream.
    #[must_use]
    pub fn token_id(&self, position: usize) -> u64 {
        let stream = if position < self.system_tokens {
            self.shared
        } else {
            self.session
        };
        splitmix64(stream ^ splitmix64(position as u64))
    }

    /// The first `len` token ids of the stream.
    #[must_use]
    pub fn token_ids(&self, len: usize) -> Vec<u64> {
        (0..len).map(|p| self.token_id(p)).collect()
    }
}

/// One inference request: when it arrives and how much work it carries.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Request {
    /// Stable request id (index in arrival order within the trace).
    pub id: usize,
    /// Arrival time in seconds from the start of the trace.
    pub arrival_s: f64,
    /// Prompt length in tokens (processed by the prefill phase).
    pub prompt_tokens: usize,
    /// Output length in tokens (the first is produced by the prefill, the
    /// rest by decode steps). Always at least 1.
    pub output_tokens: usize,
    /// Token-id source of the prompt (and generated continuation) — what
    /// the paged scheduler's prefix cache keys on.
    pub stream: TokenStream,
    /// Service class: which SLO this request is sold under and how
    /// admission prioritizes it. Defaults to Interactive, the class every
    /// pre-tenant trace implicitly was.
    #[serde(default)]
    pub qos: QosClass,
    /// The LoRA adapter this request runs, [`AdapterId::BASE`] (the
    /// default) for the unadapted base model.
    #[serde(default)]
    pub adapter: AdapterId,
}

impl Request {
    /// KV-cache tokens this request occupies once fully generated — the
    /// amount a budget-respecting scheduler must reserve at admission.
    /// Saturating: a deserialized or fuzzed trace may carry lengths whose
    /// sum overflows `usize`, and such a request must surface as "larger
    /// than any budget" (rejected), not as a debug-build panic or a tiny
    /// wrapped footprint that slips past admission.
    #[must_use]
    pub fn kv_tokens_at_completion(&self) -> usize {
        self.prompt_tokens.saturating_add(self.output_tokens)
    }
}

/// A distribution over token counts (prompt or output lengths).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LengthDistribution {
    /// Every request draws the same length.
    Fixed(usize),
    /// Uniform over `[min, max]` inclusive.
    Uniform {
        /// Smallest length.
        min: usize,
        /// Largest length.
        max: usize,
    },
    /// Chat-style mixture: mostly `short`, with a `long_fraction` of `long`
    /// (e.g. pasted documents).
    Bimodal {
        /// The common (modal) length.
        short: usize,
        /// The rare long length.
        long: usize,
        /// Probability of drawing `long`, in `[0, 1]`.
        long_fraction: f64,
    },
}

impl LengthDistribution {
    /// Draws one length. Lengths are clamped to at least 1 token.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let raw = match *self {
            LengthDistribution::Fixed(len) => len,
            LengthDistribution::Uniform { min, max } => {
                let (lo, hi) = (min.min(max), min.max(max));
                rng.gen_range(lo..hi + 1)
            }
            LengthDistribution::Bimodal {
                short,
                long,
                long_fraction,
            } => {
                if rng.gen::<f64>() < long_fraction {
                    long
                } else {
                    short
                }
            }
        };
        raw.max(1)
    }

    /// The largest length this distribution can produce (used for KV-budget
    /// sanity checks).
    #[must_use]
    pub fn max_len(&self) -> usize {
        match *self {
            LengthDistribution::Fixed(len) => len.max(1),
            LengthDistribution::Uniform { min, max } => min.max(max).max(1),
            LengthDistribution::Bimodal { short, long, .. } => short.max(long).max(1),
        }
    }
}

/// Why a workload spec cannot generate a trace. Surfaced by the specs'
/// `try_generate` methods so a mis-parameterized sweep or a deserialized
/// config errors out clearly instead of hanging in (or silently
/// degenerating) trace generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// An arrival rate (or burst/period shape) that can never produce a
    /// valid arrival sequence: zero, negative, or non-finite.
    InvalidRate(&'static str),
    /// A spec describing zero requests (no sessions, no documents, …).
    EmptySpec(&'static str),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::InvalidRate(what) => write!(f, "invalid arrival rate: {what}"),
            WorkloadError::EmptySpec(what) => write!(f, "empty workload spec: {what}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A stochastic arrival process over continuous time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate (requests per second).
    Poisson {
        /// Mean arrival rate in requests per second. Must be positive.
        rate_per_sec: f64,
    },
    /// On/off modulated Poisson: every `period_secs`-long cycle starts with
    /// `burst_secs` at `burst_rate`, then drops to `base_rate` for the rest
    /// — the bursty traffic that separates continuous from static batching.
    Bursty {
        /// Arrival rate outside bursts (may be 0).
        base_rate: f64,
        /// Arrival rate during bursts. Must be positive.
        burst_rate: f64,
        /// Burst duration at the start of each period.
        burst_secs: f64,
        /// Full cycle length. Must exceed `burst_secs`.
        period_secs: f64,
    },
}

impl ArrivalProcess {
    /// The instantaneous rate at time `t` and the next time the rate
    /// changes (`f64::INFINITY` for the homogeneous process).
    fn rate_and_boundary(&self, t: f64) -> (f64, f64) {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => (rate_per_sec, f64::INFINITY),
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                burst_secs,
                period_secs,
            } => {
                let cycle = (t / period_secs).floor();
                let phase = t - cycle * period_secs;
                if phase < burst_secs {
                    (burst_rate, cycle * period_secs + burst_secs)
                } else {
                    (base_rate, (cycle + 1.0) * period_secs)
                }
            }
        }
    }

    /// Draws the next arrival strictly after `t`, exactly (piecewise-
    /// constant rates use the memorylessness of the exponential: on a rate
    /// change the residual clock is simply redrawn).
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid (non-positive peak
    /// rate, or a bursty period not exceeding its burst).
    pub fn next_arrival<R: Rng>(&self, t: f64, rng: &mut R) -> f64 {
        self.validate();
        let mut t = t;
        loop {
            let (rate, boundary) = self.rate_and_boundary(t);
            if rate <= 0.0 {
                t = boundary;
                continue;
            }
            let dt = exponential_gap(rng.gen(), rate);
            if t + dt <= boundary {
                return t + dt;
            }
            t = boundary;
        }
    }

    fn validate(&self) {
        if let Err(error) = self.validated() {
            panic!("{error}");
        }
    }

    /// Checks the process parameters, returning a clear error for a
    /// process that could never produce a valid arrival sequence —
    /// non-positive or non-finite rates, or a bursty period not exceeding
    /// its burst. (A zero Poisson rate, for example, would otherwise spin
    /// [`ArrivalProcess::next_arrival`] forever chasing an infinite
    /// boundary.)
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidRate`] describing the offending parameter.
    pub fn validated(&self) -> Result<(), WorkloadError> {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                if !(rate_per_sec > 0.0 && rate_per_sec.is_finite()) {
                    return Err(WorkloadError::InvalidRate(
                        "Poisson rate must be positive and finite",
                    ));
                }
            }
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                burst_secs,
                period_secs,
            } => {
                if !(base_rate >= 0.0 && base_rate.is_finite()) {
                    return Err(WorkloadError::InvalidRate(
                        "base rate must be non-negative and finite",
                    ));
                }
                if !(burst_rate > 0.0 && burst_rate.is_finite()) {
                    return Err(WorkloadError::InvalidRate(
                        "burst rate must be positive and finite",
                    ));
                }
                if !(burst_secs > 0.0 && period_secs > burst_secs && period_secs.is_finite()) {
                    return Err(WorkloadError::InvalidRate("period must exceed the burst"));
                }
            }
        }
        Ok(())
    }

    /// Long-run average arrival rate in requests per second.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                burst_secs,
                period_secs,
            } => (burst_rate * burst_secs + base_rate * (period_secs - burst_secs)) / period_secs,
        }
    }
}

/// Inverse-CDF exponential inter-arrival gap at `rate` from a unit draw.
///
/// The transform needs `unit < 1.0` strictly: at exactly 1.0,
/// `ln(1 − unit) = ln(0) = −inf` turns the gap infinite and every later
/// timestamp NaN. `Rng::gen` contracts to the half-open `[0, 1)`, but that
/// invariant lives in a different crate (and other `Rng` sources — e.g. a
/// replayed unit stream — may include the endpoint), so it is enforced
/// here by clamping the draw into the interval the transform tolerates
/// (`max` then `min` rather than `f64::clamp`, which passes NaN through —
/// `max(NaN, 0.0)` resolves to `0.0`). The returned gap is therefore
/// always finite and non-negative for a positive, finite `rate`, whatever
/// the draw.
// Not `f64::clamp`: the whole point of max-then-min here is its NaN
// behavior, which `clamp` does not share.
#[allow(clippy::manual_clamp)]
pub(crate) fn exponential_gap(unit: f64, rate: f64) -> f64 {
    let unit = unit.max(0.0).min(1.0 - f64::EPSILON);
    -(1.0 - unit).ln() / rate
}

/// A complete workload description: arrivals × lengths × size × seed.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Prompt-length distribution.
    pub prompt_lengths: LengthDistribution,
    /// Output-length distribution.
    pub output_lengths: LengthDistribution,
    /// Number of requests to generate.
    pub requests: usize,
    /// RNG seed: the same spec always generates the same trace.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A chat-style workload: Poisson arrivals, mostly-short prompts with
    /// an occasional pasted document, full-response outputs (decode-heavy,
    /// the regime where online decompression speed shows up in capacity).
    #[must_use]
    pub fn chat(rate_per_sec: f64, requests: usize, seed: u64) -> Self {
        WorkloadSpec {
            arrivals: ArrivalProcess::Poisson { rate_per_sec },
            prompt_lengths: LengthDistribution::Bimodal {
                short: 128,
                long: 1024,
                long_fraction: 0.1,
            },
            output_lengths: LengthDistribution::Uniform { min: 64, max: 224 },
            requests,
            seed,
        }
    }

    /// A bursty variant of [`WorkloadSpec::chat`]: the same mean rate
    /// delivered as 5x bursts for a fifth of every 20-second period.
    #[must_use]
    pub fn bursty_chat(mean_rate_per_sec: f64, requests: usize, seed: u64) -> Self {
        WorkloadSpec {
            arrivals: ArrivalProcess::Bursty {
                base_rate: 0.0,
                burst_rate: mean_rate_per_sec * 5.0,
                burst_secs: 4.0,
                period_secs: 20.0,
            },
            ..WorkloadSpec::chat(mean_rate_per_sec, requests, seed)
        }
    }

    /// Generates the replayable trace, or a clear error for a spec that
    /// could never generate one (an invalid arrival process would
    /// otherwise hang or degenerate inside generation).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidRate`] for zero/negative/non-finite rates;
    /// [`WorkloadError::EmptySpec`] when `requests` is zero.
    pub fn try_generate(&self) -> Result<RequestTrace, WorkloadError> {
        self.arrivals.validated()?;
        if self.requests == 0 {
            return Err(WorkloadError::EmptySpec(
                "a workload spec needs at least one request",
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut t = 0.0;
        let mut requests = Vec::with_capacity(self.requests);
        for id in 0..self.requests {
            t = self.arrivals.next_arrival(t, &mut rng);
            requests.push(Request {
                id,
                arrival_s: t,
                prompt_tokens: self.prompt_lengths.sample(&mut rng),
                output_tokens: self.output_lengths.sample(&mut rng),
                stream: TokenStream::unique(id),
                qos: QosClass::Interactive,
                adapter: AdapterId::BASE,
            });
        }
        Ok(RequestTrace { requests })
    }

    /// Generates the replayable trace this spec describes.
    ///
    /// # Panics
    ///
    /// Panics where [`WorkloadSpec::try_generate`] errors.
    #[must_use]
    pub fn generate(&self) -> RequestTrace {
        match self.try_generate() {
            Ok(trace) => trace,
            Err(error) => panic!("{error}"),
        }
    }
}

/// A shared-prefix chat workload: `sessions` conversations arrive as a
/// Poisson process, every session opens with the same `system_prompt_tokens`
/// system prompt (drawn from the global system stream, so *all* sessions
/// share those token-id blocks), and each of its `turns_per_session` turns
/// carries the whole conversation so far as its prompt — turn `t+1`'s
/// prompt extends turn `t`'s prompt + generated output in the session's
/// [`TokenStream`], exactly the workload a radix prefix cache serves well
/// and a reserve-up-front scheduler pays full prefill for every turn.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SharedPrefixChatSpec {
    /// Session (conversation) arrival rate, sessions per second.
    pub rate_per_sec: f64,
    /// Number of conversations.
    pub sessions: usize,
    /// Turns per conversation (≥ 1).
    pub turns_per_session: usize,
    /// System-prompt tokens shared by every session.
    pub system_prompt_tokens: usize,
    /// Length of each turn's fresh user message.
    pub user_tokens: LengthDistribution,
    /// Length of each turn's generated reply.
    pub output_tokens: LengthDistribution,
    /// Mean think time between receiving a reply and sending the next turn
    /// (an exponential gap, plus a decode-time allowance so open-loop
    /// follow-ups usually arrive after their predecessor finished).
    pub think_time_s: f64,
    /// RNG seed: the same spec always generates the same trace.
    pub seed: u64,
}

impl SharedPrefixChatSpec {
    /// A prefix-heavy chat fleet: 512-token system prompt, 4 turns per
    /// conversation, short user messages, mid-length replies.
    #[must_use]
    pub fn fleet(rate_per_sec: f64, sessions: usize, seed: u64) -> Self {
        SharedPrefixChatSpec {
            rate_per_sec,
            sessions,
            turns_per_session: 4,
            system_prompt_tokens: 512,
            user_tokens: LengthDistribution::Uniform { min: 24, max: 96 },
            output_tokens: LengthDistribution::Uniform { min: 48, max: 160 },
            think_time_s: 20.0,
            seed,
        }
    }

    /// The deterministic sim-speed benchmark trace (`bench_simspeed`, and
    /// the CI `simspeed` gate): `sessions` two-turn conversations over a
    /// 128-token shared system prompt, short user messages and replies,
    /// offered at 16 sessions/s. Small per-request token counts keep the
    /// simulated work per request bounded, so the benchmark measures the
    /// event core's overhead — heap ops and incremental accounting — not
    /// the length of the conversations; the fixed seed makes every run
    /// (and every CI machine) simulate the identical trace.
    #[must_use]
    pub fn simspeed(sessions: usize) -> Self {
        SharedPrefixChatSpec {
            rate_per_sec: 16.0,
            sessions,
            turns_per_session: 2,
            system_prompt_tokens: 128,
            user_tokens: LengthDistribution::Uniform { min: 16, max: 48 },
            output_tokens: LengthDistribution::Uniform { min: 16, max: 48 },
            think_time_s: 5.0,
            seed: 71,
        }
    }

    /// The same conversations offered at a different session rate (the
    /// knob a capacity search turns).
    #[must_use]
    pub fn with_rate(self, rate_per_sec: f64) -> Self {
        SharedPrefixChatSpec {
            rate_per_sec,
            ..self
        }
    }

    /// Requests the generated trace will contain.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.sessions * self.turns_per_session.max(1)
    }

    /// Generates the replayable trace, or a clear error for a spec that
    /// could never generate one.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidRate`] for a zero/negative/non-finite
    /// session rate; [`WorkloadError::EmptySpec`] when `sessions` is zero.
    pub fn try_generate(&self) -> Result<RequestTrace, WorkloadError> {
        ArrivalProcess::Poisson {
            rate_per_sec: self.rate_per_sec,
        }
        .validated()?;
        if self.sessions == 0 {
            return Err(WorkloadError::EmptySpec(
                "a shared-prefix chat spec needs at least one session",
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut requests = Vec::with_capacity(self.requests());
        let mut session_start = 0.0f64;
        let think_rate = 1.0 / self.think_time_s.max(1e-6);
        for session in 0..self.sessions {
            session_start += exponential_gap(rng.gen(), self.rate_per_sec);
            let stream = TokenStream::session(
                splitmix64(self.seed ^ splitmix64(session as u64)),
                self.system_prompt_tokens,
            );
            let mut transcript = self.system_prompt_tokens;
            let mut arrival = session_start;
            for _ in 0..self.turns_per_session.max(1) {
                let user = self.user_tokens.sample(&mut rng);
                let output = self.output_tokens.sample(&mut rng);
                transcript += user;
                requests.push(Request {
                    id: 0, // assigned in arrival order below
                    arrival_s: arrival,
                    prompt_tokens: transcript,
                    output_tokens: output,
                    stream,
                    qos: QosClass::Interactive,
                    adapter: AdapterId::BASE,
                });
                transcript += output;
                // Next turn: think time plus a generous decode allowance
                // (~60 ms/token) so the reply is usually complete first.
                arrival += exponential_gap(rng.gen(), think_rate) + output as f64 * 0.06;
            }
        }
        let mut trace = RequestTrace::new(requests);
        for (index, request) in trace.requests.iter_mut().enumerate() {
            request.id = index;
        }
        Ok(trace)
    }

    /// Generates the replayable trace this spec describes.
    ///
    /// # Panics
    ///
    /// Panics where [`SharedPrefixChatSpec::try_generate`] errors.
    #[must_use]
    pub fn generate(&self) -> RequestTrace {
        match self.try_generate() {
            Ok(trace) => trace,
            Err(error) => panic!("{error}"),
        }
    }

    /// Streams the same requests as [`SharedPrefixChatSpec::generate`] —
    /// bit-identical, same ids, same order — without ever materializing
    /// the trace. At million-session scale the materialized `Vec<Request>`
    /// is the simulation's dominant allocation; the stream holds only the
    /// turns of sessions that have started but whose arrivals are not yet
    /// safe to emit (bounded by session concurrency, not session count).
    ///
    /// # Panics
    ///
    /// Panics if the session rate is not positive.
    #[must_use]
    pub fn stream(&self) -> SharedPrefixChatStream {
        assert!(self.rate_per_sec > 0.0, "session rate must be positive");
        SharedPrefixChatStream {
            spec: *self,
            rng: StdRng::seed_from_u64(self.seed),
            next_session: 0,
            session_start: 0.0,
            gen_seq: 0,
            emitted: 0,
            pending: std::collections::BinaryHeap::new(),
        }
    }
}

/// One not-yet-emitted turn inside [`SharedPrefixChatStream`], ordered by
/// `(arrival, generation index)`. The generation index reproduces the
/// stable tie-break of [`RequestTrace::new`]'s sort: co-timed requests
/// keep the order [`SharedPrefixChatSpec::generate`] produced them in.
#[derive(Debug, Clone)]
struct PendingTurn {
    gen_seq: usize,
    request: Request,
}

impl PartialEq for PendingTurn {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for PendingTurn {}

impl PartialOrd for PendingTurn {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingTurn {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.request
            .arrival_s
            .total_cmp(&other.request.arrival_s)
            .then(self.gen_seq.cmp(&other.gen_seq))
    }
}

/// Lazy, arrival-ordered request source over a [`SharedPrefixChatSpec`] —
/// see [`SharedPrefixChatSpec::stream`].
///
/// Sessions are generated in start order from a single sequential RNG
/// (the exact draw order of `generate`), and a turn is emitted once its
/// arrival is at or before the most recently started session: every
/// later session starts no earlier, so no future turn can precede it.
/// Ids are assigned in emission order, matching the materialized trace's
/// post-sort renumbering.
#[derive(Debug, Clone)]
pub struct SharedPrefixChatStream {
    spec: SharedPrefixChatSpec,
    rng: StdRng,
    /// Next session index to generate.
    next_session: usize,
    /// Start time of the most recently generated session.
    session_start: f64,
    /// Turns generated so far (the stable tie-break key).
    gen_seq: usize,
    /// Requests emitted so far (the next request id).
    emitted: usize,
    /// Generated turns whose arrival might still be preceded by a
    /// not-yet-generated session's turn (min-heap by arrival).
    pending: std::collections::BinaryHeap<std::cmp::Reverse<PendingTurn>>,
}

impl SharedPrefixChatStream {
    /// Draws the next session's start and all of its turns into `pending`,
    /// replicating `generate`'s per-session RNG draw order exactly.
    fn generate_next_session(&mut self) {
        let spec = &self.spec;
        let think_rate = 1.0 / spec.think_time_s.max(1e-6);
        self.session_start += exponential_gap(self.rng.gen(), spec.rate_per_sec);
        let session = self.next_session;
        self.next_session += 1;
        let stream = TokenStream::session(
            splitmix64(spec.seed ^ splitmix64(session as u64)),
            spec.system_prompt_tokens,
        );
        let mut transcript = spec.system_prompt_tokens;
        let mut arrival = self.session_start;
        for _ in 0..spec.turns_per_session.max(1) {
            let user = spec.user_tokens.sample(&mut self.rng);
            let output = spec.output_tokens.sample(&mut self.rng);
            transcript += user;
            self.pending.push(std::cmp::Reverse(PendingTurn {
                gen_seq: self.gen_seq,
                request: Request {
                    id: 0, // assigned in emission (arrival) order
                    arrival_s: arrival,
                    prompt_tokens: transcript,
                    output_tokens: output.max(1),
                    stream,
                    qos: QosClass::Interactive,
                    adapter: AdapterId::BASE,
                },
            }));
            self.gen_seq += 1;
            transcript += output;
            arrival += exponential_gap(self.rng.gen(), think_rate) + output as f64 * 0.06;
        }
    }
}

impl Iterator for SharedPrefixChatStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        loop {
            let exhausted = self.next_session >= self.spec.sessions;
            if let Some(std::cmp::Reverse(head)) = self.pending.peek() {
                // Safe to emit once no ungenerated session can precede it:
                // future sessions start at or after the latest start, and
                // a co-timed future turn loses the gen_seq tie-break.
                if exhausted || head.request.arrival_s <= self.session_start {
                    let std::cmp::Reverse(turn) = self.pending.pop().expect("peeked");
                    let mut request = turn.request;
                    request.id = self.emitted;
                    self.emitted += 1;
                    return Some(request);
                }
            } else if exhausted {
                return None;
            }
            self.generate_next_session();
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.spec.requests() - self.emitted;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SharedPrefixChatStream {}

/// A cold-session chat workload: conversations open with a burst of
/// `first_turns` closely spaced turns, go idle for a long `idle_s` gap
/// (the user walks away), then come back for `return_turns` more turns
/// that still carry the whole transcript as their prompt.
///
/// This is the workload the KV tier hierarchy ([`crate::KvTierModel`])
/// exists for: during the idle gap the session's blocks go cold and get
/// evicted from HBM, so the returning turn either re-prefills its entire
/// accumulated context (recompute) or promotes the demoted blocks back
/// from DDR/disk at transfer cost — the swap-vs-recompute comparison
/// `bench_disagg` prices.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ColdSessionSpec {
    /// Session (conversation) arrival rate, sessions per second.
    pub rate_per_sec: f64,
    /// Number of conversations.
    pub sessions: usize,
    /// Turns in the opening burst (≥ 1).
    pub first_turns: usize,
    /// Turns after the idle gap (may be 0 for fire-and-forget sessions).
    pub return_turns: usize,
    /// System-prompt tokens shared by every session.
    pub system_prompt_tokens: usize,
    /// Length of each turn's fresh user message.
    pub user_tokens: LengthDistribution,
    /// Length of each turn's generated reply.
    pub output_tokens: LengthDistribution,
    /// Mean think time between turns inside a burst (exponential).
    pub think_time_s: f64,
    /// Mean idle gap between the opening burst and the return (an
    /// exponential draw, so returns don't arrive in lockstep). Must be
    /// much larger than `think_time_s` for the sessions to actually go
    /// cold.
    pub idle_s: f64,
    /// RNG seed: the same spec always generates the same trace.
    pub seed: u64,
}

impl ColdSessionSpec {
    /// A cold-return fleet: sessions open with two turns over a 256-token
    /// system prompt, accumulate a substantial transcript, go idle for
    /// ~5 simulated minutes, then return for two more turns.
    #[must_use]
    pub fn fleet(rate_per_sec: f64, sessions: usize, seed: u64) -> Self {
        ColdSessionSpec {
            rate_per_sec,
            sessions,
            first_turns: 2,
            return_turns: 2,
            system_prompt_tokens: 256,
            user_tokens: LengthDistribution::Uniform { min: 64, max: 192 },
            output_tokens: LengthDistribution::Uniform { min: 48, max: 160 },
            think_time_s: 10.0,
            idle_s: 300.0,
            seed,
        }
    }

    /// The same sessions offered at a different rate (the capacity-search
    /// knob).
    #[must_use]
    pub fn with_rate(self, rate_per_sec: f64) -> Self {
        ColdSessionSpec {
            rate_per_sec,
            ..self
        }
    }

    /// Requests the generated trace will contain.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.sessions * (self.first_turns.max(1) + self.return_turns)
    }

    /// Generates the replayable trace, or a clear error for a spec that
    /// could never generate one.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidRate`] for a zero/negative/non-finite
    /// session rate; [`WorkloadError::EmptySpec`] when `sessions` is zero.
    pub fn try_generate(&self) -> Result<RequestTrace, WorkloadError> {
        ArrivalProcess::Poisson {
            rate_per_sec: self.rate_per_sec,
        }
        .validated()?;
        if self.sessions == 0 {
            return Err(WorkloadError::EmptySpec(
                "a cold-session spec needs at least one session",
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut requests = Vec::with_capacity(self.requests());
        let mut session_start = 0.0f64;
        let think_rate = 1.0 / self.think_time_s.max(1e-6);
        let idle_rate = 1.0 / self.idle_s.max(1e-6);
        for session in 0..self.sessions {
            session_start += exponential_gap(rng.gen(), self.rate_per_sec);
            let stream = TokenStream::session(
                splitmix64(self.seed ^ splitmix64(session as u64)),
                self.system_prompt_tokens,
            );
            let mut transcript = self.system_prompt_tokens;
            let mut arrival = session_start;
            let turns = self.first_turns.max(1) + self.return_turns;
            for turn in 0..turns {
                if turn == self.first_turns.max(1) {
                    // The user walks away; the session's KV goes cold.
                    arrival += exponential_gap(rng.gen(), idle_rate) + self.idle_s;
                }
                let user = self.user_tokens.sample(&mut rng);
                let output = self.output_tokens.sample(&mut rng);
                transcript += user;
                requests.push(Request {
                    id: 0, // assigned in arrival order below
                    arrival_s: arrival,
                    prompt_tokens: transcript,
                    output_tokens: output,
                    stream,
                    qos: QosClass::Interactive,
                    adapter: AdapterId::BASE,
                });
                transcript += output;
                arrival += exponential_gap(rng.gen(), think_rate) + output as f64 * 0.06;
            }
        }
        let mut trace = RequestTrace::new(requests);
        for (index, request) in trace.requests.iter_mut().enumerate() {
            request.id = index;
        }
        Ok(trace)
    }

    /// Generates the replayable trace this spec describes.
    ///
    /// # Panics
    ///
    /// Panics where [`ColdSessionSpec::try_generate`] errors.
    #[must_use]
    pub fn generate(&self) -> RequestTrace {
        match self.try_generate() {
            Ok(trace) => trace,
            Err(error) => panic!("{error}"),
        }
    }
}

/// A mixed long-document + interactive-chat workload: two independent
/// Poisson streams share one server. Chat requests are short-prompt,
/// decode-heavy, and latency-sensitive; document requests carry
/// multi-thousand-token prompts whose monolithic prefill waves stall every
/// co-resident chat decode — the head-of-line interference chunked prefill
/// ([`crate::ServingConfig::with_chunked_prefill`]) exists to bound, and
/// the traffic the `bench_chunked` experiment measures p99 chat TPOT
/// under.
///
/// Document prompts are strictly longer than the longest chat prompt, so
/// [`DocChatMixSpec::is_document`] can classify a generated request from
/// its prompt length alone (the merged trace re-ids requests in arrival
/// order, so provenance is not recoverable from the id).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DocChatMixSpec {
    /// Chat arrival rate, requests per second.
    pub chat_rate_per_sec: f64,
    /// Document arrival rate, requests per second.
    pub doc_rate_per_sec: f64,
    /// Number of chat requests.
    pub chat_requests: usize,
    /// Number of document requests.
    pub doc_requests: usize,
    /// Chat prompt lengths. Must stay strictly below every document
    /// prompt for [`DocChatMixSpec::is_document`] to classify correctly.
    pub chat_prompt_tokens: LengthDistribution,
    /// Chat reply lengths (decode-heavy).
    pub chat_output_tokens: LengthDistribution,
    /// Document prompt lengths (prefill-heavy).
    pub doc_prompt_tokens: LengthDistribution,
    /// Document output lengths (short summaries).
    pub doc_output_tokens: LengthDistribution,
    /// RNG seed: the same spec always generates the same trace.
    pub seed: u64,
}

impl DocChatMixSpec {
    /// The headline mix: latency-sensitive chat at `chat_rate_per_sec`
    /// with one 4k–12k-token document ingestion for every ~8 chats riding
    /// the same server.
    #[must_use]
    pub fn fleet(chat_rate_per_sec: f64, chat_requests: usize, seed: u64) -> Self {
        DocChatMixSpec {
            chat_rate_per_sec,
            doc_rate_per_sec: chat_rate_per_sec / 8.0,
            chat_requests,
            doc_requests: (chat_requests / 8).max(1),
            chat_prompt_tokens: LengthDistribution::Uniform { min: 32, max: 256 },
            chat_output_tokens: LengthDistribution::Uniform { min: 64, max: 224 },
            doc_prompt_tokens: LengthDistribution::Uniform {
                min: 4_096,
                max: 12_288,
            },
            doc_output_tokens: LengthDistribution::Uniform { min: 16, max: 64 },
            seed,
        }
    }

    /// The same mix offered at a different chat rate, document traffic
    /// scaled proportionally (the capacity-search knob).
    #[must_use]
    pub fn with_rate(self, chat_rate_per_sec: f64) -> Self {
        let scale = chat_rate_per_sec / self.chat_rate_per_sec;
        DocChatMixSpec {
            chat_rate_per_sec,
            doc_rate_per_sec: self.doc_rate_per_sec * scale,
            ..self
        }
    }

    /// Requests the generated trace will contain.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.chat_requests + self.doc_requests
    }

    /// Whether a generated request is a document ingestion (as opposed to
    /// a chat turn), judged by prompt length.
    #[must_use]
    pub fn is_document(&self, request: &Request) -> bool {
        request.prompt_tokens > self.chat_prompt_tokens.max_len()
    }

    /// Generates the replayable trace: both Poisson streams drawn from
    /// seeded RNGs, merged in arrival order with ids reassigned — or a
    /// clear error for a spec that could never generate one.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidRate`] when a lane with requests has a
    /// zero/negative/non-finite rate; [`WorkloadError::EmptySpec`] when
    /// both lanes are empty.
    ///
    /// # Panics
    ///
    /// Panics if the longest chat prompt reaches the shortest possible
    /// document prompt (which would break classification).
    pub fn try_generate(&self) -> Result<RequestTrace, WorkloadError> {
        let doc_floor = match self.doc_prompt_tokens {
            LengthDistribution::Fixed(len) => len,
            LengthDistribution::Uniform { min, .. } => min,
            LengthDistribution::Bimodal { short, long, .. } => short.min(long),
        };
        assert!(
            self.chat_prompt_tokens.max_len() < doc_floor,
            "chat prompts must stay strictly shorter than document prompts"
        );
        if self.requests() == 0 {
            return Err(WorkloadError::EmptySpec(
                "a doc/chat mix needs at least one request in some lane",
            ));
        }
        let mut requests = Vec::with_capacity(self.requests());
        let mut lane = |count: usize,
                        rate: f64,
                        prompts: LengthDistribution,
                        outputs: LengthDistribution,
                        salt: u64|
         -> Result<(), WorkloadError> {
            if count == 0 {
                return Ok(());
            }
            ArrivalProcess::Poisson { rate_per_sec: rate }.validated()?;
            let mut rng = StdRng::seed_from_u64(splitmix64(self.seed ^ salt));
            let mut t = 0.0f64;
            for _ in 0..count {
                t += exponential_gap(rng.gen(), rate);
                requests.push(Request {
                    id: 0, // assigned in arrival order below
                    arrival_s: t,
                    prompt_tokens: prompts.sample(&mut rng),
                    output_tokens: outputs.sample(&mut rng),
                    stream: TokenStream::unique(0),
                    qos: QosClass::Interactive,
                    adapter: AdapterId::BASE,
                });
            }
            Ok(())
        };
        lane(
            self.chat_requests,
            self.chat_rate_per_sec,
            self.chat_prompt_tokens,
            self.chat_output_tokens,
            0x5EED_C4A7,
        )?;
        lane(
            self.doc_requests,
            self.doc_rate_per_sec,
            self.doc_prompt_tokens,
            self.doc_output_tokens,
            0xD0C_F00D,
        )?;
        let mut trace = RequestTrace::new(requests);
        for (index, request) in trace.requests.iter_mut().enumerate() {
            request.id = index;
            request.stream = TokenStream::unique(index);
        }
        Ok(trace)
    }

    /// Generates the replayable trace this spec describes.
    ///
    /// # Panics
    ///
    /// Panics where [`DocChatMixSpec::try_generate`] errors, and on a
    /// chat/document prompt-length overlap.
    #[must_use]
    pub fn generate(&self) -> RequestTrace {
        match self.try_generate() {
            Ok(trace) => trace,
            Err(error) => panic!("{error}"),
        }
    }
}

/// An ordered, replayable list of requests. Traces can come from
/// [`WorkloadSpec::generate`] or be constructed directly (e.g. replayed from
/// a serialized production log).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct RequestTrace {
    requests: Vec<Request>,
}

impl RequestTrace {
    /// Builds a trace from explicit requests, sorting by arrival time
    /// (ties keep their relative order, so replays are stable) and
    /// enforcing the [`Request::output_tokens`] ≥ 1 invariant — a replayed
    /// log entry with a zero-length output is served as a single-token
    /// (prefill-only) request rather than wedging the scheduler.
    #[must_use]
    pub fn new(mut requests: Vec<Request>) -> Self {
        for request in &mut requests {
            request.output_tokens = request.output_tokens.max(1);
        }
        requests.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        RequestTrace { requests }
    }

    /// The requests in arrival order.
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Mutable access for in-crate generators that re-id requests after
    /// the arrival sort. Crate-private: external mutation could break the
    /// sorted-by-arrival invariant.
    pub(crate) fn requests_mut(&mut self) -> &mut [Request] {
        &mut self.requests
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Time of the last arrival (0 for an empty trace).
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.requests.last().map_or(0.0, |r| r.arrival_s)
    }

    /// Realized offered load in requests per second.
    #[must_use]
    pub fn offered_rate(&self) -> f64 {
        if self.duration_s() == 0.0 {
            0.0
        } else {
            self.len() as f64 / self.duration_s()
        }
    }

    /// Total output tokens the trace asks for.
    #[must_use]
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output_tokens as u64).sum()
    }

    /// Splits the trace round-robin across `replicas` servers (the
    /// front-end load balancer of a multi-replica fleet). Arrival times are
    /// preserved; every request lands on exactly one replica.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn split_round_robin(&self, replicas: usize) -> Vec<RequestTrace> {
        assert!(replicas > 0, "a fleet has at least one replica");
        let mut shards = vec![Vec::new(); replicas];
        for (i, request) in self.requests.iter().enumerate() {
            shards[i % replicas].push(*request);
        }
        shards
            .into_iter()
            .map(|requests| RequestTrace { requests })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let spec = WorkloadSpec::chat(4.0, 200, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a
            .requests()
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.requests().iter().all(|r| r.output_tokens >= 1));
        let other_seed = WorkloadSpec::chat(4.0, 200, 43).generate();
        assert_ne!(a, other_seed);
    }

    /// Regression: a unit draw of exactly 1.0 used to hit `ln(0) = -inf`,
    /// producing an infinite inter-arrival gap (and NaN timestamps after
    /// it). The clamp keeps the transform finite over the whole closed
    /// unit interval.
    #[test]
    fn exponential_gap_is_finite_over_the_closed_unit_interval() {
        for rate in [1e-6, 1.0, 1e6] {
            for unit in [0.0, 0.5, 1.0 - f64::EPSILON, 1.0] {
                let gap = exponential_gap(unit, rate);
                assert!(gap.is_finite() && gap >= 0.0, "gap({unit}, {rate}) = {gap}");
            }
        }
        assert_eq!(exponential_gap(0.0, 4.0), 0.0);
        // The endpoint is clamped, not special-cased: it matches the
        // largest representable sub-1.0 draw.
        assert_eq!(
            exponential_gap(1.0, 4.0),
            exponential_gap(1.0 - f64::EPSILON, 4.0)
        );
        // Even a NaN draw (a corrupted replayed unit stream) resolves to a
        // finite gap instead of poisoning every later timestamp.
        let nan_gap = exponential_gap(f64::NAN, 4.0);
        assert!(nan_gap.is_finite() && nan_gap >= 0.0, "gap {nan_gap}");
    }

    /// Regression (spec validation): a zero/negative/non-finite rate used
    /// to panic deep inside generation — or, for a zero Poisson rate, spin
    /// `next_arrival` forever chasing an infinite boundary. Every spec now
    /// rejects such parameters (and zero-session shapes) up front with a
    /// clear `Err`, at any seed.
    #[test]
    fn invalid_specs_error_instead_of_hanging() {
        for seed in [0, 1, u64::MAX, u64::MAX - 1, 0x8000_0000_0000_0000] {
            for rate in [0.0, -3.0, f64::NAN, f64::INFINITY] {
                assert!(matches!(
                    WorkloadSpec::chat(rate, 10, seed).try_generate(),
                    Err(WorkloadError::InvalidRate(_))
                ));
                assert!(matches!(
                    SharedPrefixChatSpec::fleet(rate, 4, seed).try_generate(),
                    Err(WorkloadError::InvalidRate(_))
                ));
                assert!(matches!(
                    ColdSessionSpec::fleet(rate, 4, seed).try_generate(),
                    Err(WorkloadError::InvalidRate(_))
                ));
                assert!(matches!(
                    DocChatMixSpec::fleet(rate, 16, seed).try_generate(),
                    Err(WorkloadError::InvalidRate(_))
                ));
            }
            assert!(matches!(
                WorkloadSpec::chat(4.0, 0, seed).try_generate(),
                Err(WorkloadError::EmptySpec(_))
            ));
            assert!(matches!(
                SharedPrefixChatSpec::fleet(4.0, 0, seed).try_generate(),
                Err(WorkloadError::EmptySpec(_))
            ));
            assert!(matches!(
                ColdSessionSpec::fleet(4.0, 0, seed).try_generate(),
                Err(WorkloadError::EmptySpec(_))
            ));
        }
        // Bursty shapes that could never tick over are rejected too.
        let bad_burst = WorkloadSpec {
            arrivals: ArrivalProcess::Bursty {
                base_rate: 0.0,
                burst_rate: 5.0,
                burst_secs: 20.0,
                period_secs: 20.0,
            },
            ..WorkloadSpec::chat(4.0, 10, 1)
        };
        assert!(matches!(
            bad_burst.try_generate(),
            Err(WorkloadError::InvalidRate(_))
        ));
        let error = WorkloadSpec::chat(0.0, 10, 1).try_generate().unwrap_err();
        assert!(error.to_string().contains("Poisson rate"), "{error}");
        // Valid specs still generate through the fallible path.
        assert_eq!(
            WorkloadSpec::chat(4.0, 10, 1).try_generate().unwrap(),
            WorkloadSpec::chat(4.0, 10, 1).generate()
        );
    }

    #[test]
    fn poisson_rate_is_roughly_honored() {
        let trace = WorkloadSpec::chat(8.0, 2000, 7).generate();
        let rate = trace.offered_rate();
        assert!((6.5..9.5).contains(&rate), "offered rate {rate:.2}");
    }

    #[test]
    fn bursty_arrivals_cluster_in_the_burst_window() {
        let spec = WorkloadSpec::bursty_chat(4.0, 800, 11);
        let trace = spec.generate();
        let ArrivalProcess::Bursty {
            burst_secs,
            period_secs,
            ..
        } = spec.arrivals
        else {
            panic!("bursty spec");
        };
        let in_burst = trace
            .requests()
            .iter()
            .filter(|r| (r.arrival_s % period_secs) < burst_secs)
            .count();
        // base_rate = 0: every arrival must fall inside a burst window.
        assert_eq!(in_burst, trace.len());
        // Mean rate matches the homogeneous equivalent.
        let mean = spec.arrivals.mean_rate();
        assert!((mean - 4.0).abs() < 1e-12);
        let realized = trace.offered_rate();
        assert!((3.0..5.5).contains(&realized), "realized {realized:.2}");
    }

    #[test]
    fn length_distributions_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let uniform = LengthDistribution::Uniform { min: 10, max: 20 };
        for _ in 0..200 {
            let v = uniform.sample(&mut rng);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(uniform.max_len(), 20);
        let bimodal = LengthDistribution::Bimodal {
            short: 64,
            long: 2048,
            long_fraction: 0.25,
        };
        let longs = (0..400)
            .filter(|_| bimodal.sample(&mut rng) == 2048)
            .count();
        assert!((40..170).contains(&longs), "long draws {longs}");
        assert_eq!(LengthDistribution::Fixed(0).sample(&mut rng), 1);
    }

    #[test]
    fn round_robin_split_conserves_requests() {
        let trace = WorkloadSpec::chat(4.0, 101, 5).generate();
        let shards = trace.split_round_robin(4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(RequestTrace::len).sum::<usize>(), 101);
        let mut ids: Vec<usize> = shards
            .iter()
            .flat_map(|s| s.requests().iter().map(|r| r.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn kv_reservation_covers_prompt_and_output() {
        let r = Request {
            id: 0,
            arrival_s: 0.0,
            prompt_tokens: 100,
            output_tokens: 28,
            stream: TokenStream::unique(0),
            qos: QosClass::default(),
            adapter: AdapterId::default(),
        };
        assert_eq!(r.kv_tokens_at_completion(), 128);
    }

    /// Regression: a deserialized/fuzzed trace with huge lengths used to
    /// overflow `prompt_tokens + output_tokens` in debug builds; the
    /// footprint now saturates, so such a request reads as "larger than
    /// any budget" and is rejected instead of panicking.
    #[test]
    fn kv_reservation_saturates_instead_of_overflowing() {
        let r = Request {
            id: 0,
            arrival_s: 0.0,
            prompt_tokens: usize::MAX - 10,
            output_tokens: 1_000,
            stream: TokenStream::unique(0),
            qos: QosClass::default(),
            adapter: AdapterId::default(),
        };
        assert_eq!(r.kv_tokens_at_completion(), usize::MAX);
    }

    #[test]
    fn token_streams_are_deterministic_and_share_exactly_the_right_prefixes() {
        let a = TokenStream::session(7, 4);
        let b = TokenStream::session(7, 4);
        let c = TokenStream::session(8, 4);
        assert_eq!(a.token_ids(16), b.token_ids(16));
        // Same session: identical everywhere. Different session: the
        // system prompt matches, the transcript diverges.
        assert_eq!(a.token_ids(4), c.token_ids(4));
        assert_ne!(a.token_id(4), c.token_id(4));
        // Unique streams share nothing (no system prefix).
        let u = TokenStream::unique(0);
        let v = TokenStream::unique(1);
        assert_ne!(u.token_id(0), v.token_id(0));
        assert_eq!(u.system_tokens, 0);
    }

    #[test]
    fn shared_prefix_chat_turns_extend_their_session_transcript() {
        let spec = SharedPrefixChatSpec::fleet(0.5, 6, 9);
        let trace = spec.generate();
        assert_eq!(trace.len(), spec.requests());
        let again = spec.generate();
        assert_eq!(trace, again, "deterministic");
        // Ids are arrival-ordered.
        for (index, request) in trace.requests().iter().enumerate() {
            assert_eq!(request.id, index);
        }
        // Group turns by session stream; prompts must be strictly growing
        // and each turn's prompt must extend the previous turn's
        // prompt + output by that turn's fresh user tokens.
        let mut by_session: std::collections::HashMap<u64, Vec<&Request>> =
            std::collections::HashMap::new();
        for request in trace.requests() {
            assert_eq!(request.stream.system_tokens, spec.system_prompt_tokens);
            assert!(request.prompt_tokens > spec.system_prompt_tokens);
            by_session
                .entry(request.stream.session)
                .or_default()
                .push(request);
        }
        assert_eq!(by_session.len(), 6);
        for turns in by_session.values_mut() {
            turns.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
            assert_eq!(turns.len(), spec.turns_per_session);
            for pair in turns.windows(2) {
                assert!(pair[1].arrival_s > pair[0].arrival_s);
                assert!(
                    pair[1].prompt_tokens > pair[0].prompt_tokens + pair[0].output_tokens,
                    "a follow-up carries its whole conversation prefix"
                );
            }
        }
        // Two different sessions share the system prompt's token ids.
        let sessions: Vec<u64> = by_session.keys().copied().collect();
        let s0 = TokenStream::session(sessions[0], spec.system_prompt_tokens);
        let s1 = TokenStream::session(sessions[1], spec.system_prompt_tokens);
        assert_eq!(
            s0.token_ids(spec.system_prompt_tokens),
            s1.token_ids(spec.system_prompt_tokens)
        );
    }

    /// The lazy stream must be indistinguishable from the materialized
    /// trace: same requests, same ids, same (sorted) order, bit-identical
    /// floats — including under heavy cross-session interleaving (long
    /// think times push a session's later turns far past the starts of
    /// many following sessions) and arrival ties.
    #[test]
    fn streamed_requests_match_the_materialized_trace_exactly() {
        let interleaved = SharedPrefixChatSpec {
            rate_per_sec: 50.0,
            sessions: 60,
            turns_per_session: 5,
            system_prompt_tokens: 16,
            user_tokens: LengthDistribution::Uniform { min: 1, max: 8 },
            output_tokens: LengthDistribution::Uniform { min: 1, max: 8 },
            think_time_s: 200.0,
            seed: 3,
        };
        for spec in [
            SharedPrefixChatSpec::fleet(2.0, 40, 9),
            SharedPrefixChatSpec::simspeed(300),
            interleaved,
        ] {
            let stream = spec.stream();
            assert_eq!(stream.len(), spec.requests(), "exact size hint");
            let streamed: Vec<Request> = stream.collect();
            assert_eq!(streamed.as_slice(), spec.generate().requests());
        }
    }

    #[test]
    fn cold_sessions_return_after_a_long_idle_gap_with_their_transcript() {
        let spec = ColdSessionSpec::fleet(1.0, 8, 13);
        let trace = spec.generate();
        assert_eq!(trace.len(), spec.requests());
        assert_eq!(trace, spec.generate(), "deterministic");
        for (index, request) in trace.requests().iter().enumerate() {
            assert_eq!(request.id, index, "ids are arrival-ordered");
        }
        let mut by_session: std::collections::HashMap<u64, Vec<&Request>> =
            std::collections::HashMap::new();
        for request in trace.requests() {
            by_session
                .entry(request.stream.session)
                .or_default()
                .push(request);
        }
        assert_eq!(by_session.len(), 8);
        for turns in by_session.values_mut() {
            turns.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
            assert_eq!(turns.len(), spec.first_turns + spec.return_turns);
            // Transcript keeps growing across the gap: the returning turn
            // still carries everything said before the idle.
            for pair in turns.windows(2) {
                assert!(pair[1].prompt_tokens > pair[0].prompt_tokens + pair[0].output_tokens);
            }
            // The gap between the opening burst and the return dwarfs any
            // in-burst think time.
            let gap = turns[spec.first_turns].arrival_s - turns[spec.first_turns - 1].arrival_s;
            assert!(gap >= spec.idle_s, "idle gap {gap:.1}s");
        }
    }

    #[test]
    fn simspeed_trace_is_deterministic_and_bounded() {
        let spec = SharedPrefixChatSpec::simspeed(200);
        assert_eq!(spec.requests(), 400, "two turns per session");
        let trace = spec.generate();
        assert_eq!(trace.len(), 400);
        assert_eq!(trace, spec.generate(), "fixed seed: byte-identical");
        // Bounded per-request work: prompt = 128-token system prompt plus
        // at most two turns of (user ≤ 48) + (reply ≤ 48) transcript.
        for request in trace.requests() {
            assert!(request.prompt_tokens >= spec.system_prompt_tokens);
            assert!(request.prompt_tokens <= 128 + 2 * (48 + 48));
            assert!((16..=48).contains(&request.output_tokens));
        }
        // The offered rate is what the spec says: ~16 sessions/s of
        // arrivals, so 200 sessions span roughly 12.5 simulated seconds.
        assert!(trace.duration_s() > 5.0 && trace.duration_s() < 60.0);
    }

    #[test]
    fn doc_chat_mix_interleaves_classifiable_lanes() {
        let spec = DocChatMixSpec::fleet(4.0, 64, 19);
        assert_eq!(spec.requests(), 72, "64 chats + 8 documents");
        let trace = spec.generate();
        assert_eq!(trace.len(), 72);
        assert_eq!(trace, spec.generate(), "fixed seed: byte-identical");
        let docs = trace
            .requests()
            .iter()
            .filter(|r| spec.is_document(r))
            .count();
        assert_eq!(docs, spec.doc_requests);
        for (index, request) in trace.requests().iter().enumerate() {
            assert_eq!(request.id, index, "ids follow arrival order");
            if spec.is_document(request) {
                assert!((4_096..=12_288).contains(&request.prompt_tokens));
            } else {
                assert!((32..=256).contains(&request.prompt_tokens));
            }
        }
        // Scaling the rate keeps the mix ratio.
        let faster = spec.with_rate(8.0);
        assert!((faster.doc_rate_per_sec - 1.0).abs() < 1e-12);
        assert!(faster.generate().duration_s() < trace.duration_s());
    }
}
