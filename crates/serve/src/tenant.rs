//! Multi-tenant serving: QoS classes with priority admission, the
//! fairness/starvation accounting behind it, and the tenant-shaped
//! workloads (RAG document fleets, agentic tool loops, mixed
//! interactive/batch LoRA traffic).
//!
//! Serving millions of users means heterogeneous traffic, not one chat
//! spec. This module makes requests first-class tenants:
//!
//! * [`QosClass`] labels every [`Request`] Interactive or Batch; both
//!   schedulers admit through the shared [`QosAdmission`] policy —
//!   Interactive first, with an aging rule that force-admits the oldest
//!   waiting Batch request after [`crate::ServingConfig::qos_aging`]
//!   consecutive bypasses, so Batch is delayed but never starved. The
//!   counters land in [`QosStats`] on [`crate::ServingReport`].
//! * [`RagSpec`] generates retrieval traffic: many sessions asking
//!   questions over a handful of large shared documents — the workload
//!   that drives the radix prefix cache far past one system prompt.
//! * [`AgentLoopSpec`] generates tool-call loops: short decodes
//!   interleaved with re-prefills of a transcript that grows by every
//!   tool result — the incremental-prefix pattern where cached re-prefill
//!   beats recompute.
//! * [`MultiTenantSpec`] merges an Interactive LoRA-chat lane with a Batch
//!   long-job lane over many tenants' adapters — the headline trace of
//!   the `bench_multitenant` experiment.
//!
//! A trace whose requests all carry the default class (and the default
//! [`AdapterId::BASE`]) admits in exact FIFO order: [`QosAdmission::pick`]
//! degenerates to "take the queue head", so single-class runs are
//! bit-identical to their pre-tenant behavior.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::lora::AdapterId;
use crate::workload::{
    exponential_gap, splitmix64, ArrivalProcess, LengthDistribution, Request, RequestTrace,
    TokenStream, WorkloadError,
};

/// The service class of one request: which SLO it is sold under, and how
/// admission prioritizes it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum QosClass {
    /// Latency-sensitive traffic (chat, RAG answers): admitted first. The
    /// `Default`, so unlabeled traces behave exactly as before.
    #[default]
    Interactive,
    /// Throughput traffic (offline jobs, evals): admitted when no
    /// Interactive request waits, plus the aging guarantee.
    Batch,
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QosClass::Interactive => write!(f, "interactive"),
            QosClass::Batch => write!(f, "batch"),
        }
    }
}

/// Per-class admission and fairness counters of one serving run, reported
/// in [`crate::ServingReport`]. Every field is an exact count, computed
/// identically by the event cores and the reference loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct QosStats {
    /// Interactive requests admitted.
    pub interactive_admitted: usize,
    /// Batch requests admitted.
    pub batch_admitted: usize,
    /// Interactive requests rejected (footprint over budget).
    pub interactive_rejected: usize,
    /// Batch requests rejected.
    pub batch_rejected: usize,
    /// Interactive admissions that jumped past an earlier-queued Batch
    /// request (the priority in action).
    pub interactive_bypasses: usize,
    /// Batch admissions forced by the aging rule after a full run of
    /// consecutive bypasses.
    pub aging_promotions: usize,
    /// Longest run of consecutive bypasses endured by a waiting Batch
    /// request — the starvation bound. Never exceeds the configured
    /// [`crate::ServingConfig::qos_aging`] threshold.
    pub peak_interactive_run: usize,
}

impl QosStats {
    /// Admissions across both classes.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.interactive_admitted + self.batch_admitted
    }
}

/// One admission candidate chosen by [`QosAdmission::pick`]: where it sits
/// in the queue and why it was chosen (plain FIFO, a priority bypass, or
/// an aging promotion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosPick {
    /// Position of the candidate in the scheduler's wait queue.
    pub position: usize,
    /// The candidate is a Batch request force-admitted by the aging rule.
    pub aged: bool,
    /// The candidate is an Interactive request jumping past an
    /// earlier-queued Batch request.
    pub bypassed: bool,
}

/// The deterministic QoS admission policy, shared verbatim by
/// [`crate::scheduler`]'s event cores and the test-only reference loops so
/// their reports stay bit-identical.
///
/// Selection rule, applied per admission attempt:
///
/// 1. No Interactive request waiting → the queue's front-most Batch
///    request (plain FIFO).
/// 2. Interactive waiting, and fewer than `aging` consecutive bypasses
///    have accumulated → the front-most Interactive request. If an
///    earlier-queued Batch request waits, that admission counts as a
///    bypass.
/// 3. Interactive waiting, but the bypass run has reached `aging` → the
///    front-most Batch request (an aging promotion), resetting the run.
///
/// A single-class queue always selects position 0, so the policy is
/// invisible on unlabeled traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QosAdmission {
    consecutive_bypasses: usize,
    stats: QosStats,
}

impl QosAdmission {
    /// A fresh policy with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        QosAdmission::default()
    }

    /// Chooses the next admission candidate from the queued classes (in
    /// queue order). Pure: counters move only when the caller commits the
    /// admission via [`QosAdmission::record_admit`] — a candidate that
    /// stalls on the KV budget must not advance the aging clock.
    pub fn pick<I: Iterator<Item = QosClass>>(&self, classes: I, aging: usize) -> Option<QosPick> {
        let aged_due = self.consecutive_bypasses >= aging.max(1);
        let mut first_interactive = None;
        let mut first_batch = None;
        for (position, class) in classes.enumerate() {
            match class {
                QosClass::Interactive if first_interactive.is_none() => {
                    first_interactive = Some(position);
                    // No earlier-queued Batch and the aging clock idle:
                    // nothing later in the queue can change the outcome
                    // (a later Batch is neither bypassed nor promotable),
                    // so stop scanning. This keeps single-class queues
                    // O(1) per pick — the pre-tenant front-of-queue cost —
                    // instead of O(queue).
                    if first_batch.is_none() && !aged_due {
                        break;
                    }
                }
                QosClass::Batch if first_batch.is_none() => first_batch = Some(position),
                _ => {}
            }
            if first_interactive.is_some() && first_batch.is_some() {
                break;
            }
        }
        match (first_interactive, first_batch) {
            (None, None) => None,
            (Some(position), None) | (None, Some(position)) => Some(QosPick {
                position,
                aged: false,
                bypassed: false,
            }),
            (Some(interactive), Some(batch)) => {
                if aged_due {
                    Some(QosPick {
                        position: batch,
                        aged: true,
                        bypassed: false,
                    })
                } else {
                    Some(QosPick {
                        position: interactive,
                        aged: false,
                        // Only jumping past an *earlier-queued* Batch
                        // request is a bypass; admitting ahead of one that
                        // arrived later is plain FIFO.
                        bypassed: batch < interactive,
                    })
                }
            }
        }
    }

    /// Commits the admission of a picked candidate, updating the per-class
    /// counters and the aging clock.
    pub fn record_admit(&mut self, class: QosClass, pick: QosPick) {
        match class {
            QosClass::Interactive => {
                self.stats.interactive_admitted += 1;
                if pick.bypassed {
                    self.consecutive_bypasses += 1;
                    self.stats.interactive_bypasses += 1;
                    self.stats.peak_interactive_run = self
                        .stats
                        .peak_interactive_run
                        .max(self.consecutive_bypasses);
                }
            }
            QosClass::Batch => {
                self.stats.batch_admitted += 1;
                if pick.aged {
                    self.stats.aging_promotions += 1;
                }
                self.consecutive_bypasses = 0;
            }
        }
    }

    /// Records the rejection of a picked candidate (footprint over budget).
    /// Rejections do not advance the aging clock.
    pub fn record_reject(&mut self, class: QosClass) {
        match class {
            QosClass::Interactive => self.stats.interactive_rejected += 1,
            QosClass::Batch => self.stats.batch_rejected += 1,
        }
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> QosStats {
        self.stats
    }
}

/// Salt deriving per-document token streams in [`RagSpec`].
const DOCUMENT_SALT: u64 = 0x5241_475f_444f_4331; // "RAG_DOC1"

/// Salt deriving per-session agent streams in [`AgentLoopSpec`].
const AGENT_SALT: u64 = 0x4147_454e_545f_4c50; // "AGENT_LP"

/// Salts separating the two lanes of [`MultiTenantSpec`].
const INTERACTIVE_LANE_SALT: u64 = 0x7e4a_17;
const BATCH_LANE_SALT: u64 = 0xba7c_4;

/// A retrieval-augmented-generation workload: `documents` large shared
/// documents, each queried by many independent sessions. Every request's
/// prompt is one whole document plus a short fresh question, so sessions
/// of the same document share a multi-thousand-token token-id prefix —
/// the traffic that pushes the radix prefix cache far past one system
/// prompt (many deep branches, one per document), while a reserve-up-front
/// scheduler re-prefills the document every single time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RagSpec {
    /// Aggregate question arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Distinct documents in the corpus.
    pub documents: usize,
    /// Question sessions per document.
    pub sessions_per_document: usize,
    /// Tokens of each document (the shared prefix).
    pub document_tokens: usize,
    /// Length of each fresh question appended to its document.
    pub question_tokens: LengthDistribution,
    /// Length of each generated answer.
    pub output_tokens: LengthDistribution,
    /// Service class of the questions.
    pub qos: QosClass,
    /// RNG seed: the same spec always generates the same trace.
    pub seed: u64,
}

impl RagSpec {
    /// A RAG fleet: 4096-token documents, eight sessions per document,
    /// short questions, mid-length grounded answers, Interactive class.
    #[must_use]
    pub fn fleet(rate_per_sec: f64, documents: usize, seed: u64) -> Self {
        RagSpec {
            rate_per_sec,
            documents,
            sessions_per_document: 8,
            document_tokens: 4_096,
            question_tokens: LengthDistribution::Uniform { min: 16, max: 64 },
            output_tokens: LengthDistribution::Uniform { min: 32, max: 128 },
            qos: QosClass::Interactive,
            seed,
        }
    }

    /// The same corpus queried at a different rate (the capacity knob).
    #[must_use]
    pub fn with_rate(self, rate_per_sec: f64) -> Self {
        RagSpec {
            rate_per_sec,
            ..self
        }
    }

    /// Requests the generated trace will contain.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.documents * self.sessions_per_document
    }

    /// Generates the replayable trace, or a clear error for a spec that
    /// could never generate one (non-positive rate, empty corpus).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidRate`] for a zero/negative/non-finite rate;
    /// [`WorkloadError::EmptySpec`] when `documents` or
    /// `sessions_per_document` is zero.
    pub fn try_generate(&self) -> Result<RequestTrace, WorkloadError> {
        ArrivalProcess::Poisson {
            rate_per_sec: self.rate_per_sec,
        }
        .validated()?;
        if self.documents == 0 || self.sessions_per_document == 0 {
            return Err(WorkloadError::EmptySpec(
                "a RAG spec needs at least one document and one session per document",
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut requests = Vec::with_capacity(self.requests());
        let mut t = 0.0f64;
        for session in 0..self.requests() {
            // Round-robin over the corpus: consecutive arrivals hit
            // different documents, so the radix tree's branches interleave
            // instead of warming one document at a time.
            let document = session % self.documents;
            t += exponential_gap(rng.gen(), self.rate_per_sec);
            let question = self.question_tokens.sample(&mut rng);
            let output = self.output_tokens.sample(&mut rng);
            requests.push(Request {
                id: 0, // assigned in arrival order below
                arrival_s: t,
                prompt_tokens: self.document_tokens + question,
                output_tokens: output,
                stream: TokenStream::document(
                    splitmix64(self.seed ^ DOCUMENT_SALT ^ splitmix64(document as u64)),
                    splitmix64(self.seed ^ splitmix64(session as u64)),
                    self.document_tokens,
                ),
                qos: self.qos,
                adapter: AdapterId::BASE,
            });
        }
        let mut trace = RequestTrace::new(requests);
        for (index, request) in trace.requests_mut().iter_mut().enumerate() {
            request.id = index;
        }
        Ok(trace)
    }

    /// Generates the replayable trace this spec describes.
    ///
    /// # Panics
    ///
    /// Panics where [`RagSpec::try_generate`] errors.
    #[must_use]
    pub fn generate(&self) -> RequestTrace {
        match self.try_generate() {
            Ok(trace) => trace,
            Err(error) => panic!("{error}"),
        }
    }
}

/// An agentic tool-loop workload: every session is an agent alternating
/// short decodes (tool calls) with re-prefills of a transcript that grows
/// by each call's output *and* its tool result. All sessions share a
/// `system_tokens` scaffold prompt; within a session, iteration `k+1`'s
/// prompt extends iteration `k`'s prompt + output + tool result in the
/// session's [`TokenStream`], so a radix-cached server re-prefills only
/// the fresh suffix while a reserve-up-front server replays the whole
/// transcript every hop.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AgentLoopSpec {
    /// Session (agent run) arrival rate, sessions per second.
    pub rate_per_sec: f64,
    /// Number of agent runs.
    pub sessions: usize,
    /// Tool calls per run; each run ends with one final answer on top.
    pub tool_calls: usize,
    /// Scaffold-prompt tokens shared by every run.
    pub system_tokens: usize,
    /// Length of each run's initial task description.
    pub task_tokens: LengthDistribution,
    /// Length of each tool's returned result (appended to the transcript).
    pub tool_result_tokens: LengthDistribution,
    /// Length of each emitted tool call (a short decode).
    pub tool_call_tokens: LengthDistribution,
    /// Length of the final answer.
    pub final_tokens: LengthDistribution,
    /// Mean tool execution latency between a call and the follow-up
    /// request (an exponential gap).
    pub tool_latency_s: f64,
    /// Service class of the runs.
    pub qos: QosClass,
    /// RNG seed: the same spec always generates the same trace.
    pub seed: u64,
}

impl AgentLoopSpec {
    /// An agent fleet: three tool calls per run over a 256-token scaffold,
    /// short calls, mid-length results, ~1.5 s tools.
    #[must_use]
    pub fn fleet(rate_per_sec: f64, sessions: usize, seed: u64) -> Self {
        AgentLoopSpec {
            rate_per_sec,
            sessions,
            tool_calls: 3,
            system_tokens: 256,
            task_tokens: LengthDistribution::Uniform { min: 32, max: 128 },
            tool_result_tokens: LengthDistribution::Uniform { min: 64, max: 256 },
            tool_call_tokens: LengthDistribution::Uniform { min: 8, max: 24 },
            final_tokens: LengthDistribution::Uniform { min: 64, max: 192 },
            tool_latency_s: 1.5,
            qos: QosClass::Interactive,
            seed,
        }
    }

    /// The same runs offered at a different rate (the capacity knob).
    #[must_use]
    pub fn with_rate(self, rate_per_sec: f64) -> Self {
        AgentLoopSpec {
            rate_per_sec,
            ..self
        }
    }

    /// Requests the generated trace will contain (`tool_calls` hops plus
    /// the final answer, per session).
    #[must_use]
    pub fn requests(&self) -> usize {
        self.sessions * (self.tool_calls + 1)
    }

    /// Generates the replayable trace, or a clear error for a spec that
    /// could never generate one.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidRate`] for a zero/negative/non-finite rate;
    /// [`WorkloadError::EmptySpec`] when `sessions` is zero.
    pub fn try_generate(&self) -> Result<RequestTrace, WorkloadError> {
        ArrivalProcess::Poisson {
            rate_per_sec: self.rate_per_sec,
        }
        .validated()?;
        if self.sessions == 0 {
            return Err(WorkloadError::EmptySpec(
                "an agent-loop spec needs at least one session",
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut requests = Vec::with_capacity(self.requests());
        let mut session_start = 0.0f64;
        let tool_rate = 1.0 / self.tool_latency_s.max(1e-6);
        for session in 0..self.sessions {
            session_start += exponential_gap(rng.gen(), self.rate_per_sec);
            let stream = TokenStream::session(
                splitmix64(self.seed ^ AGENT_SALT ^ splitmix64(session as u64)),
                self.system_tokens,
            );
            let mut transcript = self.system_tokens + self.task_tokens.sample(&mut rng);
            let mut arrival = session_start;
            for hop in 0..=self.tool_calls {
                let last = hop == self.tool_calls;
                let output = if last {
                    self.final_tokens.sample(&mut rng)
                } else {
                    self.tool_call_tokens.sample(&mut rng)
                };
                requests.push(Request {
                    id: 0, // assigned in arrival order below
                    arrival_s: arrival,
                    prompt_tokens: transcript,
                    output_tokens: output,
                    stream,
                    qos: self.qos,
                    adapter: AdapterId::BASE,
                });
                transcript += output;
                if !last {
                    // The tool runs, its result joins the transcript, and
                    // the next hop re-prefills the grown prefix (a decode
                    // allowance keeps open-loop hops mostly ordered).
                    transcript += self.tool_result_tokens.sample(&mut rng);
                    arrival += exponential_gap(rng.gen(), tool_rate) + output as f64 * 0.06;
                }
            }
        }
        let mut trace = RequestTrace::new(requests);
        for (index, request) in trace.requests_mut().iter_mut().enumerate() {
            request.id = index;
        }
        Ok(trace)
    }

    /// Generates the replayable trace this spec describes.
    ///
    /// # Panics
    ///
    /// Panics where [`AgentLoopSpec::try_generate`] errors.
    #[must_use]
    pub fn generate(&self) -> RequestTrace {
        match self.try_generate() {
            Ok(trace) => trace,
            Err(error) => panic!("{error}"),
        }
    }
}

/// A mixed multi-tenant workload: an Interactive LoRA-chat lane and a
/// Batch long-job lane share one server, each request pinned to one of
/// `tenants` per-tenant adapters. The headline trace of the
/// `bench_multitenant` experiment: priority admission must hold the
/// Interactive lane's SLO under the Batch backlog without starving it,
/// while the adapter cache absorbs the tenant churn.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiTenantSpec {
    /// Interactive-lane arrival rate, requests per second.
    pub interactive_rate_per_sec: f64,
    /// Batch-lane arrival rate, requests per second.
    pub batch_rate_per_sec: f64,
    /// Number of Interactive requests.
    pub interactive_requests: usize,
    /// Number of Batch requests.
    pub batch_requests: usize,
    /// Distinct tenants (LoRA adapters) across both lanes; 0 serves
    /// everything on the base model.
    pub tenants: usize,
    /// Interactive prompt lengths (chat-shaped).
    pub interactive_prompt_tokens: LengthDistribution,
    /// Interactive reply lengths (decode-heavy).
    pub interactive_output_tokens: LengthDistribution,
    /// Batch prompt lengths (long jobs).
    pub batch_prompt_tokens: LengthDistribution,
    /// Batch output lengths.
    pub batch_output_tokens: LengthDistribution,
    /// RNG seed: the same spec always generates the same trace.
    pub seed: u64,
}

impl MultiTenantSpec {
    /// The headline mix: one Batch job for every ~4 Interactive chats,
    /// twelve tenant adapters round the traffic.
    #[must_use]
    pub fn fleet(interactive_rate_per_sec: f64, interactive_requests: usize, seed: u64) -> Self {
        MultiTenantSpec {
            interactive_rate_per_sec,
            batch_rate_per_sec: interactive_rate_per_sec / 4.0,
            interactive_requests,
            batch_requests: (interactive_requests / 4).max(1),
            tenants: 12,
            interactive_prompt_tokens: LengthDistribution::Uniform { min: 32, max: 256 },
            interactive_output_tokens: LengthDistribution::Uniform { min: 48, max: 160 },
            batch_prompt_tokens: LengthDistribution::Uniform {
                min: 512,
                max: 2_048,
            },
            batch_output_tokens: LengthDistribution::Uniform { min: 128, max: 384 },
            seed,
        }
    }

    /// The same mix offered at a different Interactive rate, Batch traffic
    /// scaled proportionally (the capacity-search knob).
    #[must_use]
    pub fn with_rate(self, interactive_rate_per_sec: f64) -> Self {
        let scale = interactive_rate_per_sec / self.interactive_rate_per_sec;
        MultiTenantSpec {
            interactive_rate_per_sec,
            batch_rate_per_sec: self.batch_rate_per_sec * scale,
            ..self
        }
    }

    /// Requests the generated trace will contain.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.interactive_requests + self.batch_requests
    }

    /// Generates the replayable trace: both Poisson lanes drawn from
    /// seeded RNGs, merged in arrival order with ids reassigned and every
    /// request pinned to its tenant's adapter.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidRate`] when a lane with requests has a
    /// zero/negative/non-finite rate; [`WorkloadError::EmptySpec`] when
    /// both lanes are empty.
    pub fn try_generate(&self) -> Result<RequestTrace, WorkloadError> {
        if self.requests() == 0 {
            return Err(WorkloadError::EmptySpec(
                "a multi-tenant spec needs at least one request in some lane",
            ));
        }
        let mut requests = Vec::with_capacity(self.requests());
        let mut lane = |count: usize,
                        rate: f64,
                        prompts: LengthDistribution,
                        outputs: LengthDistribution,
                        qos: QosClass,
                        salt: u64|
         -> Result<(), WorkloadError> {
            if count == 0 {
                return Ok(());
            }
            ArrivalProcess::Poisson { rate_per_sec: rate }.validated()?;
            let mut rng = StdRng::seed_from_u64(splitmix64(self.seed ^ salt));
            let mut t = 0.0f64;
            for _ in 0..count {
                t += exponential_gap(rng.gen(), rate);
                let prompt = prompts.sample(&mut rng);
                let output = outputs.sample(&mut rng);
                let adapter = if self.tenants == 0 {
                    AdapterId::BASE
                } else {
                    AdapterId(1 + rng.gen_range(0..self.tenants) as u32)
                };
                requests.push(Request {
                    id: 0, // assigned in arrival order below
                    arrival_s: t,
                    prompt_tokens: prompt,
                    output_tokens: output,
                    stream: TokenStream::unique(0),
                    qos,
                    adapter,
                });
            }
            Ok(())
        };
        lane(
            self.interactive_requests,
            self.interactive_rate_per_sec,
            self.interactive_prompt_tokens,
            self.interactive_output_tokens,
            QosClass::Interactive,
            INTERACTIVE_LANE_SALT,
        )?;
        lane(
            self.batch_requests,
            self.batch_rate_per_sec,
            self.batch_prompt_tokens,
            self.batch_output_tokens,
            QosClass::Batch,
            BATCH_LANE_SALT,
        )?;
        let mut trace = RequestTrace::new(requests);
        for (index, request) in trace.requests_mut().iter_mut().enumerate() {
            request.id = index;
            request.stream = TokenStream::unique(index);
        }
        Ok(trace)
    }

    /// Generates the replayable trace this spec describes.
    ///
    /// # Panics
    ///
    /// Panics where [`MultiTenantSpec::try_generate`] errors.
    #[must_use]
    pub fn generate(&self) -> RequestTrace {
        match self.try_generate() {
            Ok(trace) => trace,
            Err(error) => panic!("{error}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(spec: &[QosClass]) -> impl Iterator<Item = QosClass> + '_ {
        spec.iter().copied()
    }

    #[test]
    fn single_class_queues_pick_the_front() {
        let policy = QosAdmission::new();
        let all_interactive = [QosClass::Interactive; 3];
        let all_batch = [QosClass::Batch; 3];
        for queue in [&all_interactive[..], &all_batch[..]] {
            let pick = policy.pick(classes(queue), 8).expect("non-empty");
            assert_eq!(pick.position, 0, "FIFO on single-class queues");
            assert!(!pick.aged && !pick.bypassed);
        }
        assert_eq!(policy.pick(classes(&[]), 8), None);
    }

    #[test]
    fn interactive_jumps_waiting_batch_until_aging_promotes_it() {
        let mut policy = QosAdmission::new();
        // Batch at the front, Interactive behind: priority selects the
        // Interactive and counts a bypass — until the third attempt.
        let queue = [QosClass::Batch, QosClass::Interactive];
        for round in 0..2 {
            let pick = policy.pick(classes(&queue), 2).expect("non-empty");
            assert_eq!(pick.position, 1, "round {round}");
            assert!(pick.bypassed && !pick.aged);
            policy.record_admit(QosClass::Interactive, pick);
        }
        let promoted = policy.pick(classes(&queue), 2).expect("non-empty");
        assert_eq!(promoted.position, 0, "aging promotes the waiting Batch");
        assert!(promoted.aged && !promoted.bypassed);
        policy.record_admit(QosClass::Batch, promoted);
        let stats = policy.stats();
        assert_eq!(stats.interactive_bypasses, 2);
        assert_eq!(stats.aging_promotions, 1);
        assert_eq!(stats.peak_interactive_run, 2);
        assert_eq!(stats.admitted(), 3);
        // The clock reset: the next mixed pick is a bypass again.
        let pick = policy.pick(classes(&queue), 2).expect("non-empty");
        assert!(pick.bypassed);
    }

    #[test]
    fn fifo_order_between_classes_is_not_a_bypass() {
        let mut policy = QosAdmission::new();
        // Interactive queued *before* the Batch: admitting it is FIFO.
        let queue = [QosClass::Interactive, QosClass::Batch];
        let pick = policy.pick(classes(&queue), 1).expect("non-empty");
        assert_eq!(pick.position, 0);
        assert!(!pick.bypassed, "no earlier-queued Batch was jumped");
        policy.record_admit(QosClass::Interactive, pick);
        assert_eq!(policy.stats().interactive_bypasses, 0);
        assert_eq!(policy.stats().peak_interactive_run, 0);
    }

    #[test]
    fn rejections_count_per_class_without_advancing_the_aging_clock() {
        let mut policy = QosAdmission::new();
        policy.record_reject(QosClass::Interactive);
        policy.record_reject(QosClass::Batch);
        policy.record_reject(QosClass::Batch);
        let stats = policy.stats();
        assert_eq!(stats.interactive_rejected, 1);
        assert_eq!(stats.batch_rejected, 2);
        assert_eq!(stats.interactive_bypasses, 0);
    }

    #[test]
    fn rag_sessions_share_their_document_and_only_their_document() {
        let spec = RagSpec::fleet(4.0, 3, 17);
        let trace = spec.generate();
        assert_eq!(trace.len(), spec.requests());
        assert_eq!(trace, spec.generate(), "deterministic");
        for (index, request) in trace.requests().iter().enumerate() {
            assert_eq!(request.id, index, "ids follow arrival order");
            assert!(request.prompt_tokens > spec.document_tokens);
            assert_eq!(request.qos, QosClass::Interactive);
            assert!(request.adapter.is_base());
        }
        // Group sessions by shared document stream: every document gets
        // its sessions, and two sessions of the same document share the
        // document's token ids while different documents share none.
        let mut by_document: std::collections::HashMap<u64, Vec<&Request>> =
            std::collections::HashMap::new();
        for request in trace.requests() {
            by_document
                .entry(request.stream.shared)
                .or_default()
                .push(request);
        }
        assert_eq!(by_document.len(), spec.documents);
        let documents: Vec<&Vec<&Request>> = by_document.values().collect();
        for sessions in &documents {
            assert_eq!(sessions.len(), spec.sessions_per_document);
            let ids: Vec<Vec<u64>> = sessions
                .iter()
                .map(|r| r.stream.token_ids(spec.document_tokens))
                .collect();
            assert!(ids.windows(2).all(|w| w[0] == w[1]), "document shared");
            // Questions diverge: past the document, sessions differ.
            assert_ne!(
                sessions[0].stream.token_id(spec.document_tokens),
                sessions[1].stream.token_id(spec.document_tokens)
            );
        }
        assert_ne!(
            documents[0][0].stream.token_id(0),
            documents[1][0].stream.token_id(0),
            "different documents share nothing"
        );
    }

    #[test]
    fn agent_loops_regrow_their_transcript_every_hop() {
        let spec = AgentLoopSpec::fleet(1.0, 5, 23);
        let trace = spec.generate();
        assert_eq!(trace.len(), spec.requests());
        assert_eq!(trace, spec.generate(), "deterministic");
        let mut by_session: std::collections::HashMap<u64, Vec<&Request>> =
            std::collections::HashMap::new();
        for request in trace.requests() {
            assert_eq!(request.stream.system_tokens, spec.system_tokens);
            by_session
                .entry(request.stream.session)
                .or_default()
                .push(request);
        }
        assert_eq!(by_session.len(), 5);
        for hops in by_session.values_mut() {
            hops.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
            assert_eq!(hops.len(), spec.tool_calls + 1);
            for pair in hops.windows(2) {
                assert!(pair[1].arrival_s > pair[0].arrival_s);
                // The next hop carries the previous prompt + its output
                // *and* the tool result on top.
                assert!(
                    pair[1].prompt_tokens > pair[0].prompt_tokens + pair[0].output_tokens,
                    "transcript grows past prompt + output"
                );
            }
        }
    }

    #[test]
    fn multi_tenant_lanes_carry_their_class_and_a_tenant_adapter() {
        let spec = MultiTenantSpec::fleet(4.0, 40, 29);
        assert_eq!(spec.requests(), 50, "40 interactive + 10 batch");
        let trace = spec.generate();
        assert_eq!(trace.len(), 50);
        assert_eq!(trace, spec.generate(), "deterministic");
        let batch = trace
            .requests()
            .iter()
            .filter(|r| r.qos == QosClass::Batch)
            .count();
        assert_eq!(batch, spec.batch_requests);
        let mut tenants_seen = std::collections::HashSet::new();
        for (index, request) in trace.requests().iter().enumerate() {
            assert_eq!(request.id, index, "ids follow arrival order");
            assert!(!request.adapter.is_base(), "every request has a tenant");
            assert!((request.adapter.0 as usize) <= spec.tenants);
            tenants_seen.insert(request.adapter);
            if request.qos == QosClass::Batch {
                assert!((512..=2_048).contains(&request.prompt_tokens));
            } else {
                assert!((32..=256).contains(&request.prompt_tokens));
            }
        }
        assert!(tenants_seen.len() > 1, "the tenant mix is real");
        // Rate scaling keeps the lane ratio.
        let faster = spec.with_rate(8.0);
        assert!((faster.batch_rate_per_sec - 2.0).abs() < 1e-12);
        // Zero tenants serve the base model.
        let base_only = MultiTenantSpec { tenants: 0, ..spec };
        assert!(base_only
            .generate()
            .requests()
            .iter()
            .all(|r| r.adapter.is_base()));
    }

    #[test]
    fn invalid_tenant_specs_error_instead_of_hanging() {
        assert!(matches!(
            RagSpec::fleet(0.0, 3, 1).try_generate(),
            Err(WorkloadError::InvalidRate(_))
        ));
        assert!(matches!(
            RagSpec::fleet(2.0, 0, 1).try_generate(),
            Err(WorkloadError::EmptySpec(_))
        ));
        assert!(matches!(
            AgentLoopSpec::fleet(-1.0, 5, 1).try_generate(),
            Err(WorkloadError::InvalidRate(_))
        ));
        assert!(matches!(
            AgentLoopSpec::fleet(1.0, 0, 1).try_generate(),
            Err(WorkloadError::EmptySpec(_))
        ));
        let mut empty = MultiTenantSpec::fleet(4.0, 4, 1);
        empty.interactive_requests = 0;
        empty.batch_requests = 0;
        assert!(matches!(
            empty.try_generate(),
            Err(WorkloadError::EmptySpec(_))
        ));
        let mut bad_rate = MultiTenantSpec::fleet(4.0, 4, 1);
        bad_rate.batch_rate_per_sec = f64::NAN;
        assert!(matches!(
            bad_rate.try_generate(),
            Err(WorkloadError::InvalidRate(_))
        ));
    }
}
