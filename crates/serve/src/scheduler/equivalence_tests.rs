//! Trace-equivalence property suite: the event core vs the reference
//! step loop.
//!
//! The discrete-event refactor must not change *what* the scheduler
//! simulates, only *how fast*: on any trace, every admission decision,
//! rejection, preemption, timestamp and counter must come out identical
//! to the old step loop — the step arithmetic is replayed at schedule
//! time with the same float operations in the same order, so the
//! comparison is exact (`ServingReport: PartialEq`, no tolerances).
//!
//! The only intended divergence is the four time-weighted mean fields
//! (`mean_queue_depth`, `mean_kv_occupancy`, `mean_block_utilization`,
//! `mean_internal_fragmentation`): the event core integrates them over
//! exact inter-event intervals — idle gaps and the partial intervals an
//! arrival splits a step into — where the old loop sampled once per
//! engine step and skipped idle time entirely. [`canon`] zeroes those
//! fields on both sides; everything else must match bit for bit.

use proptest::prelude::*;

use super::reference;
use super::{SchedulerKind, ServingConfig, ServingReport, ServingSimulator, SpeculationSpec};
use crate::cost::LinearCostModel;
use crate::lora::{AdapterId, AdapterModel};
use crate::tenant::{AgentLoopSpec, MultiTenantSpec, QosClass, RagSpec};
use crate::workload::{
    ArrivalProcess, LengthDistribution, RequestTrace, SharedPrefixChatSpec, WorkloadSpec,
};

/// Zeroes the interval-vs-sample mean fields so the rest of the report
/// can be compared exactly.
fn canon(mut report: ServingReport) -> ServingReport {
    report.mean_queue_depth = 0.0;
    report.mean_kv_occupancy = 0.0;
    if let Some(paged) = &mut report.paged {
        paged.mean_block_utilization = 0.0;
        paged.mean_internal_fragmentation = 0.0;
    }
    report
}

/// Runs `trace` through both cores and asserts canonical equality.
fn assert_equivalent(config: ServingConfig, trace: &RequestTrace) {
    let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
    let event_core = sim.run(trace);
    let mut cost = LinearCostModel::default_70b();
    let reference = if config.scheduler == SchedulerKind::PagedContinuous {
        reference::run_paged_reference(&mut cost, config, trace)
    } else {
        reference::run_reference(&mut cost, config, trace)
    };
    assert_eq!(
        canon(event_core),
        canon(reference),
        "event core diverged from the reference loop ({}, prefix_sharing={})",
        config.scheduler,
        config.prefix_sharing
    );
}

/// A seeded Poisson or bursty chat workload.
fn workload(seed: u64, rate_x10: u32, requests: usize, bursty: bool) -> RequestTrace {
    let rate = f64::from(rate_x10) / 10.0;
    let arrivals = if bursty {
        ArrivalProcess::Bursty {
            base_rate: rate * 0.2,
            burst_rate: rate * 4.0,
            burst_secs: 3.0,
            period_secs: 15.0,
        }
    } else {
        ArrivalProcess::Poisson { rate_per_sec: rate }
    };
    WorkloadSpec {
        arrivals,
        prompt_lengths: LengthDistribution::Uniform { min: 8, max: 640 },
        output_lengths: LengthDistribution::Uniform { min: 1, max: 72 },
        requests,
        seed,
    }
    .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reserve-up-front equivalence (continuous and static batching)
    /// across seeded Poisson and bursty traces, with budgets small enough
    /// to force rejections and head-of-line waits.
    #[test]
    fn reserve_up_front_cores_are_trace_equivalent(
        seed in 0u64..10_000,
        rate_x10 in 2u32..400,
        requests in 2usize..60,
        max_batch in 1usize..24,
        budget in 600usize..40_000,
        bursty in proptest::prop::bool::ANY,
        static_batching in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, bursty);
        let config = if static_batching {
            ServingConfig::static_batching(max_batch, budget)
        } else {
            ServingConfig::continuous(max_batch, budget)
        };
        assert_equivalent(config, &trace);
    }

    /// Paged equivalence on Poisson/bursty traces, pools sized from
    /// thrashing (heavy preemption) to roomy, prefix sharing on and off.
    #[test]
    fn paged_cores_are_trace_equivalent(
        seed in 0u64..10_000,
        rate_x10 in 2u32..300,
        requests in 2usize..48,
        max_batch in 1usize..16,
        budget_blocks in 48usize..1_500,
        block_size_idx in 0usize..4,
        bursty in proptest::prop::bool::ANY,
        prefix_sharing in proptest::prop::bool::ANY,
    ) {
        let block_size = [1usize, 4, 16, 32][block_size_idx];
        let trace = workload(seed, rate_x10, requests, bursty);
        let config = ServingConfig::paged(max_batch, budget_blocks * block_size, block_size)
            .with_prefix_sharing(prefix_sharing);
        assert_equivalent(config, &trace);
    }

    /// Paged + prefix-sharing equivalence on shared-prefix conversation
    /// traces — the workload where cache hits, evictions and the
    /// feasibility-checked admission path all fire.
    #[test]
    fn shared_prefix_traces_are_equivalent_on_every_policy(
        seed in 0u64..10_000,
        sessions in 1usize..12,
        rate_x100 in 5u32..400,
        max_batch in 1usize..16,
        budget_blocks in 64usize..2_000,
    ) {
        let trace = SharedPrefixChatSpec::fleet(f64::from(rate_x100) / 100.0, sessions, seed)
            .generate();
        for config in [
            ServingConfig::continuous(max_batch, budget_blocks * 16),
            ServingConfig::static_batching(max_batch, budget_blocks * 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16).with_prefix_sharing(true),
        ] {
            assert_equivalent(config, &trace);
        }
    }

    /// Chunked-prefill equivalence: the event core's chunked batch steps —
    /// chunk cursors, interleaved decodes, incremental cache publication —
    /// reproduce the reference loop's on every policy, across chunk
    /// budgets from smaller than one prompt to larger than the whole wave.
    #[test]
    fn chunked_runs_are_trace_equivalent(
        seed in 0u64..10_000,
        rate_x10 in 2u32..300,
        requests in 2usize..40,
        max_batch in 1usize..16,
        budget_blocks in 64usize..1_500,
        chunk_budget in 8usize..2_048,
        bursty in proptest::prop::bool::ANY,
        prefix_sharing in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, bursty);
        for config in [
            ServingConfig::continuous(max_batch, budget_blocks * 16),
            ServingConfig::static_batching(max_batch, budget_blocks * 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16)
                .with_prefix_sharing(prefix_sharing),
        ] {
            assert_equivalent(config.with_chunked_prefill(Some(chunk_budget)), &trace);
        }
    }

    /// Speculative-decoding equivalence: the event core's draft-and-verify
    /// bursts — seeded acceptance draws, per-token block growth on the
    /// paged policy — reproduce the reference loop's, with and without
    /// chunked prefill underneath.
    #[test]
    fn speculative_runs_are_trace_equivalent(
        seed in 0u64..10_000,
        rate_x10 in 2u32..300,
        requests in 2usize..40,
        max_batch in 1usize..16,
        budget_blocks in 64usize..1_500,
        draft_tokens in 1usize..8,
        acceptance_x100 in 0u32..=100,
        spec_seed in 0u64..1_000,
        chunked in proptest::prop::bool::ANY,
        prefix_sharing in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, false);
        let speculation =
            SpeculationSpec::new(draft_tokens, f64::from(acceptance_x100) / 100.0, spec_seed);
        let chunk_budget = chunked.then_some(256);
        for config in [
            ServingConfig::continuous(max_batch, budget_blocks * 16),
            ServingConfig::static_batching(max_batch, budget_blocks * 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16)
                .with_prefix_sharing(prefix_sharing),
        ] {
            assert_equivalent(
                config
                    .with_speculation(speculation)
                    .with_chunked_prefill(chunk_budget),
                &trace,
            );
        }
    }

    /// The degenerate axes are invisible: an infinite chunk budget
    /// (`None`) plus speculation off (zero draft tokens, whatever the
    /// acceptance rate or seed says) reproduces the plain run bit for bit
    /// — full report equality, time-weighted means included — on every
    /// policy, with prefix sharing on and off.
    #[test]
    fn degenerate_chunk_and_speculation_axes_are_bit_invisible(
        seed in 0u64..10_000,
        rate_x10 in 2u32..300,
        requests in 2usize..40,
        max_batch in 1usize..16,
        budget_blocks in 48usize..1_500,
        acceptance_x100 in 0u32..=100,
        spec_seed in 0u64..1_000,
        bursty in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, bursty);
        // Zero draft tokens disables speculation regardless of the rest of
        // the spec — the config is degenerate, not merely similar.
        let disabled =
            SpeculationSpec::new(0, f64::from(acceptance_x100) / 100.0, spec_seed);
        for config in [
            ServingConfig::continuous(max_batch, budget_blocks * 16),
            ServingConfig::static_batching(max_batch, budget_blocks * 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16).with_prefix_sharing(true),
        ] {
            let mut plain = ServingSimulator::new(LinearCostModel::default_70b(), config);
            let mut degenerate = ServingSimulator::new(
                LinearCostModel::default_70b(),
                config.with_chunked_prefill(None).with_speculation(disabled),
            );
            prop_assert_eq!(plain.run(&trace), degenerate.run(&trace));
        }
    }

    /// Multi-tenant equivalence: QoS priority admission (with aging) and
    /// adapter-cache pricing — including the paged policy's block carve —
    /// come out identical on both cores across mixed interactive/batch
    /// LoRA traces.
    #[test]
    fn multi_tenant_runs_are_trace_equivalent(
        seed in 0u64..10_000,
        rate_x10 in 2u32..200,
        interactive in 2usize..30,
        max_batch in 1usize..16,
        budget_blocks in 96usize..1_500,
        cache_slots in 1usize..4,
        qos_aging in 0usize..12,
        prefix_sharing in proptest::prop::bool::ANY,
    ) {
        let trace =
            MultiTenantSpec::fleet(f64::from(rate_x10) / 10.0, interactive, seed).generate();
        let adapters = AdapterModel::new(64, cache_slots);
        for config in [
            ServingConfig::continuous(max_batch, budget_blocks * 16),
            ServingConfig::static_batching(max_batch, budget_blocks * 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16)
                .with_prefix_sharing(prefix_sharing),
        ] {
            assert_equivalent(
                config.with_adapters(adapters).with_qos_aging(qos_aging),
                &trace,
            );
        }
    }

    /// The tenant workload families — shared-document RAG and tool-call
    /// agent loops — are trace-equivalent on both cores, with the prefix
    /// cache absorbing the shared documents / growing transcripts.
    #[test]
    fn tenant_workloads_are_trace_equivalent(
        seed in 0u64..10_000,
        rate_x100 in 5u32..300,
        units in 1usize..8,
        max_batch in 1usize..12,
        budget_blocks in 128usize..2_000,
        agentic in proptest::prop::bool::ANY,
    ) {
        let rate = f64::from(rate_x100) / 100.0;
        let trace = if agentic {
            AgentLoopSpec::fleet(rate, units, seed).generate()
        } else {
            RagSpec::fleet(rate, units, seed).generate()
        };
        for config in [
            ServingConfig::continuous(max_batch, budget_blocks * 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16).with_prefix_sharing(true),
        ] {
            assert_equivalent(config, &trace);
        }
    }

    /// The anti-starvation invariant: under any fuzzed mixed trace, the
    /// Batch lane is never bypassed more than `qos_aging` consecutive
    /// times while it has work queued, and every request still terminates
    /// (completed or rejected — nothing is starved forever).
    #[test]
    fn batch_lane_is_never_starved(
        seed in 0u64..10_000,
        rate_x10 in 5u32..300,
        interactive in 4usize..40,
        max_batch in 1usize..8,
        budget_blocks in 96usize..1_000,
        qos_aging in 1usize..10,
        paged in proptest::prop::bool::ANY,
    ) {
        let trace =
            MultiTenantSpec::fleet(f64::from(rate_x10) / 10.0, interactive, seed).generate();
        let config = if paged {
            ServingConfig::paged(max_batch, budget_blocks * 16, 16)
        } else {
            ServingConfig::continuous(max_batch, budget_blocks * 16)
        };
        let mut sim = ServingSimulator::new(
            LinearCostModel::default_70b(),
            config.with_qos_aging(qos_aging),
        );
        let report = sim.run(&trace);
        prop_assert!(
            report.qos.peak_interactive_run <= qos_aging,
            "{} interactive admissions in a row with Batch work queued (aging bound {})",
            report.qos.peak_interactive_run,
            qos_aging
        );
        prop_assert_eq!(
            report.completed() + report.rejected,
            trace.requests().len()
        );
    }

    /// The tenant axes are invisible until used: explicitly-disabled
    /// adapters plus any aging threshold reproduce the plain run bit for
    /// bit — full report equality, time-weighted means included — on a
    /// single-class base-model trace, on every policy.
    #[test]
    fn degenerate_tenant_axes_are_bit_invisible(
        seed in 0u64..10_000,
        rate_x10 in 2u32..300,
        requests in 2usize..40,
        max_batch in 1usize..16,
        budget_blocks in 48usize..1_500,
        qos_aging in 0usize..16,
        bursty in proptest::prop::bool::ANY,
    ) {
        let trace = workload(seed, rate_x10, requests, bursty);
        for config in [
            ServingConfig::continuous(max_batch, budget_blocks * 16),
            ServingConfig::static_batching(max_batch, budget_blocks * 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16),
            ServingConfig::paged(max_batch, budget_blocks * 16, 16).with_prefix_sharing(true),
        ] {
            let mut plain = ServingSimulator::new(LinearCostModel::default_70b(), config);
            let mut tenant = ServingSimulator::new(
                LinearCostModel::default_70b(),
                config
                    .with_adapters(AdapterModel::disabled())
                    .with_qos_aging(qos_aging),
            );
            prop_assert_eq!(plain.run(&trace), tenant.run(&trace));
        }
    }
}

/// Pinned regression: a pool small enough to preempt on every decode wave
/// stays equivalent through the deferred-preemption event path.
#[test]
fn preemption_heavy_trace_is_equivalent() {
    use crate::workload::{Request, TokenStream};
    let requests: Vec<Request> = (0..12)
        .map(|id| Request {
            id,
            arrival_s: 0.0,
            prompt_tokens: 64,
            output_tokens: 200,
            stream: TokenStream::unique(id),
            qos: QosClass::default(),
            adapter: AdapterId::BASE,
        })
        .collect();
    let trace = RequestTrace::new(requests);
    assert_equivalent(ServingConfig::paged(12, 1_024, 16), &trace);
}

/// Pinned regression: an empty trace produces identical (empty) reports.
#[test]
fn empty_trace_is_equivalent() {
    let trace = RequestTrace::new(Vec::new());
    for config in [
        ServingConfig::continuous(4, 1_000),
        ServingConfig::static_batching(4, 1_000),
        ServingConfig::paged(4, 1_000, 16).with_prefix_sharing(true),
    ] {
        assert_equivalent(config, &trace);
    }
}
