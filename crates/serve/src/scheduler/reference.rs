//! The pre-event-core step loop, preserved verbatim as a test-only
//! reference implementation.
//!
//! This is the scheduler exactly as it ran before the discrete-event
//! refactor: time advances step by step, arrivals are probed from the
//! trace every iteration, and occupancy/fragmentation are re-derived each
//! step by walking the running batch (and, for the paged policy, every
//! sequence's block list). The equivalence property suite
//! (`scheduler::equivalence_tests`) runs seeded traces through both this
//! loop and the event core and asserts the reports match exactly — modulo
//! the time-weighted mean fields, which the event core deliberately
//! improves by integrating over exact inter-event intervals (idle gaps
//! included) instead of sampling once per engine step.

use std::collections::VecDeque;

use super::{Active, PagedActive, PagedStats, SchedulerKind, ServingConfig, ServingReport};
use crate::cost::{ChunkWork, ServingCostModel, StepMix};
use crate::kv::BlockAllocator;
use crate::lora::{AdapterCache, AdapterId};
use crate::metrics::RequestRecord;
use crate::prefix::PrefixCache;
use crate::tenant::QosAdmission;
use crate::workload::RequestTrace;

/// Runs a reserve-up-front trace through the old step loop.
pub(super) fn run_reference<C: ServingCostModel>(
    cost: &mut C,
    config: ServingConfig,
    trace: &RequestTrace,
) -> ServingReport {
    assert_ne!(config.scheduler, SchedulerKind::PagedContinuous);
    let mut state = RunState::new(config, trace.requests());
    loop {
        state.pull_arrivals();
        state.admit();
        if state.running.is_empty() {
            debug_assert!(state.queue.is_empty());
            if state.next_arrival >= state.requests.len() {
                break; // drained
            }
            // Idle: jump to the next arrival.
            state.now = state.now.max(state.requests[state.next_arrival].arrival_s);
            continue;
        }
        let step_seconds = state.engine_step(cost);
        state.account(step_seconds);
        state.retire();
    }
    state.into_report(trace.duration_s())
}

/// Runs a paged trace through the old step loop.
pub(super) fn run_paged_reference<C: ServingCostModel>(
    cost: &mut C,
    config: ServingConfig,
    trace: &RequestTrace,
) -> ServingReport {
    assert_eq!(config.scheduler, SchedulerKind::PagedContinuous);
    let mut state = PagedRunState::new(config, trace.requests());
    loop {
        state.pull_arrivals();
        state.admit();
        if state.running.is_empty() {
            debug_assert!(state.queue.is_empty());
            if state.next_arrival >= state.requests.len() {
                break; // drained
            }
            state.now = state.now.max(state.requests[state.next_arrival].arrival_s);
            continue;
        }
        let step_seconds = state.engine_step(cost);
        state.account(step_seconds);
        state.retire();
    }
    state.into_report(trace.duration_s())
}

/// The mutable state of one reference serving run.
struct RunState<'a> {
    config: ServingConfig,
    requests: &'a [crate::workload::Request],
    queue: VecDeque<usize>,
    running: Vec<Active>,
    records: Vec<RequestRecord>,
    now: f64,
    next_arrival: usize,
    reserved: usize,
    admitted: usize,
    rejected: usize,
    peak_reserved: usize,
    peak_occupied: usize,
    peak_batch: usize,
    peak_queue: usize,
    decode_steps: u64,
    prefill_steps: u64,
    chunk_steps: u64,
    chunked_prefill_tokens: u64,
    queue_depth_integral: f64,
    occupancy_integral: f64,
    elapsed: f64,
    qos: QosAdmission,
    adapter_cache: AdapterCache,
}

impl<'a> RunState<'a> {
    fn new(config: ServingConfig, requests: &'a [crate::workload::Request]) -> Self {
        let adapter_cache = AdapterCache::new(config.adapters.cache_slots);
        RunState {
            config,
            requests,
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            now: 0.0,
            next_arrival: 0,
            reserved: 0,
            admitted: 0,
            rejected: 0,
            peak_reserved: 0,
            peak_occupied: 0,
            peak_batch: 0,
            peak_queue: 0,
            decode_steps: 0,
            prefill_steps: 0,
            chunk_steps: 0,
            chunked_prefill_tokens: 0,
            queue_depth_integral: 0.0,
            occupancy_integral: 0.0,
            elapsed: 0.0,
            qos: QosAdmission::new(),
            adapter_cache,
        }
    }

    /// Pulls every arrival up to the current time into the queue.
    fn pull_arrivals(&mut self) {
        while self.next_arrival < self.requests.len()
            && self.requests[self.next_arrival].arrival_s <= self.now
        {
            self.queue.push_back(self.next_arrival);
            self.next_arrival += 1;
        }
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Admission at this token boundary: FIFO, gated by the batch limit and
    /// the KV reservation budget.
    fn admit(&mut self) {
        let admission_open = match self.config.scheduler {
            SchedulerKind::ContinuousBatching | SchedulerKind::PagedContinuous => true,
            SchedulerKind::StaticBatching => self.running.is_empty(),
        };
        if !admission_open {
            return;
        }
        while self.running.len() < self.config.max_batch {
            let Some(pick) = self.qos.pick(
                self.queue.iter().map(|&i| self.requests[i].qos),
                self.config.qos_aging,
            ) else {
                break;
            };
            let head = self.queue[pick.position];
            let class = self.requests[head].qos;
            let need = self.requests[head].kv_tokens_at_completion();
            if need > self.config.kv_budget_tokens {
                // Could never run on this replica, even alone.
                self.queue.remove(pick.position);
                self.rejected += 1;
                self.qos.record_reject(class);
                continue;
            }
            if self.reserved + need > self.config.kv_budget_tokens {
                // The pick is not committed: the aging clock holds still.
                break;
            }
            self.queue.remove(pick.position);
            self.qos.record_admit(class, pick);
            self.reserved += need;
            self.admitted += 1;
            self.running.push(Active {
                idx: head,
                prefilled: false,
                prefilled_tokens: 0,
                spec_bursts: 0,
                first_token_s: 0.0,
                context_tokens: 0,
                remaining_decode: 0,
                reserved_tokens: need,
                done_s: None,
            });
        }
        self.peak_reserved = self.peak_reserved.max(self.reserved);
    }

    /// One engine step — prefill-prioritized, then decode, with chunked
    /// prefill and speculation branching exactly as the event core does.
    /// Returns the step duration and advances per-request progress (but
    /// not the clock).
    fn engine_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.peak_batch = self.peak_batch.max(self.running.len());
        let pending_prefill = self.running.iter().any(|a| !a.prefilled);
        let dt = if pending_prefill {
            if self.config.chunk_budget_tokens.is_some() {
                self.chunked_step(cost)
            } else {
                self.prefill_steps += 1;
                let mut cursor = self.now;
                for active in self.running.iter_mut().filter(|a| !a.prefilled) {
                    let request = &self.requests[active.idx];
                    cursor += cost.prefill_seconds(request.prompt_tokens);
                    active.prefilled = true;
                    active.first_token_s = cursor;
                    active.context_tokens = request.prompt_tokens + 1;
                    active.remaining_decode = request.output_tokens.saturating_sub(1);
                }
                cursor - self.now
            }
        } else if self.config.speculation.enabled() {
            self.speculative_step(cost)
        } else {
            self.decode_steps += 1;
            let batch = self.running.len();
            let max_context = self
                .running
                .iter()
                .map(|a| a.context_tokens)
                .fold(0, usize::max);
            let dt = cost.decode_step_seconds(batch, max_context);
            for active in &mut self.running {
                if active.remaining_decode > 0 {
                    active.remaining_decode -= 1;
                    active.context_tokens += 1;
                }
            }
            dt
        };
        // The adapter-switch wait delays the step's completion but not the
        // first-token stamps above — exactly as the event core prices it.
        dt + self.adapter_switch_seconds(cost)
    }

    /// Adapter-load seconds this step pays — the event core's rule
    /// verbatim: each distinct non-base adapter of the batch (in batch
    /// order) touches the LRU, and every miss streams its weights in.
    fn adapter_switch_seconds<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        if !self.config.adapters.enabled() {
            return 0.0;
        }
        let weight_tokens = self.config.adapters.weight_tokens;
        let mut wait = 0.0;
        let mut seen: Vec<AdapterId> = Vec::new();
        let requests = self.requests;
        let cache = &mut self.adapter_cache;
        for active in &self.running {
            let adapter = requests[active.idx].adapter;
            if adapter.is_base() || seen.contains(&adapter) {
                continue;
            }
            seen.push(adapter);
            if !cache.touch(adapter) {
                wait += cost.adapter_load_seconds(weight_tokens);
            }
        }
        wait
    }

    /// One chunked batch step, mirroring the event core's arithmetic: the
    /// unprefilled sequences' next chunks (FIFO against the budget) plus
    /// one decode token for the already-prefilled ones, priced as one
    /// [`StepMix`]; decode progress lands before chunk progress.
    fn chunked_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.chunk_steps += 1;
        let budget = self
            .config
            .chunk_budget_tokens
            .expect("chunked dispatch requires a budget");
        let mut budget_left = budget;
        let mut chunks: Vec<(usize, usize)> = Vec::new();
        let mut mix = StepMix::default();
        let mut decoders: Vec<usize> = Vec::new();
        for (pos, active) in self.running.iter().enumerate() {
            if active.prefilled {
                if active.remaining_decode > 0 {
                    decoders.push(pos);
                    mix.max_context_tokens = mix.max_context_tokens.max(active.context_tokens);
                }
            } else if budget_left > 0 {
                let prompt = self.requests[active.idx].prompt_tokens;
                let take = (prompt - active.prefilled_tokens).min(budget_left);
                budget_left -= take;
                chunks.push((pos, take));
                mix.prefill_chunks.push(ChunkWork {
                    suffix_tokens: take,
                    cached_tokens: 0,
                    committed_tokens: active.prefilled_tokens,
                });
            }
        }
        mix.decode_batch = decoders.len();
        let dt = cost.step_seconds(&mix);
        let end = self.now + dt;
        for &pos in &decoders {
            let active = &mut self.running[pos];
            active.remaining_decode -= 1;
            active.context_tokens += 1;
        }
        for (pos, take) in chunks {
            self.chunked_prefill_tokens += take as u64;
            let active = &mut self.running[pos];
            active.prefilled_tokens += take;
            let request = &self.requests[active.idx];
            if active.prefilled_tokens == request.prompt_tokens {
                active.prefilled = true;
                active.first_token_s = end;
                active.context_tokens = request.prompt_tokens + 1;
                active.remaining_decode = request.output_tokens.saturating_sub(1);
            }
        }
        dt
    }

    /// One draft-and-verify burst, mirroring the event core: the same
    /// seeded acceptance draws, keyed by request id and per-sequence burst
    /// count.
    fn speculative_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.decode_steps += 1;
        let spec = self.config.speculation;
        let batch = self.running.len();
        let max_context = self
            .running
            .iter()
            .map(|a| a.context_tokens)
            .fold(0, usize::max);
        let dt = cost.speculative_burst_seconds(spec.draft_tokens, batch, max_context);
        let requests = self.requests;
        for active in &mut self.running {
            if active.remaining_decode > 0 {
                let accepted =
                    spec.accepted_tokens(requests[active.idx].id as u64, active.spec_bursts);
                active.spec_bursts += 1;
                let gained = (accepted + 1).min(active.remaining_decode);
                active.remaining_decode -= gained;
                active.context_tokens += gained;
            }
        }
        dt
    }

    /// Advances the clock and the time-weighted statistics by one step —
    /// the per-step *sampling* the event core replaces with exact interval
    /// integration.
    fn account(&mut self, step_seconds: f64) {
        let occupied: usize = self.running.iter().map(|a| a.context_tokens).sum();
        self.peak_occupied = self.peak_occupied.max(occupied);
        self.queue_depth_integral += self.queue.len() as f64 * step_seconds;
        self.occupancy_integral +=
            occupied as f64 / self.config.kv_budget_tokens as f64 * step_seconds;
        self.elapsed += step_seconds;
        self.now += step_seconds;
    }

    /// Stamps generation-finish times and retires finished sequences.
    fn retire(&mut self) {
        let now = self.now;
        for active in &mut self.running {
            if active.prefilled && active.remaining_decode == 0 && active.done_s.is_none() {
                let request = &self.requests[active.idx];
                active.done_s = Some(if request.output_tokens == 1 {
                    active.first_token_s
                } else {
                    now
                });
            }
        }

        let batch_done = self.running.iter().all(|a| a.done_s.is_some());
        let scheduler = self.config.scheduler;
        let requests = self.requests;
        let records = &mut self.records;
        let reserved = &mut self.reserved;
        self.running.retain(|active| {
            let release = match scheduler {
                SchedulerKind::ContinuousBatching | SchedulerKind::PagedContinuous => {
                    active.done_s.is_some()
                }
                SchedulerKind::StaticBatching => batch_done,
            };
            if let (true, Some(done_s)) = (release, active.done_s) {
                let request = &requests[active.idx];
                records.push(RequestRecord {
                    id: request.id,
                    arrival_s: request.arrival_s,
                    first_token_s: active.first_token_s,
                    completion_s: done_s,
                    prompt_tokens: request.prompt_tokens,
                    output_tokens: request.output_tokens,
                    qos: request.qos,
                });
                *reserved -= active.reserved_tokens;
                return false;
            }
            true
        });
    }

    /// Finalizes the report once the trace has drained.
    fn into_report(mut self, trace_duration_s: f64) -> ServingReport {
        self.records.sort_by_key(|r| r.id);
        let makespan = self
            .records
            .iter()
            .map(|r| r.completion_s)
            .fold(self.now.min(trace_duration_s), f64::max);
        ServingReport {
            scheduler: self.config.scheduler,
            records: self.records,
            admitted: self.admitted,
            rejected: self.rejected,
            makespan_s: makespan,
            kv_budget_tokens: self.config.kv_budget_tokens,
            peak_kv_reserved_tokens: self.peak_reserved,
            peak_kv_occupied_tokens: self.peak_occupied,
            mean_kv_occupancy: if self.elapsed > 0.0 {
                self.occupancy_integral / self.elapsed
            } else {
                0.0
            },
            peak_batch: self.peak_batch,
            peak_queue_depth: self.peak_queue,
            mean_queue_depth: if self.elapsed > 0.0 {
                self.queue_depth_integral / self.elapsed
            } else {
                0.0
            },
            decode_steps: self.decode_steps,
            prefill_steps: self.prefill_steps,
            chunk_steps: self.chunk_steps,
            chunked_prefill_tokens: self.chunked_prefill_tokens,
            qos: self.qos.stats(),
            adapters: self.adapter_cache.stats(),
            paged: None,
        }
    }
}

/// The mutable state of one reference paged serving run.
struct PagedRunState<'a> {
    config: ServingConfig,
    requests: &'a [crate::workload::Request],
    queue: VecDeque<usize>,
    running: Vec<PagedActive>,
    records: Vec<RequestRecord>,
    allocator: BlockAllocator,
    cache: Option<PrefixCache>,
    now: f64,
    next_arrival: usize,
    admitted: usize,
    rejected: usize,
    first_token: Vec<Option<f64>>,
    generated_before: Vec<usize>,
    was_admitted: Vec<bool>,
    preemptions: u64,
    prefix_hit_tokens: u64,
    prefix_uncached_tokens: u64,
    peak_occupied: usize,
    peak_batch: usize,
    peak_queue: usize,
    decode_steps: u64,
    prefill_steps: u64,
    chunk_steps: u64,
    chunked_prefill_tokens: u64,
    queue_depth_integral: f64,
    occupancy_integral: f64,
    block_util_integral: f64,
    fragmentation_integral: f64,
    elapsed: f64,
    /// Per-block scratch for `account`'s distinct-block walk (indexed by
    /// `BlockId`): a block whose entry already equals the current stamp
    /// was counted this step.
    touched: Vec<u64>,
    /// The current `account` step's stamp in `touched`.
    stamp: u64,
    qos: QosAdmission,
    adapter_cache: AdapterCache,
    /// Blocks carved out of the pool to back the adapter cache.
    adapter_blocks: Vec<crate::kv::BlockId>,
}

impl<'a> PagedRunState<'a> {
    fn new(config: ServingConfig, requests: &'a [crate::workload::Request]) -> Self {
        assert!(
            !config.tiers.enabled() && !config.kv_ship.enabled(),
            "the reference scheduler models neither KV tiers nor KV shipping"
        );
        let mut allocator =
            BlockAllocator::from_token_budget(config.block_size, config.kv_budget_tokens);
        let total_blocks = allocator.total_blocks();
        let cache = config
            .prefix_sharing
            .then(|| PrefixCache::new(config.block_size));
        let mut adapter_cache = AdapterCache::new(config.adapters.cache_slots);
        let mut adapter_blocks = Vec::new();
        if config.adapters.enabled() {
            let reserve = config.adapters.reserved_blocks(config.block_size);
            assert!(
                reserve < total_blocks,
                "the adapter cache reservation must leave KV blocks for sequences"
            );
            for _ in 0..reserve {
                adapter_blocks.push(allocator.alloc().expect("reservation fits the pool"));
            }
            adapter_cache.set_reserved_blocks(reserve);
        }
        PagedRunState {
            config,
            requests,
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
            allocator,
            cache,
            now: 0.0,
            next_arrival: 0,
            admitted: 0,
            rejected: 0,
            first_token: vec![None; requests.len()],
            generated_before: vec![0; requests.len()],
            was_admitted: vec![false; requests.len()],
            preemptions: 0,
            prefix_hit_tokens: 0,
            prefix_uncached_tokens: 0,
            peak_occupied: 0,
            peak_batch: 0,
            peak_queue: 0,
            decode_steps: 0,
            prefill_steps: 0,
            chunk_steps: 0,
            chunked_prefill_tokens: 0,
            queue_depth_integral: 0.0,
            occupancy_integral: 0.0,
            block_util_integral: 0.0,
            fragmentation_integral: 0.0,
            elapsed: 0.0,
            touched: vec![0; total_blocks],
            stamp: 0,
            qos: QosAdmission::new(),
            adapter_cache,
            adapter_blocks,
        }
    }

    /// The prompt a (possibly resumed) request must prefill.
    fn effective_prompt(&self, idx: usize) -> usize {
        self.requests[idx].prompt_tokens + self.generated_before[idx]
    }

    /// Pulls every arrival up to the current time into the queue.
    fn pull_arrivals(&mut self) {
        while self.next_arrival < self.requests.len()
            && self.requests[self.next_arrival].arrival_s <= self.now
        {
            self.queue.push_back(self.next_arrival);
            self.next_arrival += 1;
        }
        self.peak_queue = self.peak_queue.max(self.queue.len());
    }

    /// Paged admission: FIFO, gated by the batch limit and by *current*
    /// need after prefix-cache hits and cold-block eviction.
    fn admit(&mut self) {
        while self.running.len() < self.config.max_batch {
            let Some(pick) = self.qos.pick(
                self.queue.iter().map(|&i| self.requests[i].qos),
                self.config.qos_aging,
            ) else {
                break;
            };
            let head = self.queue[pick.position];
            let class = self.requests[head].qos;
            let request = &self.requests[head];
            let full_need = self
                .allocator
                .blocks_for_tokens(request.kv_tokens_at_completion());
            if full_need > self.allocator.total_blocks() - self.adapter_blocks.len() {
                self.queue.remove(pick.position);
                self.rejected += 1;
                self.qos.record_reject(class);
                continue;
            }
            let prompt = self.effective_prompt(head);
            let matched = match &mut self.cache {
                Some(cache) => {
                    let ids = request.stream.token_ids(prompt.saturating_sub(1));
                    cache.lookup(&ids, &mut self.allocator)
                }
                None => Vec::new(),
            };
            let cached_tokens = matched.len() * self.config.block_size;
            let target = self.allocator.blocks_for_tokens(prompt + 1);
            let need_now = target - matched.len();
            if self.allocator.free_blocks() < need_now {
                let evictable = self
                    .cache
                    .as_ref()
                    .map_or(0, |cache| cache.evictable_blocks(&self.allocator));
                if self.allocator.free_blocks() + evictable < need_now {
                    for block in matched {
                        self.release_block(block);
                    }
                    break;
                }
            }
            let mut starved = false;
            while self.allocator.free_blocks() < need_now {
                if !self.evict_one() {
                    starved = true;
                    break;
                }
            }
            if starved {
                for block in matched {
                    self.release_block(block);
                }
                break;
            }
            self.queue.remove(pick.position);
            self.qos.record_admit(class, pick);
            let mut blocks = matched;
            for _ in 0..need_now {
                blocks.push(self.allocator.alloc().expect("free blocks checked"));
            }
            if !self.was_admitted[head] {
                self.was_admitted[head] = true;
                self.admitted += 1;
            }
            self.running.push(PagedActive {
                idx: head,
                prefilled: false,
                prefilled_tokens: cached_tokens,
                spec_bursts: 0,
                context_tokens: 0,
                remaining_decode: 0,
                cached_prefix_tokens: cached_tokens,
                promoted_tokens: 0,
                promote_wait_s: 0.0,
                swapping: false,
                blocks,
                done_s: None,
            });
        }
    }

    /// Evicts one cold prefix-cache block.
    fn evict_one(&mut self) -> bool {
        self.cache
            .as_mut()
            .is_some_and(|cache| cache.evict_lru(&mut self.allocator))
    }

    /// Drops one sequence-held block reference: through the prefix cache
    /// when one is attached (the [`PrefixCache::release`] contract keeps
    /// its shared-block bookkeeping in sync), else straight to the
    /// allocator.
    fn release_block(&mut self, block: crate::kv::BlockId) {
        match &mut self.cache {
            Some(cache) => cache.release(block, &mut self.allocator),
            None => self.allocator.free(block),
        }
    }

    /// One engine step — prefill-prioritized, then decode, with chunked
    /// prefill and speculation branching exactly as the event core does.
    fn engine_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.peak_batch = self.peak_batch.max(self.running.len());
        let pending_prefill = self.running.iter().any(|a| !a.prefilled);
        let dt = if pending_prefill {
            if self.config.chunk_budget_tokens.is_some() {
                self.chunked_step(cost)
            } else {
                self.prefill_step(cost)
            }
        } else if self.config.speculation.enabled() {
            self.speculative_step(cost)
        } else {
            self.decode_step(cost)
        };
        // The adapter-switch wait delays the step's completion but not the
        // first-token stamps inside the branches — exactly as the event
        // core prices it.
        dt + self.adapter_switch_seconds(cost)
    }

    /// Adapter-load seconds this step pays — the paged event core's rule
    /// verbatim (swap-in waiters contribute nothing; the reference loop
    /// never swaps, so the filter is vacuous but kept for symmetry).
    fn adapter_switch_seconds<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        if !self.config.adapters.enabled() {
            return 0.0;
        }
        let weight_tokens = self.config.adapters.weight_tokens;
        let mut wait = 0.0;
        let mut seen: Vec<AdapterId> = Vec::new();
        let requests = self.requests;
        let cache = &mut self.adapter_cache;
        for active in self.running.iter().filter(|a| !a.swapping) {
            let adapter = requests[active.idx].adapter;
            if adapter.is_base() || seen.contains(&adapter) {
                continue;
            }
            seen.push(adapter);
            if !cache.touch(adapter) {
                wait += cost.adapter_load_seconds(weight_tokens);
            }
        }
        wait
    }

    /// Prefills every newly admitted (or resumed) sequence back to back.
    fn prefill_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.prefill_steps += 1;
        let mut cursor = self.now;
        for active in self.running.iter_mut().filter(|a| !a.prefilled) {
            let request = &self.requests[active.idx];
            let prompt = request.prompt_tokens + self.generated_before[active.idx];
            let cached = active.cached_prefix_tokens;
            cursor += cost.prefill_seconds_cached(prompt, cached);
            active.prefilled = true;
            active.context_tokens = prompt + 1;
            active.remaining_decode = request
                .output_tokens
                .saturating_sub(1 + self.generated_before[active.idx]);
            if self.first_token[active.idx].is_none() {
                self.first_token[active.idx] = Some(cursor);
            }
            if active.remaining_decode == 0 {
                active.done_s = Some(cursor);
            }
            self.prefix_hit_tokens += cached as u64;
            self.prefix_uncached_tokens += (prompt - cached) as u64;
            if let Some(cache) = &mut self.cache {
                let ids = request.stream.token_ids(prompt);
                cache.insert(&ids, &active.blocks, &mut self.allocator);
            }
        }
        cursor - self.now
    }

    /// One decode step: every running sequence gains a token.
    fn decode_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.decode_steps += 1;
        let batch = self.running.len();
        let max_context = self
            .running
            .iter()
            .map(|a| a.context_tokens)
            .fold(0, usize::max);
        let dt = cost.decode_step_seconds(batch, max_context);
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining_decode == 0 {
                i += 1;
                continue;
            }
            let active = &self.running[i];
            let needs_block =
                self.allocator.blocks_for_tokens(active.context_tokens + 1) > active.blocks.len();
            if needs_block {
                match self.grow(i) {
                    Some(at) => i = at,
                    None => continue, // self-preempted
                }
            }
            let active = &mut self.running[i];
            active.context_tokens += 1;
            active.remaining_decode -= 1;
            i += 1;
        }
        dt
    }

    /// One chunked batch step, mirroring the paged event core: chunks are
    /// keyed by request index (the decode side can preempt and shift
    /// running positions, but mid-prefill sequences are never victims),
    /// committed context grows with the cursor, and chunk-completed full
    /// blocks publish into the prefix cache incrementally.
    fn chunked_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.chunk_steps += 1;
        let budget = self
            .config
            .chunk_budget_tokens
            .expect("chunked dispatch requires a budget");
        let mut budget_left = budget;
        let mut chunks: Vec<(usize, usize)> = Vec::new();
        let mut mix = StepMix::default();
        let mut decode_batch = 0;
        for active in &self.running {
            if active.prefilled {
                if active.remaining_decode > 0 {
                    decode_batch += 1;
                    mix.max_context_tokens = mix.max_context_tokens.max(active.context_tokens);
                }
            } else if budget_left > 0 {
                let prompt = self.effective_prompt(active.idx);
                let committed = active.cached_prefix_tokens;
                let take = (prompt - active.prefilled_tokens).min(budget_left);
                budget_left -= take;
                chunks.push((active.idx, take));
                mix.prefill_chunks.push(ChunkWork {
                    suffix_tokens: take,
                    cached_tokens: committed,
                    committed_tokens: active.prefilled_tokens - committed,
                });
            }
        }
        mix.decode_batch = decode_batch;
        let dt = cost.step_seconds(&mix);
        let end = self.now + dt;
        // Decode progress first, with the plain step's grow-and-preempt
        // loop.
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining_decode == 0 {
                i += 1;
                continue;
            }
            let active = &self.running[i];
            let needs_block =
                self.allocator.blocks_for_tokens(active.context_tokens + 1) > active.blocks.len();
            if needs_block {
                match self.grow(i) {
                    Some(at) => i = at,
                    None => continue, // self-preempted
                }
            }
            let active = &mut self.running[i];
            active.context_tokens += 1;
            active.remaining_decode -= 1;
            i += 1;
        }
        for (idx, take) in chunks {
            self.chunked_prefill_tokens += take as u64;
            let pos = self
                .running
                .iter()
                .position(|a| a.idx == idx)
                .expect("mid-prefill sequences are never preempted");
            let active = &mut self.running[pos];
            active.prefilled_tokens += take;
            active.context_tokens = active.prefilled_tokens;
            let request = &self.requests[idx];
            let prompt = request.prompt_tokens + self.generated_before[idx];
            if active.prefilled_tokens == prompt {
                active.prefilled = true;
                active.context_tokens = prompt + 1;
                active.remaining_decode = request
                    .output_tokens
                    .saturating_sub(1 + self.generated_before[idx]);
                if self.first_token[idx].is_none() {
                    self.first_token[idx] = Some(end);
                }
                if active.remaining_decode == 0 {
                    active.done_s = Some(end);
                }
                self.prefix_hit_tokens += active.cached_prefix_tokens as u64;
                self.prefix_uncached_tokens += (prompt - active.cached_prefix_tokens) as u64;
            }
            if let Some(cache) = &mut self.cache {
                let active = &self.running[pos];
                let ids = request.stream.token_ids(active.prefilled_tokens);
                cache.insert(&ids, &active.blocks, &mut self.allocator);
            }
        }
        dt
    }

    /// One draft-and-verify burst, mirroring the paged event core: the
    /// same seeded draws, accepted tokens landing one by one through the
    /// grow-and-preempt loop.
    fn speculative_step<C: ServingCostModel>(&mut self, cost: &mut C) -> f64 {
        self.decode_steps += 1;
        let spec = self.config.speculation;
        let batch = self.running.len();
        let max_context = self
            .running
            .iter()
            .map(|a| a.context_tokens)
            .fold(0, usize::max);
        let dt = cost.speculative_burst_seconds(spec.draft_tokens, batch, max_context);
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining_decode == 0 {
                i += 1;
                continue;
            }
            let accepted = {
                let active = &mut self.running[i];
                let id = self.requests[active.idx].id as u64;
                let accepted = spec.accepted_tokens(id, active.spec_bursts);
                active.spec_bursts += 1;
                accepted
            };
            let gained = (accepted + 1).min(self.running[i].remaining_decode);
            let mut preempted_self = false;
            for _ in 0..gained {
                let active = &self.running[i];
                let needs_block = self.allocator.blocks_for_tokens(active.context_tokens + 1)
                    > active.blocks.len();
                if needs_block {
                    if let Some(at) = self.grow(i) {
                        i = at;
                    } else {
                        preempted_self = true;
                        break;
                    }
                }
                let active = &mut self.running[i];
                active.context_tokens += 1;
                active.remaining_decode -= 1;
            }
            if !preempted_self {
                i += 1;
            }
        }
        dt
    }

    /// Obtains one more block for the sequence at `i`.
    fn grow(&mut self, mut i: usize) -> Option<usize> {
        loop {
            if let Some(block) = self.allocator.alloc() {
                self.running[i].blocks.push(block);
                return Some(i);
            }
            if self.evict_one() {
                continue;
            }
            let victim = (0..self.running.len())
                .rev()
                .find(|&j| j != i && self.running[j].remaining_decode > 0);
            let Some(j) = victim else {
                self.preempt(i);
                return None;
            };
            self.preempt(j);
            if j < i {
                i -= 1;
            }
        }
    }

    /// Preempt-by-recompute: frees every block the victim holds and
    /// re-queues it at the *front* immediately (the mid-step `push_front`
    /// the event core reproduces with a deferred preemption event).
    fn preempt(&mut self, j: usize) {
        let victim = self.running.remove(j);
        let request = &self.requests[victim.idx];
        debug_assert!(victim.prefilled);
        self.generated_before[victim.idx] = victim.context_tokens - request.prompt_tokens;
        for block in victim.blocks {
            self.release_block(block);
        }
        self.queue.push_front(victim.idx);
        self.preemptions += 1;
    }

    /// Advances the clock and the time-weighted statistics by one step —
    /// including the per-step stamp walk over every sequence's block list
    /// that the event core replaces with running counters.
    fn account(&mut self, step_seconds: f64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let touched = &mut self.touched;
        let mut occupied = 0usize;
        let mut seq_slots = 0usize;
        for active in &self.running {
            occupied += active.context_tokens;
            for &block in &active.blocks {
                if touched[block] == stamp {
                    occupied -= self.config.block_size;
                } else {
                    touched[block] = stamp;
                    seq_slots += self.config.block_size;
                }
            }
        }
        self.peak_occupied = self.peak_occupied.max(occupied);
        self.queue_depth_integral += self.queue.len() as f64 * step_seconds;
        self.occupancy_integral +=
            occupied as f64 / self.allocator.total_tokens() as f64 * step_seconds;
        self.block_util_integral += self.allocator.utilization() * step_seconds;
        if seq_slots > 0 {
            self.fragmentation_integral +=
                (1.0 - occupied as f64 / seq_slots as f64) * step_seconds;
        }
        self.elapsed += step_seconds;
        self.now += step_seconds;
    }

    /// Retires finished sequences.
    fn retire(&mut self) {
        let now = self.now;
        for active in &mut self.running {
            if active.prefilled && active.remaining_decode == 0 && active.done_s.is_none() {
                active.done_s = Some(now);
            }
        }
        let requests = self.requests;
        let records = &mut self.records;
        let allocator = &mut self.allocator;
        let cache = &mut self.cache;
        let first_token = &self.first_token;
        self.running.retain(|active| {
            let Some(done_s) = active.done_s else {
                return true;
            };
            let request = &requests[active.idx];
            if let Some(cache) = cache {
                let ids = request.stream.token_ids(active.context_tokens);
                cache.insert(&ids, &active.blocks, allocator);
            }
            for &block in &active.blocks {
                match cache.as_mut() {
                    Some(cache) => cache.release(block, allocator),
                    None => allocator.free(block),
                }
            }
            records.push(RequestRecord {
                id: request.id,
                arrival_s: request.arrival_s,
                first_token_s: first_token[active.idx].expect("prefilled"),
                completion_s: done_s,
                prompt_tokens: request.prompt_tokens,
                output_tokens: request.output_tokens,
                qos: request.qos,
            });
            false
        });
    }

    /// Finalizes the report once the trace has drained.
    fn into_report(mut self, trace_duration_s: f64) -> ServingReport {
        self.records.sort_by_key(|r| r.id);
        let makespan = self
            .records
            .iter()
            .map(|r| r.completion_s)
            .fold(self.now.min(trace_duration_s), f64::max);
        let allocator_stats = self.allocator.stats();
        let cache_stats = self
            .cache
            .as_ref()
            .map(PrefixCache::stats)
            .unwrap_or_default();
        let normalize = |integral: f64| {
            if self.elapsed > 0.0 {
                integral / self.elapsed
            } else {
                0.0
            }
        };
        ServingReport {
            scheduler: self.config.scheduler,
            records: self.records,
            admitted: self.admitted,
            rejected: self.rejected,
            makespan_s: makespan,
            kv_budget_tokens: self.allocator.total_tokens(),
            peak_kv_reserved_tokens: allocator_stats.peak_allocated_blocks * self.config.block_size,
            peak_kv_occupied_tokens: self.peak_occupied,
            mean_kv_occupancy: normalize(self.occupancy_integral),
            peak_batch: self.peak_batch,
            peak_queue_depth: self.peak_queue,
            mean_queue_depth: normalize(self.queue_depth_integral),
            decode_steps: self.decode_steps,
            prefill_steps: self.prefill_steps,
            chunk_steps: self.chunk_steps,
            chunked_prefill_tokens: self.chunked_prefill_tokens,
            qos: self.qos.stats(),
            adapters: self.adapter_cache.stats(),
            paged: Some(PagedStats {
                block_size: self.config.block_size,
                total_blocks: allocator_stats.total_blocks,
                peak_allocated_blocks: allocator_stats.peak_allocated_blocks,
                mean_block_utilization: normalize(self.block_util_integral),
                mean_internal_fragmentation: normalize(self.fragmentation_integral),
                preemptions: self.preemptions,
                cache_evictions: cache_stats.evictions,
                cache_peak_resident_blocks: cache_stats.peak_resident_blocks,
                prefix_hit_tokens: self.prefix_hit_tokens,
                prefix_uncached_tokens: self.prefix_uncached_tokens,
                swap_outs: 0,
                swap_ins: 0,
                swapped_out_blocks: 0,
                tier_demotions: 0,
                tier_promotions: 0,
                kv_transfers: 0,
                peak_ddr_blocks: 0,
                peak_disk_blocks: 0,
                mean_ddr_occupancy: 0.0,
                mean_disk_occupancy: 0.0,
            }),
        }
    }
}
