//! Per-request records and fleet-level serving metrics: TTFT / TPOT /
//! end-to-end latency percentiles, throughput, and SLO goodput.

use crate::tenant::QosClass;

/// A time-weighted running mean: the integral of a piecewise-constant
/// signal over the elapsed simulation time.
///
/// The event-driven scheduler core observes a value (queue depth, KV
/// occupancy, block utilization) over each inter-event interval, so the
/// mean integrates the signal *exactly* — including idle gaps and the
/// partial intervals an arrival splits a step into — instead of sampling
/// it once per engine step as the old step loop did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeWeightedMean {
    integral: f64,
    elapsed_s: f64,
}

impl TimeWeightedMean {
    /// An empty accumulator (mean 0 until something is observed).
    #[must_use]
    pub fn new() -> Self {
        TimeWeightedMean::default()
    }

    /// Accumulates `value` held constant for `dt_s` seconds.
    pub fn observe(&mut self, value: f64, dt_s: f64) {
        self.integral += value * dt_s;
        self.elapsed_s += dt_s;
    }

    /// Total time observed so far, seconds.
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// The time-weighted mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.integral / self.elapsed_s
        } else {
            0.0
        }
    }
}

/// The lifecycle timestamps of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RequestRecord {
    /// Request id from the trace.
    pub id: usize,
    /// Arrival time (seconds from trace start).
    pub arrival_s: f64,
    /// When the first output token was produced (end of the prefill).
    pub first_token_s: f64,
    /// When the last output token was produced.
    pub completion_s: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Output length in tokens.
    pub output_tokens: usize,
    /// Service class the request was admitted under (Interactive — the
    /// default every pre-tenant record implicitly was — or Batch), so
    /// metrics can break down per class.
    #[serde(default)]
    pub qos: QosClass,
}

impl RequestRecord {
    /// Time to first token: queueing plus prefill.
    #[must_use]
    pub fn ttft_s(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Mean time per output token after the first (0 for single-token
    /// outputs, which have no decode phase).
    #[must_use]
    pub fn tpot_s(&self) -> f64 {
        if self.output_tokens <= 1 {
            0.0
        } else {
            (self.completion_s - self.first_token_s) / (self.output_tokens - 1) as f64
        }
    }

    /// End-to-end latency from arrival to the last token.
    #[must_use]
    pub fn e2e_s(&self) -> f64 {
        self.completion_s - self.arrival_s
    }
}

/// A latency service-level objective. A request meets the SLO when both its
/// TTFT and its TPOT are within bounds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloTarget {
    /// Maximum acceptable time to first token, seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token, seconds.
    pub tpot_s: f64,
}

impl SloTarget {
    /// An interactive-chat objective: first token within 4 s, then a
    /// sustained stream of at least ~7 tokens/s (150 ms/token) — reading
    /// speed, with headroom for prefill interruptions from co-batched
    /// requests.
    #[must_use]
    pub fn interactive() -> Self {
        SloTarget {
            ttft_s: 4.0,
            tpot_s: 0.150,
        }
    }

    /// Whether a completed request met this objective.
    #[must_use]
    pub fn met_by(&self, record: &RequestRecord) -> bool {
        record.ttft_s() <= self.ttft_s && record.tpot_s() <= self.tpot_s
    }
}

/// Nearest-rank percentile (`p` in `[0, 100]`) of an unsorted sample.
/// Returns 0 for an empty sample.
///
/// The sort order is total even when the sample contains NaNs, and every
/// NaN — regardless of its sign bit — ranks above every finite value, so
/// NaNs can only surface at the top percentiles instead of silently
/// scrambling the order (a comparator that treats NaN as equal to
/// everything leaves `sort_by`'s output unspecified, corrupting p50/p99
/// for the *finite* latencies too; bare `f64::total_cmp` would put
/// negative-signed NaNs — what `0.0 / 0.0` produces on x86-64 — *below*
/// the finite values, making the tail optimistic instead of conservative).
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => a.total_cmp(b),
    });
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Order statistics of one latency population.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes a sample (all zeros for an empty one).
    #[must_use]
    pub fn from_sample(values: &[f64]) -> Self {
        let mean = if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        };
        LatencySummary {
            p50_s: percentile(values, 50.0),
            p95_s: percentile(values, 95.0),
            p99_s: percentile(values, 99.0),
            mean_s: mean,
            max_s: values.iter().fold(0.0, |a, &b| a.max(b)),
        }
    }
}

/// Fleet-level metrics of one serving run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingMetrics {
    /// Requests that completed.
    pub completed: usize,
    /// Requests rejected at admission (could never fit the KV budget).
    pub rejected: usize,
    /// Wall-clock span of the run (first arrival to last completion).
    pub makespan_s: f64,
    /// Completed requests per second over the makespan.
    pub throughput_rps: f64,
    /// Generated tokens per second over the makespan.
    pub tokens_per_second: f64,
    /// Time-to-first-token statistics.
    pub ttft: LatencySummary,
    /// Time-per-output-token statistics.
    pub tpot: LatencySummary,
    /// End-to-end latency statistics.
    pub e2e: LatencySummary,
}

/// The divisor rate metrics use for a run of `makespan_s` seconds: a
/// degenerate makespan — zero (an all-rejected or empty run completes no
/// request and never advances the clock), negative, or non-finite — is
/// replaced by `EPSILON` so throughput and goodput stay finite (and, with
/// an empty numerator, exactly zero) instead of going NaN or infinite.
fn positive_span(makespan_s: f64) -> f64 {
    if makespan_s.is_finite() && makespan_s > 0.0 {
        makespan_s
    } else {
        f64::EPSILON
    }
}

impl ServingMetrics {
    /// Builds the metrics of a completed-request population. Guaranteed
    /// finite even for the all-rejected/empty case (zero makespan).
    #[must_use]
    pub fn from_records(records: &[RequestRecord], rejected: usize, makespan_s: f64) -> Self {
        let ttft: Vec<f64> = records.iter().map(RequestRecord::ttft_s).collect();
        let tpot: Vec<f64> = records.iter().map(RequestRecord::tpot_s).collect();
        let e2e: Vec<f64> = records.iter().map(RequestRecord::e2e_s).collect();
        let tokens: u64 = records.iter().map(|r| r.output_tokens as u64).sum();
        let span = positive_span(makespan_s);
        ServingMetrics {
            completed: records.len(),
            rejected,
            makespan_s,
            throughput_rps: records.len() as f64 / span,
            tokens_per_second: tokens as f64 / span,
            ttft: LatencySummary::from_sample(&ttft),
            tpot: LatencySummary::from_sample(&tpot),
            e2e: LatencySummary::from_sample(&e2e),
        }
    }

    /// Requests per second that met `slo` (goodput). Finite for any
    /// makespan, zero for an empty population.
    #[must_use]
    pub fn goodput_rps(records: &[RequestRecord], slo: &SloTarget, makespan_s: f64) -> f64 {
        let good = records.iter().filter(|r| slo.met_by(r)).count();
        good as f64 / positive_span(makespan_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean_integrates_intervals() {
        let mut mean = TimeWeightedMean::new();
        assert_eq!(mean.mean(), 0.0, "empty accumulator");
        // Depth 2 for 1 s, depth 0 for 3 s: mean = 2/4 = 0.5 — a per-step
        // sampler that never saw the idle gap would report 2.0.
        mean.observe(2.0, 1.0);
        mean.observe(0.0, 3.0);
        assert!((mean.mean() - 0.5).abs() < 1e-12);
        assert!((mean.elapsed_s() - 4.0).abs() < 1e-12);
        // Zero-width observations are no-ops.
        mean.observe(1e9, 0.0);
        assert!((mean.mean() - 0.5).abs() < 1e-12);
    }

    fn record(arrival: f64, first: f64, done: f64, output: usize) -> RequestRecord {
        RequestRecord {
            id: 0,
            arrival_s: arrival,
            first_token_s: first,
            completion_s: done,
            prompt_tokens: 10,
            output_tokens: output,
            qos: QosClass::default(),
        }
    }

    #[test]
    fn derived_latencies() {
        let r = record(1.0, 1.5, 2.5, 11);
        assert!((r.ttft_s() - 0.5).abs() < 1e-12);
        assert!((r.tpot_s() - 0.1).abs() < 1e-12);
        assert!((r.e2e_s() - 1.5).abs() < 1e-12);
        assert_eq!(record(0.0, 1.0, 1.0, 1).tpot_s(), 0.0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&values, 50.0), 50.0);
        assert_eq!(percentile(&values, 99.0), 99.0);
        assert_eq!(percentile(&values, 100.0), 100.0);
        assert_eq!(percentile(&values, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    /// Regression: a single NaN used to leave the sort order unspecified
    /// (`partial_cmp(..).unwrap_or(Equal)` is not a total order), so the
    /// *finite* percentiles silently corrupted. Now the finite ranks are
    /// exact and NaN — of either sign — is confined to the very top.
    #[test]
    fn nan_latencies_do_not_corrupt_finite_percentiles() {
        // Runtime NaNs (e.g. 0.0/0.0 on x86-64) are negative-signed; they
        // must rank above the finite values exactly like the positive
        // constant (bare `total_cmp` would sort them *below* everything).
        let negative_nan = -f64::NAN;
        assert!(negative_nan.is_sign_negative());
        let values = [5.0, negative_nan, 1.0, 4.0, f64::NAN, 2.0, 3.0];
        // Ranks 1..=5 are the finite values in order; the NaNs sort last.
        assert_eq!(percentile(&values, 1.0), 1.0);
        assert_eq!(percentile(&values, 50.0), 4.0);
        assert_eq!(percentile(&values, 5.0 / 7.0 * 100.0), 5.0);
        assert!(percentile(&values, 100.0).is_nan());
        // A NaN-free sample is untouched by the comparator change.
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 50.0), 3.0);
    }

    /// Regression: an all-rejected (or empty) run has no records and a
    /// degenerate makespan; every derived metric must stay finite — zero
    /// throughput/goodput, not NaN or infinity.
    #[test]
    fn all_rejected_runs_produce_finite_metrics() {
        for makespan in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let metrics = ServingMetrics::from_records(&[], 5, makespan);
            assert_eq!(metrics.completed, 0);
            assert_eq!(metrics.rejected, 5);
            assert!(
                metrics.throughput_rps.is_finite() && metrics.throughput_rps == 0.0,
                "throughput {} for makespan {makespan}",
                metrics.throughput_rps
            );
            assert!(metrics.tokens_per_second.is_finite() && metrics.tokens_per_second == 0.0);
            for summary in [&metrics.ttft, &metrics.tpot, &metrics.e2e] {
                assert!(summary.p50_s.is_finite() && summary.mean_s.is_finite());
            }
            let goodput = ServingMetrics::goodput_rps(&[], &SloTarget::interactive(), makespan);
            assert!(goodput.is_finite() && goodput == 0.0, "goodput {goodput}");
        }
    }

    #[test]
    fn slo_requires_both_bounds() {
        let slo = SloTarget {
            ttft_s: 1.0,
            tpot_s: 0.1,
        };
        assert!(slo.met_by(&record(0.0, 0.9, 1.8, 11)));
        assert!(!slo.met_by(&record(0.0, 1.1, 2.0, 11))); // TTFT too slow
        assert!(!slo.met_by(&record(0.0, 0.5, 2.5, 11))); // TPOT too slow
    }

    #[test]
    fn metrics_aggregate_and_goodput_counts_only_good_requests() {
        let records = vec![
            record(0.0, 0.5, 1.2, 11), // good (TPOT 70 ms)
            record(0.0, 5.0, 5.7, 11), // bad TTFT
            record(1.0, 1.4, 2.1, 11), // good
        ];
        let metrics = ServingMetrics::from_records(&records, 2, 10.0);
        assert_eq!(metrics.completed, 3);
        assert_eq!(metrics.rejected, 2);
        assert!((metrics.throughput_rps - 0.3).abs() < 1e-12);
        assert!((metrics.tokens_per_second - 3.3).abs() < 1e-12);
        assert!(metrics.ttft.max_s >= metrics.ttft.p50_s);
        let goodput = ServingMetrics::goodput_rps(&records, &SloTarget::interactive(), 10.0);
        assert!((goodput - 0.2).abs() < 1e-12);
    }
}
