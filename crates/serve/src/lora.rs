//! Paged LoRA adapters: per-tenant adapter identities, the adapter-weight
//! paging model, and the deterministic LRU adapter cache the schedulers
//! consult at every batch step.
//!
//! The S-LoRA observation, transplanted into the simulator: per-tenant
//! adapter weights are small relative to the base model but numerous, so
//! they should share the paged KV block pool instead of pinning HBM
//! permanently. Here an [`AdapterModel`] describes the per-adapter weight
//! footprint and the cache capacity; the paged scheduler carves the
//! corresponding blocks out of its [`crate::BlockAllocator`] up front, and
//! every batch step that activates a non-resident adapter pays a weight
//! load priced by [`crate::ServingCostModel::adapter_load_seconds`]. The
//! reserve-up-front schedulers hold the cache outside the block pool (they
//! have no allocator) but run the identical LRU and pay the identical
//! penalty, so policy comparisons isolate the admission axis.
//!
//! Everything here is deterministic and shared verbatim between the event
//! cores and the test-only reference loops, so trace equivalence holds bit
//! for bit on adapter-carrying workloads too.

/// Identity of one LoRA adapter. `AdapterId::BASE` (the `Default`) is the
/// base model itself — no adapter weights to page, no switch penalty —
/// which keeps adapter-free traces bit-identical to their pre-tenant runs.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct AdapterId(pub u32);

impl AdapterId {
    /// The base model: no adapter.
    pub const BASE: AdapterId = AdapterId(0);

    /// Whether this request runs the unadapted base model.
    #[must_use]
    pub fn is_base(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for AdapterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_base() {
            write!(f, "base")
        } else {
            write!(f, "lora-{}", self.0)
        }
    }
}

/// The adapter-paging model of one serving config: how much weight traffic
/// an adapter load moves and how many adapters the cache keeps resident.
///
/// [`AdapterModel::disabled`] (the serde default) prices nothing and
/// reserves nothing — the degenerate config every pre-tenant run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AdapterModel {
    /// Per-adapter weight footprint, in KV-token equivalents (the unit the
    /// block pool is denominated in; the paged scheduler rounds it up to
    /// whole blocks).
    pub weight_tokens: usize,
    /// Adapters the cache keeps resident at once.
    pub cache_slots: usize,
}

impl AdapterModel {
    /// No adapters: nothing reserved, nothing priced.
    #[must_use]
    pub fn disabled() -> Self {
        AdapterModel {
            weight_tokens: 0,
            cache_slots: 0,
        }
    }

    /// An adapter model with `weight_tokens` of weight traffic per load and
    /// room for `cache_slots` resident adapters.
    ///
    /// # Panics
    ///
    /// Panics if either is zero (use [`AdapterModel::disabled`] for "no
    /// adapters" instead of a half-enabled config).
    #[must_use]
    pub fn new(weight_tokens: usize, cache_slots: usize) -> Self {
        assert!(
            weight_tokens > 0,
            "adapter weight footprint must be positive"
        );
        assert!(cache_slots > 0, "adapter cache needs at least one slot");
        AdapterModel {
            weight_tokens,
            cache_slots,
        }
    }

    /// Whether adapter paging is modeled at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.weight_tokens > 0 && self.cache_slots > 0
    }

    /// Whole KV blocks one adapter's weights occupy.
    #[must_use]
    pub fn blocks_per_adapter(&self, block_size: usize) -> usize {
        self.weight_tokens.div_ceil(block_size.max(1))
    }

    /// Blocks the paged scheduler carves out of its pool for the whole
    /// cache (`cache_slots` adapters' worth).
    #[must_use]
    pub fn reserved_blocks(&self, block_size: usize) -> usize {
        self.cache_slots * self.blocks_per_adapter(block_size)
    }
}

/// Adapter-cache counters of one serving run, reported in
/// [`crate::ServingReport`]. All fields are exact counts, so the event
/// cores and the reference loops must (and do) agree on them bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct AdapterStats {
    /// Batch-step adapter activations served from the cache.
    pub cache_hits: usize,
    /// Activations that had to load the adapter's weights (the priced
    /// cache-miss penalty).
    pub cache_loads: usize,
    /// Resident adapters displaced to make room for a load.
    pub evictions: usize,
    /// Most adapters resident at once.
    pub peak_resident: usize,
    /// KV-pool blocks reserved for adapter weights (0 on the
    /// reserve-up-front schedulers, which hold the cache outside the pool).
    pub reserved_blocks: usize,
}

impl AdapterStats {
    /// Fraction of adapter activations served without a weight load (0 for
    /// an adapter-free run).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_loads;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A deterministic LRU cache of resident adapters.
///
/// `touch` is the only mutation: a hit refreshes recency, a miss loads the
/// adapter (evicting the coldest resident when full) and reports `false`
/// so the scheduler can price the load. Linear scans are deliberate — the
/// slot count is a handful, and the flat `Vec` keeps iteration order (and
/// therefore every counter) identical between the event cores and the
/// reference loops.
#[derive(Debug, Clone, PartialEq)]
pub struct AdapterCache {
    slots: usize,
    /// Resident adapters, coldest first.
    resident: Vec<AdapterId>,
    stats: AdapterStats,
}

impl AdapterCache {
    /// An empty cache with room for `slots` adapters.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        AdapterCache {
            slots,
            resident: Vec::with_capacity(slots),
            stats: AdapterStats::default(),
        }
    }

    /// Activates `adapter` for the coming batch step: `true` if its weights
    /// were already resident (refreshing recency), `false` if they had to
    /// be loaded — the caller prices that load. Zero-slot caches miss on
    /// every activation and keep nothing resident.
    ///
    /// # Panics
    ///
    /// Panics on [`AdapterId::BASE`]: the base model is always resident and
    /// must never be routed through the cache.
    pub fn touch(&mut self, adapter: AdapterId) -> bool {
        assert!(
            !adapter.is_base(),
            "the base model is not a cacheable adapter"
        );
        if let Some(position) = self.resident.iter().position(|&a| a == adapter) {
            let adapter = self.resident.remove(position);
            self.resident.push(adapter);
            self.stats.cache_hits += 1;
            return true;
        }
        self.stats.cache_loads += 1;
        if self.slots == 0 {
            return false;
        }
        if self.resident.len() == self.slots {
            self.resident.remove(0);
            self.stats.evictions += 1;
        }
        self.resident.push(adapter);
        self.stats.peak_resident = self.stats.peak_resident.max(self.resident.len());
        false
    }

    /// Adapters currently resident.
    #[must_use]
    pub fn resident_adapters(&self) -> usize {
        self.resident.len()
    }

    /// Records the KV-pool blocks the paged scheduler carved out for this
    /// cache, so the reservation shows up in [`AdapterStats`].
    pub fn set_reserved_blocks(&mut self, blocks: usize) {
        self.stats.reserved_blocks = blocks;
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> AdapterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_adapter_is_the_default_and_displays() {
        assert_eq!(AdapterId::default(), AdapterId::BASE);
        assert!(AdapterId::BASE.is_base());
        assert!(!AdapterId(3).is_base());
        assert_eq!(AdapterId::BASE.to_string(), "base");
        assert_eq!(AdapterId(3).to_string(), "lora-3");
    }

    #[test]
    fn disabled_model_reserves_and_prices_nothing() {
        let model = AdapterModel::disabled();
        assert!(!model.enabled());
        assert_eq!(model.reserved_blocks(16), 0);
        let model = AdapterModel::new(96, 4);
        assert!(model.enabled());
        assert_eq!(model.blocks_per_adapter(16), 6);
        assert_eq!(model.blocks_per_adapter(64), 2, "rounded up");
        assert_eq!(model.reserved_blocks(64), 8);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn half_enabled_models_are_rejected() {
        let _ = AdapterModel::new(96, 0);
    }

    #[test]
    fn lru_cache_hits_refresh_recency_and_misses_evict_the_coldest() {
        let mut cache = AdapterCache::new(2);
        assert!(!cache.touch(AdapterId(1)), "cold load");
        assert!(!cache.touch(AdapterId(2)));
        assert!(cache.touch(AdapterId(1)), "resident");
        // 2 is now the coldest; loading 3 evicts it.
        assert!(!cache.touch(AdapterId(3)));
        assert!(!cache.touch(AdapterId(2)), "was evicted");
        let stats = cache.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_loads, 4);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.peak_resident, 2);
        assert_eq!(cache.resident_adapters(), 2);
        assert!((stats.hit_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_slot_cache_misses_everything_without_residency() {
        let mut cache = AdapterCache::new(0);
        assert!(!cache.touch(AdapterId(1)));
        assert!(!cache.touch(AdapterId(1)));
        assert_eq!(cache.resident_adapters(), 0);
        assert_eq!(cache.stats().cache_loads, 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "not a cacheable adapter")]
    fn base_model_never_enters_the_cache() {
        let mut cache = AdapterCache::new(2);
        let _ = cache.touch(AdapterId::BASE);
    }
}
