//! The discrete-event queue driving the serving schedulers.
//!
//! The scheduler's run loop ([`crate::scheduler`]) used to advance time by
//! stepping: every iteration probed the trace for due arrivals, walked the
//! running batch, and re-derived occupancy by scanning every sequence's
//! blocks. This module replaces the *time advance* half of that loop with
//! an explicit event queue: a binary min-heap of [`Scheduled`] entries
//! ordered by firing time, with deterministic tie-breaking, over the typed
//! [`Event`]s of a serving simulation:
//!
//! * [`Event::Arrival`] — a request enters the admission queue. Arrivals
//!   are scheduled lazily (one outstanding event cursors through the
//!   sorted trace), so the heap stays O(batch) deep regardless of trace
//!   length and the old per-iteration `next_arrival` probe disappears.
//! * [`Event::PrefillDone`] / [`Event::DecodeDone`] — the engine finishes
//!   a prefill wave or one decode step. These are the *batch boundaries*
//!   of iteration-level scheduling: retirement, admission, and the next
//!   step launch all happen when one fires.
//! * [`Event::Preemption`] — a preempt-by-recompute victim re-enters the
//!   admission queue at the step boundary that evicted it. (Prefix-cache
//!   *eviction* itself stays synchronous inside the allocation that needs
//!   the block — it must free a block mid-step — so it needs no event.)
//!
//! # Ordering and determinism
//!
//! The heap pops strictly by `(time, event rank, sequence number)`:
//! co-timed events fire arrivals first, then preemption re-queues, then
//! step completions, and events of the same kind fire in the order they
//! were scheduled (`seq` is a monotone counter). `f64::total_cmp` makes
//! the order total even for pathological times, so two runs of the same
//! trace pop the exact same event sequence — the determinism the
//! `event_determinism` integration suite pins.

use std::collections::BinaryHeap;

/// One typed simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A request (index into the trace) reaches the server.
    Arrival {
        /// Index of the arriving request in the trace's request slice.
        request: usize,
    },
    /// A request's shipped KV finishes crossing the interconnect (the
    /// disaggregated mode's prefill → decode transfer,
    /// [`crate::KvShipSpec`]); the request becomes admissible.
    KvTransferDone {
        /// Index of the request in the trace's request slice.
        request: usize,
    },
    /// A preempted request re-enters the admission queue (at the front:
    /// preempted work outranks new arrivals).
    Preemption {
        /// Index of the preempted request in the trace's request slice.
        request: usize,
    },
    /// A swap-preempted victim's KV finishes writing out to a lower tier
    /// ([`crate::KvTierModel`]); the victim re-enters the admission queue
    /// (at the front, like a recompute preemption).
    SwapOutDone {
        /// Index of the swapped-out request in the trace's request slice.
        request: usize,
    },
    /// A re-admitted victim's KV finishes reading back into HBM; its
    /// decode resumes from the context it was preempted at.
    SwapInDone {
        /// Index of the swapped-in request in the trace's request slice.
        request: usize,
    },
    /// The engine finished a prefill wave (a batch boundary).
    PrefillDone,
    /// The engine finished one decode step (a batch boundary). Under
    /// speculative decoding the step is a draft-and-verify burst and every
    /// decoding sequence retires its accepted tokens when this fires.
    DecodeDone,
    /// The engine finished a chunked batch step (a batch boundary): the
    /// prefill chunks of a [`crate::cost::StepMix`] plus the decode batch
    /// that ran with them.
    ChunkDone,
}

impl Event {
    /// Tie-break rank among co-timed events: arrivals (and arrival-like
    /// KV-transfer landings) fire before preemption-class re-queues
    /// (recompute victims, swap I/O completions), which fire before step
    /// completions — so by the time a boundary is processed, the
    /// admission queue already holds everything that reached the server
    /// at that instant.
    #[must_use]
    pub fn rank(&self) -> u8 {
        match self {
            Event::Arrival { .. } | Event::KvTransferDone { .. } => 0,
            Event::Preemption { .. } | Event::SwapOutDone { .. } | Event::SwapInDone { .. } => 1,
            Event::PrefillDone | Event::DecodeDone | Event::ChunkDone => 2,
        }
    }
}

/// An [`Event`] scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy)]
pub struct Scheduled {
    /// Absolute firing time, seconds from trace start.
    pub at_s: f64,
    /// Monotone scheduling counter — the deterministic tie-break among
    /// co-timed events of equal rank.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl Scheduled {
    /// The heap key: earliest time first, then lowest rank, then lowest
    /// sequence number. Total even for NaN times via `f64::total_cmp`.
    fn key_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at_s
            .total_cmp(&other.at_s)
            .then_with(|| self.event.rank().cmp(&other.event.rank()))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    // Reversed: `BinaryHeap` is a max-heap, and we want the earliest
    // (time, rank, seq) key on top.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key_cmp(self)
    }
}

/// A deterministic discrete-event queue: a binary min-heap over
/// [`Scheduled`] events with push/pop in O(log n).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `at_s`, assigning the next
    /// sequence number (so equal-time, equal-rank events fire in
    /// scheduling order).
    pub fn push(&mut self, at_s: f64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at_s, seq, event });
    }

    /// Pops the earliest event, or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<Scheduled> {
        self.heap.pop()
    }

    /// Pops the earliest event only if it fires at or before `at_s` —
    /// the co-timed drain a step boundary performs before admitting.
    pub fn pop_due(&mut self, at_s: f64) -> Option<Scheduled> {
        if self.heap.peek()?.at_s <= at_s {
            self.heap.pop()
        } else {
            None
        }
    }

    /// The earliest scheduled event, without popping it.
    #[must_use]
    pub fn peek(&self) -> Option<&Scheduled> {
        self.heap.peek()
    }

    /// Scheduled events currently in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::DecodeDone);
        q.push(1.0, Event::Arrival { request: 0 });
        q.push(2.0, Event::PrefillDone);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|s| s.at_s).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn co_timed_events_fire_arrivals_then_preemptions_then_step_ends() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::DecodeDone);
        q.push(1.0, Event::Preemption { request: 7 });
        q.push(1.0, Event::Arrival { request: 3 });
        assert_eq!(q.pop().unwrap().event, Event::Arrival { request: 3 });
        assert_eq!(q.pop().unwrap().event, Event::Preemption { request: 7 });
        assert_eq!(q.pop().unwrap().event, Event::DecodeDone);
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_time_equal_rank_ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        for request in 0..100 {
            q.push(5.0, Event::Arrival { request });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|s| match s.event {
                Event::Arrival { request } => request,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_completions_rank_with_the_step_completions() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::ChunkDone);
        q.push(1.0, Event::Arrival { request: 3 });
        q.push(1.0, Event::Preemption { request: 7 });
        assert_eq!(q.pop().unwrap().event, Event::Arrival { request: 3 });
        assert_eq!(q.pop().unwrap().event, Event::Preemption { request: 7 });
        assert_eq!(q.pop().unwrap().event, Event::ChunkDone);
    }

    #[test]
    fn swap_and_transfer_events_rank_with_their_class() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::DecodeDone);
        q.push(1.0, Event::SwapInDone { request: 4 });
        q.push(1.0, Event::SwapOutDone { request: 2 });
        q.push(1.0, Event::KvTransferDone { request: 9 });
        q.push(1.0, Event::Arrival { request: 1 });
        // Arrival-class first (scheduling order within the class), then
        // the preemption class, then the step end.
        assert_eq!(q.pop().unwrap().event, Event::KvTransferDone { request: 9 });
        assert_eq!(q.pop().unwrap().event, Event::Arrival { request: 1 });
        assert_eq!(q.pop().unwrap().event, Event::SwapInDone { request: 4 });
        assert_eq!(q.pop().unwrap().event, Event::SwapOutDone { request: 2 });
        assert_eq!(q.pop().unwrap().event, Event::DecodeDone);
    }

    #[test]
    fn pop_due_drains_only_up_to_the_given_instant() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::Arrival { request: 0 });
        q.push(1.0, Event::Arrival { request: 1 });
        q.push(2.0, Event::Arrival { request: 2 });
        assert!(q.pop_due(0.5).is_none());
        assert_eq!(q.pop_due(1.0).unwrap().event, Event::Arrival { request: 0 });
        assert_eq!(q.pop_due(1.0).unwrap().event, Event::Arrival { request: 1 });
        assert!(q.pop_due(1.0).is_none());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.peek().unwrap().at_s, 2.0);
    }
}
