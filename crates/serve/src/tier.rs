//! Tiered KV offload: an HBM → DDR → disk-class hierarchy for KV-cache
//! blocks, priced consistently with [`deca_llm::InterconnectModel`]
//! (`bytes / bandwidth + latency`).
//!
//! HBM is tier zero — the [`crate::BlockAllocator`] pool itself. This
//! module models the tiers *below* it: where swapped-out sequences and
//! demoted cold prefixes live, how many blocks each tier holds, and what
//! a transfer costs. The paged scheduler uses the model two ways:
//!
//! - **Swap instead of recompute.** When decode runs out of HBM blocks
//!   and must preempt a victim, it compares the modeled swap-out +
//!   swap-in cost against re-prefilling the victim's context and takes
//!   the cheaper path ([`KvTierModel::swap_out_seconds`] /
//!   [`KvTierModel::swap_in_seconds`] vs
//!   [`crate::ServingCostModel::prefill_seconds`]).
//! - **Demote instead of evict.** When the radix prefix cache evicts a
//!   cold block, its tokens demote to DDR (spilling to disk) instead of
//!   vanishing; a later request whose prompt covers the demoted path
//!   promotes the block back, paying the swap-in transfer rather than a
//!   fresh prefill.
//!
//! [`KvShipSpec`] prices the third movement class: shipping a prefilled
//! sequence's KV from a prefill-pool replica to a decode-pool replica
//! over the inter-socket interconnect (the disaggregated mode in
//! [`crate::sweep`]).

use std::collections::{HashMap, VecDeque};

use deca_llm::InterconnectModel;

/// Which tier below HBM a block lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TierKind {
    /// The host DDR pool: large, ~an order of magnitude slower than HBM.
    Ddr,
    /// The disk-class pool (NVMe): huge, two orders slower than DDR.
    Disk,
}

/// One tier's capacity and transfer pricing. A transfer of `bytes` costs
/// `bytes / (bandwidth_gbps * 1e9) + latency_us * 1e-6` seconds — the
/// same shape as [`InterconnectModel::point_to_point_seconds`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KvTierSpec {
    /// How many KV blocks the tier holds. Zero disables the tier.
    pub capacity_blocks: usize,
    /// Transfer bandwidth between HBM and this tier, GB/s.
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer latency, microseconds.
    pub latency_us: f64,
}

impl KvTierSpec {
    /// A disabled tier: zero capacity, free (never exercised) transfers.
    #[must_use]
    pub fn disabled() -> Self {
        KvTierSpec {
            capacity_blocks: 0,
            bandwidth_gbps: f64::INFINITY,
            latency_us: 0.0,
        }
    }

    /// A DDR-class tier: ~200 GB/s sustained over the memory bus, sub-µs
    /// setup.
    #[must_use]
    pub fn ddr(capacity_blocks: usize) -> Self {
        KvTierSpec {
            capacity_blocks,
            bandwidth_gbps: 200.0,
            latency_us: 0.5,
        }
    }

    /// An NVMe disk-class tier: ~6 GB/s, ~80 µs access setup.
    #[must_use]
    pub fn nvme(capacity_blocks: usize) -> Self {
        KvTierSpec {
            capacity_blocks,
            bandwidth_gbps: 6.0,
            latency_us: 80.0,
        }
    }

    /// Seconds to move `bytes` between HBM and this tier.
    #[must_use]
    pub fn transfer_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.bandwidth_gbps * 1e9) + self.latency_us * 1e-6
    }
}

/// The KV tier hierarchy below HBM, plus the size of one block's KV so
/// transfers can be priced in bytes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KvTierModel {
    /// Bytes of (compressed) KV held by one full block.
    pub block_kv_bytes: f64,
    /// The DDR tier (first choice for swap-outs and demotions).
    pub ddr: KvTierSpec,
    /// The disk-class tier (overflow when DDR is full).
    pub disk: KvTierSpec,
}

impl KvTierModel {
    /// No tiers: the degenerate config under which the paged scheduler
    /// reproduces its recompute-only behavior bit for bit.
    #[must_use]
    pub fn disabled() -> Self {
        KvTierModel {
            block_kv_bytes: 0.0,
            ddr: KvTierSpec::disabled(),
            disk: KvTierSpec::disabled(),
        }
    }

    /// A DDR-only hierarchy.
    #[must_use]
    pub fn ddr_only(block_kv_bytes: f64, capacity_blocks: usize) -> Self {
        KvTierModel {
            block_kv_bytes,
            ddr: KvTierSpec::ddr(capacity_blocks),
            disk: KvTierSpec::disabled(),
        }
    }

    /// Whether any tier below HBM has capacity. When false the scheduler
    /// takes exactly its pre-tiering code path.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.ddr.capacity_blocks > 0 || self.disk.capacity_blocks > 0
    }

    fn spec(&self, tier: TierKind) -> &KvTierSpec {
        match tier {
            TierKind::Ddr => &self.ddr,
            TierKind::Disk => &self.disk,
        }
    }

    /// Seconds to write `blocks` KV blocks from HBM out to `tier`.
    #[must_use]
    pub fn swap_out_seconds(&self, tier: TierKind, blocks: usize) -> f64 {
        self.spec(tier)
            .transfer_seconds(blocks as f64 * self.block_kv_bytes)
    }

    /// Seconds to read `blocks` KV blocks from `tier` back into HBM.
    #[must_use]
    pub fn swap_in_seconds(&self, tier: TierKind, blocks: usize) -> f64 {
        self.spec(tier)
            .transfer_seconds(blocks as f64 * self.block_kv_bytes)
    }
}

/// Pricing for shipping a prefilled sequence's KV from a prefill-pool
/// replica to a decode-pool replica over the interconnect. Disabled
/// (the default) when `bytes_per_token` is zero — the scheduler then
/// never schedules a [`crate::event::Event::KvTransferDone`] and takes
/// its pre-disaggregation arrival path exactly.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KvShipSpec {
    /// Bytes of (compressed) KV per context token.
    pub bytes_per_token: f64,
    /// Interconnect bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer latency, microseconds.
    pub latency_us: f64,
}

impl KvShipSpec {
    /// No shipping: requests arrive with their KV already local.
    #[must_use]
    pub fn disabled() -> Self {
        KvShipSpec {
            bytes_per_token: 0.0,
            bandwidth_gbps: f64::INFINITY,
            latency_us: 0.0,
        }
    }

    /// Ship `bytes_per_token` of KV per context token over `link`.
    #[must_use]
    pub fn over_interconnect(bytes_per_token: f64, link: &InterconnectModel) -> Self {
        KvShipSpec {
            bytes_per_token,
            bandwidth_gbps: link.link_bandwidth_gbps,
            latency_us: link.link_latency_us,
        }
    }

    /// Whether arrivals carry a KV transfer.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.bytes_per_token > 0.0
    }

    /// Seconds to ship a `context_tokens`-token KV over the link.
    #[must_use]
    pub fn transfer_seconds(&self, context_tokens: usize) -> f64 {
        context_tokens as f64 * self.bytes_per_token / (self.bandwidth_gbps * 1e9)
            + self.latency_us * 1e-6
    }
}

/// Chained path hash identifying one full block by *all* tokens from the
/// prompt start through the block: `h_{k+1} = chain_hash(h_k, block_k)`,
/// starting from [`PATH_HASH_SEED`]. The prefix cache and the residency
/// map both key demoted blocks by this hash, so a demoted block is
/// recognized by any later prompt sharing its whole prefix.
#[must_use]
pub fn chain_hash(parent: u64, block_tokens: &[u64]) -> u64 {
    let mut h = mix(parent ^ 0x2545_f491_4f6c_dd1d);
    for &token in block_tokens {
        h = mix(h ^ mix(token));
    }
    h
}

/// The root hash a chained path starts from.
pub const PATH_HASH_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64's output mixer — the same shape the workload generator
/// uses, good 64-bit avalanche.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Runtime occupancy of the tiers below HBM: which demoted prefix blocks
/// live where (keyed by chained path hash), and how many blocks each
/// tier holds (demoted prefixes *plus* swap-out reservations).
///
/// Swap-outs outrank cold prefixes: when a swap reservation needs room,
/// the oldest demoted blocks are dropped (FIFO) to make it. Entirely
/// deterministic — the hash maps are only ever probed by key, never
/// iterated.
#[derive(Debug, Clone)]
pub struct TierResidency {
    model: KvTierModel,
    demoted: HashMap<u64, TierKind>,
    ddr_order: VecDeque<u64>,
    disk_order: VecDeque<u64>,
    /// Demoted prefix blocks per tier (droppable to make swap room).
    ddr_demoted: usize,
    disk_demoted: usize,
    /// Swap-out reservations per tier (live sequences — never dropped).
    ddr_reserved: usize,
    disk_reserved: usize,
}

impl TierResidency {
    /// An empty residency map over `model`.
    #[must_use]
    pub fn new(model: KvTierModel) -> Self {
        TierResidency {
            model,
            demoted: HashMap::new(),
            ddr_order: VecDeque::new(),
            disk_order: VecDeque::new(),
            ddr_demoted: 0,
            disk_demoted: 0,
            ddr_reserved: 0,
            disk_reserved: 0,
        }
    }

    /// The tier model this residency tracks.
    #[must_use]
    pub fn model(&self) -> &KvTierModel {
        &self.model
    }

    /// Blocks currently held in `tier` (demoted prefixes + swap
    /// reservations).
    #[must_use]
    pub fn used_blocks(&self, tier: TierKind) -> usize {
        match tier {
            TierKind::Ddr => self.ddr_demoted + self.ddr_reserved,
            TierKind::Disk => self.disk_demoted + self.disk_reserved,
        }
    }

    /// Blocks of headroom left in `tier`.
    #[must_use]
    pub fn free_blocks(&self, tier: TierKind) -> usize {
        self.model.spec(tier).capacity_blocks - self.used_blocks(tier)
    }

    fn demoted_mut(&mut self, tier: TierKind) -> &mut usize {
        match tier {
            TierKind::Ddr => &mut self.ddr_demoted,
            TierKind::Disk => &mut self.disk_demoted,
        }
    }

    fn reserved(&self, tier: TierKind) -> usize {
        match tier {
            TierKind::Ddr => self.ddr_reserved,
            TierKind::Disk => self.disk_reserved,
        }
    }

    /// The tier a `blocks`-block swap reservation would land in (DDR
    /// before disk), or `None` when no tier could hold it even after
    /// dropping every demoted prefix. Side-effect free — the cost check
    /// a preemption runs before committing to the swap.
    #[must_use]
    pub fn can_reserve(&self, blocks: usize) -> Option<TierKind> {
        [TierKind::Ddr, TierKind::Disk]
            .into_iter()
            .find(|&tier| self.model.spec(tier).capacity_blocks >= self.reserved(tier) + blocks)
    }

    /// Drops the oldest demoted blocks from `tier` until it has at least
    /// `need` free blocks or no demoted blocks remain.
    fn make_room(&mut self, tier: TierKind, need: usize) {
        while self.free_blocks(tier) < need {
            let order = match tier {
                TierKind::Ddr => &mut self.ddr_order,
                TierKind::Disk => &mut self.disk_order,
            };
            let Some(hash) = order.pop_front() else {
                return;
            };
            // Lazy deletion: skip entries promoted (or re-demoted to the
            // other tier) since they were queued.
            if self.demoted.get(&hash) == Some(&tier) {
                self.demoted.remove(&hash);
                *self.demoted_mut(tier) -= 1;
            }
        }
    }

    /// Reserves room for a `blocks`-block swap-out, dropping demoted
    /// prefixes if needed (a live sequence's KV outranks a cold
    /// prefix's). Returns the tier that took the reservation — always
    /// [`TierResidency::can_reserve`]'s answer — or `None` when no tier
    /// can hold it.
    pub fn reserve_swap(&mut self, blocks: usize) -> Option<TierKind> {
        let tier = self.can_reserve(blocks)?;
        self.make_room(tier, blocks);
        debug_assert!(self.free_blocks(tier) >= blocks);
        match tier {
            TierKind::Ddr => self.ddr_reserved += blocks,
            TierKind::Disk => self.disk_reserved += blocks,
        }
        Some(tier)
    }

    /// Releases a `blocks`-block reservation from `tier` (swap-in landed
    /// or the sequence retired).
    pub fn release(&mut self, tier: TierKind, blocks: usize) {
        let reserved = match tier {
            TierKind::Ddr => &mut self.ddr_reserved,
            TierKind::Disk => &mut self.disk_reserved,
        };
        debug_assert!(*reserved >= blocks, "released more than was reserved");
        *reserved -= blocks;
    }

    /// Demotes one evicted prefix block (identified by its chained path
    /// hash) into the first tier with headroom, DDR before disk. Returns
    /// the receiving tier, or `None` when both tiers are full — the
    /// block is then simply gone, exactly as under plain eviction.
    pub fn demote(&mut self, hash: u64) -> Option<TierKind> {
        if let Some(&tier) = self.demoted.get(&hash) {
            return Some(tier); // already resident below HBM
        }
        for tier in [TierKind::Ddr, TierKind::Disk] {
            if self.free_blocks(tier) >= 1 {
                self.demoted.insert(hash, tier);
                *self.demoted_mut(tier) += 1;
                match tier {
                    TierKind::Ddr => self.ddr_order.push_back(hash),
                    TierKind::Disk => self.disk_order.push_back(hash),
                }
                return Some(tier);
            }
        }
        None
    }

    /// Looks up a demoted block by path hash without moving it.
    #[must_use]
    pub fn demoted_tier(&self, hash: u64) -> Option<TierKind> {
        self.demoted.get(&hash).copied()
    }

    /// Promotes a demoted block back to HBM: removes it from its tier
    /// and returns which tier it came from (pricing the swap-in), or
    /// `None` if the hash is not resident.
    pub fn promote(&mut self, hash: u64) -> Option<TierKind> {
        let tier = self.demoted.remove(&hash)?;
        *self.demoted_mut(tier) -= 1;
        Some(tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_pricing_matches_the_interconnect_shape() {
        let link = InterconnectModel {
            link_bandwidth_gbps: 50.0,
            link_latency_us: 2.0,
        };
        let tier = KvTierSpec {
            capacity_blocks: 10,
            bandwidth_gbps: 50.0,
            latency_us: 2.0,
        };
        let bytes = 1_000_000.0;
        assert_eq!(
            tier.transfer_seconds(bytes),
            link.point_to_point_seconds(bytes)
        );
        let ship = KvShipSpec::over_interconnect(100.0, &link);
        assert_eq!(
            ship.transfer_seconds(10_000),
            link.point_to_point_seconds(100.0 * 10_000.0)
        );
    }

    #[test]
    fn disabled_configs_report_disabled() {
        assert!(!KvTierModel::disabled().enabled());
        assert!(!KvShipSpec::disabled().enabled());
        assert!(KvTierModel::ddr_only(1024.0, 8).enabled());
        assert!(KvShipSpec::over_interconnect(64.0, &InterconnectModel::spr_upi()).enabled());
    }

    #[test]
    fn swap_costs_scale_with_blocks_and_tier_speed() {
        let model = KvTierModel {
            block_kv_bytes: 1024.0 * 1024.0,
            ddr: KvTierSpec::ddr(64),
            disk: KvTierSpec::nvme(1024),
        };
        let ddr = model.swap_in_seconds(TierKind::Ddr, 8);
        let disk = model.swap_in_seconds(TierKind::Disk, 8);
        assert!(ddr > 0.0 && disk > ddr, "disk is the slower tier");
        assert!(
            model.swap_out_seconds(TierKind::Ddr, 16) > model.swap_out_seconds(TierKind::Ddr, 8)
        );
    }

    #[test]
    fn reservations_fill_ddr_then_spill_to_disk() {
        let model = KvTierModel {
            block_kv_bytes: 1024.0,
            ddr: KvTierSpec::ddr(4),
            disk: KvTierSpec::nvme(8),
        };
        let mut residency = TierResidency::new(model);
        assert_eq!(residency.reserve_swap(3), Some(TierKind::Ddr));
        // DDR has 1 free block left; a 2-block swap spills to disk.
        assert_eq!(residency.reserve_swap(2), Some(TierKind::Disk));
        assert_eq!(residency.used_blocks(TierKind::Ddr), 3);
        assert_eq!(residency.used_blocks(TierKind::Disk), 2);
        // Nothing can hold 9 blocks.
        assert_eq!(residency.reserve_swap(9), None);
        residency.release(TierKind::Ddr, 3);
        assert_eq!(residency.free_blocks(TierKind::Ddr), 4);
    }

    #[test]
    fn swap_reservations_drop_the_oldest_demoted_prefixes() {
        let model = KvTierModel {
            block_kv_bytes: 1024.0,
            ddr: KvTierSpec::ddr(3),
            disk: KvTierSpec::disabled(),
        };
        let mut residency = TierResidency::new(model);
        for hash in [11, 22, 33] {
            assert_eq!(residency.demote(hash), Some(TierKind::Ddr));
        }
        assert_eq!(residency.free_blocks(TierKind::Ddr), 0);
        // A 2-block swap drops the two oldest demotions (11 and 22).
        assert_eq!(residency.reserve_swap(2), Some(TierKind::Ddr));
        assert_eq!(residency.demoted_tier(11), None);
        assert_eq!(residency.demoted_tier(22), None);
        assert_eq!(residency.demoted_tier(33), Some(TierKind::Ddr));
    }

    #[test]
    fn demotion_spills_and_promotion_frees() {
        let model = KvTierModel {
            block_kv_bytes: 1024.0,
            ddr: KvTierSpec::ddr(1),
            disk: KvTierSpec::nvme(1),
        };
        let mut residency = TierResidency::new(model);
        assert_eq!(residency.demote(7), Some(TierKind::Ddr));
        assert_eq!(residency.demote(8), Some(TierKind::Disk));
        assert_eq!(residency.demote(9), None, "both tiers full: dropped");
        // Re-demoting a resident hash is a no-op reporting its home.
        assert_eq!(residency.demote(7), Some(TierKind::Ddr));
        assert_eq!(residency.used_blocks(TierKind::Ddr), 1);
        assert_eq!(residency.promote(7), Some(TierKind::Ddr));
        assert_eq!(residency.promote(7), None);
        assert_eq!(residency.free_blocks(TierKind::Ddr), 1);
    }

    #[test]
    fn chained_hashes_distinguish_paths_and_positions() {
        let a = chain_hash(PATH_HASH_SEED, &[1, 2, 3, 4]);
        let b = chain_hash(PATH_HASH_SEED, &[1, 2, 3, 5]);
        assert_ne!(a, b, "different tokens, different hash");
        let deep_a = chain_hash(a, &[9, 9, 9, 9]);
        let deep_b = chain_hash(b, &[9, 9, 9, 9]);
        assert_ne!(deep_a, deep_b, "same block under different parents");
        assert_eq!(chain_hash(a, &[9, 9, 9, 9]), deep_a, "deterministic");
    }
}
