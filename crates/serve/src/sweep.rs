//! Fleet-level sweeps: multi-replica simulation, the SLO capacity search
//! that turns "DECA vs software decompression" into "requests/sec per
//! socket at a p99 SLO", and the sharding sweep that answers "how many
//! sockets does a scheme need to hold its KV working set *and* hit the p99
//! SLO?".

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{footprint, parallel, InterconnectModel, LlmModel, ShardSpec};
use deca_roofsurface::MachineConfig;

use crate::cost::EstimatorCostModel;
use crate::metrics::{percentile, RequestRecord, ServingMetrics, SloTarget};
use crate::scheduler::{ServingConfig, ServingReport, ServingSimulator};
use crate::workload::{RequestTrace, WorkloadSpec};

/// The KV budget (tokens) the HBM headroom sustains for a model/scheme, or
/// `None` when the compressed weights alone do not fit in HBM (such schemes
/// cannot be served from HBM at all — the paper simulates them with larger
/// capacity).
#[must_use]
pub fn hbm_kv_budget_tokens(model: &LlmModel, scheme: &CompressionScheme) -> Option<usize> {
    footprint::max_kv_tokens(model, scheme).map(|tokens| tokens as usize)
}

/// The KV budget (tokens) of one *sharded* replica — the minimum over
/// pipeline stages of the post-weights headroom divided by the per-token
/// sharded KV cost — or `None` when some socket's weight shard does not
/// fit. With [`ShardSpec::single`] this is exactly
/// [`hbm_kv_budget_tokens`].
#[must_use]
pub fn sharded_kv_budget_tokens(
    model: &LlmModel,
    scheme: &CompressionScheme,
    spec: &ShardSpec,
) -> Option<usize> {
    parallel::sharded_max_kv_tokens(model, scheme, spec).map(|tokens| tokens as usize)
}

/// What a sharding sweep demands of every candidate plan: hold a KV
/// working set of `required_kv_tokens` and serve `workload` within `slo`
/// at the 99th percentile.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardingSearchSpec {
    /// The p99 objective a feasible plan must meet.
    pub slo: SloTarget,
    /// The workload simulated against every servable plan.
    pub workload: WorkloadSpec,
    /// Decode batch limit of the sharded replica.
    pub max_batch: usize,
    /// KV-token working set the plan must be able to hold (e.g. target
    /// concurrent sequences × target context). Plans whose sharded KV
    /// budget falls short are unservable and skip the simulation.
    pub required_kv_tokens: usize,
}

/// The outcome of one sharding plan under a [`ShardingSearchSpec`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardingPlanResult {
    /// The plan.
    pub spec: ShardSpec,
    /// The plan's sharded KV budget (`None`: weights don't fit).
    pub kv_budget_tokens: Option<usize>,
    /// Whether the plan fits the weights *and* the required KV working set
    /// (only servable plans are simulated).
    pub servable: bool,
    /// Whether the simulated p99 TTFT/TPOT met the SLO with no rejections.
    pub feasible: bool,
    /// p99 TTFT of the simulated run, seconds (0 when not simulated).
    pub p99_ttft_s: f64,
    /// p99 TPOT of the simulated run, seconds (0 when not simulated).
    pub p99_tpot_s: f64,
    /// SLO goodput of the simulated run, requests/sec (0 when not
    /// simulated).
    pub goodput_rps: f64,
}

/// Evaluates every candidate sharding plan against the search spec: the
/// sharded KV budget gates servability, and servable plans run the full
/// serving simulation (sharded cost model, continuous batching) to check
/// the p99 SLO. Deterministic: the same inputs always produce the same
/// results.
#[must_use]
pub fn sharding_sweep(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    interconnect: InterconnectModel,
    plans: &[ShardSpec],
    search: &ShardingSearchSpec,
) -> Vec<ShardingPlanResult> {
    let trace = search.workload.generate();
    plans
        .iter()
        .map(|&spec| {
            let kv_budget_tokens = sharded_kv_budget_tokens(model, scheme, &spec);
            let servable = kv_budget_tokens.is_some_and(|b| b >= search.required_kv_tokens);
            let mut result = ShardingPlanResult {
                spec,
                kv_budget_tokens,
                servable,
                feasible: false,
                p99_ttft_s: 0.0,
                p99_tpot_s: 0.0,
                goodput_rps: 0.0,
            };
            if !servable {
                return result;
            }
            let budget = kv_budget_tokens.expect("servable implies a budget");
            let cost = EstimatorCostModel::sharded(
                machine.clone(),
                model.clone(),
                *scheme,
                engine,
                spec,
                interconnect,
            );
            let config = ServingConfig::continuous(search.max_batch, budget);
            let report = ServingSimulator::new(cost, config).run(&trace);
            let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
            let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
            result.p99_ttft_s = percentile(&ttft, 99.0);
            result.p99_tpot_s = percentile(&tpot, 99.0);
            result.goodput_rps = report.goodput_rps(&search.slo);
            result.feasible = report.rejected == 0
                && result.p99_ttft_s <= search.slo.ttft_s
                && result.p99_tpot_s <= search.slo.tpot_s;
            result
        })
        .collect()
}

/// The cheapest feasible plan of a sharding sweep: fewest sockets first
/// (ties broken by candidate order), or `None` when no candidate meets the
/// search spec.
#[must_use]
pub fn min_sockets_for_slo(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    interconnect: InterconnectModel,
    plans: &[ShardSpec],
    search: &ShardingSearchSpec,
) -> Option<ShardingPlanResult> {
    sharding_sweep(machine, model, scheme, engine, interconnect, plans, search)
        .into_iter()
        .filter(|r| r.feasible)
        .min_by_key(|r| r.spec.sockets())
}

/// One replica's share plus its report, and the fleet aggregate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// Replica count.
    pub replicas: usize,
    /// Per-replica reports, in load-balancer order.
    pub reports: Vec<ServingReport>,
}

impl FleetReport {
    /// All completed records across the fleet.
    #[must_use]
    pub fn records(&self) -> Vec<RequestRecord> {
        let mut all: Vec<RequestRecord> = self
            .reports
            .iter()
            .flat_map(|r| r.records.iter().copied())
            .collect();
        all.sort_by_key(|r| r.id);
        all
    }

    /// Fleet makespan: the slowest replica's.
    #[must_use]
    pub fn makespan_s(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.makespan_s)
            .fold(0.0, f64::max)
    }

    /// Total rejected across the fleet.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.reports.iter().map(|r| r.rejected).sum()
    }

    /// Aggregate metrics over the union of completed requests.
    #[must_use]
    pub fn metrics(&self) -> ServingMetrics {
        ServingMetrics::from_records(&self.records(), self.rejected(), self.makespan_s())
    }

    /// Fleet goodput under `slo`.
    #[must_use]
    pub fn goodput_rps(&self, slo: &SloTarget) -> f64 {
        ServingMetrics::goodput_rps(&self.records(), slo, self.makespan_s())
    }
}

/// Simulates a fleet of identical replicas behind a round-robin load
/// balancer, with one cost model per replica drawn from `cost`. The trace
/// is split round-robin across the replicas; every request lands on
/// exactly one, so a fleet run conserves the trace.
///
/// Replicas are independent simulations, so they fan out across OS
/// threads with `std::thread::scope`, banded round-robin over the
/// available cores the same way `ParallelMatrixEngine` bands tiles. The
/// cost-model factory still runs serially in replica order on the calling
/// thread (it is `FnMut` and may carry warm caches), and the reports are
/// reassembled in load-balancer order — the result is byte-identical to
/// the sequential loop.
///
/// # Panics
///
/// Panics if `replicas` is zero, or if a replica's simulation panics on
/// its worker thread.
pub fn simulate_fleet_with<C, F>(
    mut cost: F,
    config: &ServingConfig,
    replicas: usize,
    trace: &RequestTrace,
) -> FleetReport
where
    C: crate::cost::ServingCostModel + Send,
    F: FnMut() -> C,
{
    let shards = trace.split_round_robin(replicas);
    // Build every replica's cost model up front, in replica order.
    let mut jobs: Vec<(usize, RequestTrace, C)> = shards
        .into_iter()
        .enumerate()
        .map(|(idx, shard)| (idx, shard, cost()))
        .collect();
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(replicas)
        .max(1);
    let mut indexed: Vec<(usize, ServingReport)> = if workers <= 1 {
        jobs.drain(..)
            .map(|(idx, shard, cost)| (idx, ServingSimulator::new(cost, *config).run(&shard)))
            .collect()
    } else {
        // Band the replicas round-robin across the workers.
        let mut bands: Vec<Vec<(usize, RequestTrace, C)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (slot, job) in jobs.drain(..).enumerate() {
            bands[slot % workers].push(job);
        }
        let mut collected = Vec::with_capacity(replicas);
        std::thread::scope(|scope| {
            let handles: Vec<_> = bands
                .into_iter()
                .map(|band| {
                    scope.spawn(move || {
                        band.into_iter()
                            .map(|(idx, shard, cost)| {
                                (idx, ServingSimulator::new(cost, *config).run(&shard))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                collected.extend(handle.join().expect("replica worker panicked"));
            }
        });
        collected
    };
    indexed.sort_by_key(|(idx, _)| *idx);
    let reports = indexed.into_iter().map(|(_, report)| report).collect();
    FleetReport { replicas, reports }
}

/// Simulates a fleet of identical replicas behind a round-robin load
/// balancer. Each replica runs the same machine/model/scheme/engine and
/// `config`; the trace is split round-robin across them.
#[must_use]
pub fn simulate_fleet(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    config: &ServingConfig,
    replicas: usize,
    trace: &RequestTrace,
) -> FleetReport {
    simulate_fleet_with(
        || EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine),
        config,
        replicas,
        trace,
    )
}

/// Parameters of an SLO capacity search on one replica.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapacitySpec {
    /// The objective a feasible rate must meet at the 99th percentile.
    pub slo: SloTarget,
    /// Requests simulated per probed rate (more ⇒ tighter percentiles,
    /// slower search).
    pub requests: usize,
    /// Trace seed (the same lengths are replayed at every probed rate).
    pub seed: u64,
    /// Lower bound of the searched rate range (requests/sec).
    pub min_rate: f64,
    /// Upper bound of the searched rate range (requests/sec).
    pub max_rate: f64,
    /// Bisection refinements after bracketing.
    pub iterations: usize,
}

impl CapacitySpec {
    /// A default chat-serving search: interactive SLO, a modest trace per
    /// probe, rates from 0.25 to 64 req/s.
    #[must_use]
    pub fn chat(requests: usize, seed: u64) -> Self {
        CapacitySpec {
            slo: SloTarget::interactive(),
            requests,
            seed,
            min_rate: 0.25,
            max_rate: 64.0,
            iterations: 7,
        }
    }
}

/// The outcome of a capacity search.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapacityResult {
    /// Highest probed arrival rate whose p99 latencies met the SLO
    /// (0 when even `min_rate` misses it).
    pub max_rate_rps: f64,
    /// p99 TTFT at that rate, seconds.
    pub p99_ttft_s: f64,
    /// p99 TPOT at that rate, seconds.
    pub p99_tpot_s: f64,
    /// Goodput at that rate, requests/sec.
    pub goodput_rps: f64,
}

/// One replica under test: reuses a single memoized cost model across all
/// probed rates (its latencies are pure functions of (batch, context),
/// independent of the arrival rate).
struct CapacityProbe<'a, F> {
    cost: &'a mut EstimatorCostModel,
    config: ServingConfig,
    spec: CapacitySpec,
    trace_for_rate: F,
}

impl<F: FnMut(f64) -> RequestTrace> CapacityProbe<'_, F> {
    fn run(&mut self, rate: f64) -> (bool, CapacityResult) {
        let trace = (self.trace_for_rate)(rate);
        let mut simulator = ServingSimulator::new(self.cost.clone(), self.config);
        let report = simulator.run(&trace);
        *self.cost = simulator.into_cost_model();

        let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
        let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
        let p99_ttft = percentile(&ttft, 99.0);
        let p99_tpot = percentile(&tpot, 99.0);
        let feasible = report.rejected == 0
            && p99_ttft <= self.spec.slo.ttft_s
            && p99_tpot <= self.spec.slo.tpot_s;
        let result = CapacityResult {
            max_rate_rps: rate,
            p99_ttft_s: p99_ttft,
            p99_tpot_s: p99_tpot,
            goodput_rps: report.goodput_rps(&self.spec.slo),
        };
        (feasible, result)
    }
}

/// Finds the highest Poisson arrival rate one replica sustains while its
/// p99 TTFT and p99 TPOT stay within the SLO, by doubling out of
/// `min_rate` to bracket the knee and then bisecting. Deterministic: the
/// same inputs always return the same capacity.
#[must_use]
pub fn capacity_search(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    config: &ServingConfig,
    spec: &CapacitySpec,
) -> CapacityResult {
    let requests = spec.requests;
    let seed = spec.seed;
    capacity_search_with(
        EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine),
        config,
        spec,
        move |rate| WorkloadSpec::chat(rate, requests, seed).generate(),
    )
}

/// The general capacity search: any replica cost model (single-socket or
/// sharded), any admission policy (including
/// [`crate::SchedulerKind::PagedContinuous`]), and any workload family —
/// `trace_for_rate` maps a probed arrival rate to the trace offered at
/// that rate (e.g. [`crate::SharedPrefixChatSpec::with_rate`], so paged +
/// prefix-sharing replicas are searched on the shared-prefix workload they
/// exist for). Same bracketing/bisection as [`capacity_search`].
#[must_use]
pub fn capacity_search_with<F: FnMut(f64) -> RequestTrace>(
    mut cost: EstimatorCostModel,
    config: &ServingConfig,
    spec: &CapacitySpec,
    trace_for_rate: F,
) -> CapacityResult {
    capacity_search_warm(&mut cost, config, spec, trace_for_rate)
}

/// [`capacity_search_with`], but borrowing the cost model and leaving its
/// memoized latency caches warm — the shape for sweeping several
/// configurations of the *same* replica (e.g. the three admission policies
/// of `bench_paged`), where every search asks the estimator the same
/// (batch, context) questions.
#[must_use]
pub fn capacity_search_warm<F: FnMut(f64) -> RequestTrace>(
    cost: &mut EstimatorCostModel,
    config: &ServingConfig,
    spec: &CapacitySpec,
    trace_for_rate: F,
) -> CapacityResult {
    let mut probe = CapacityProbe {
        cost,
        config: *config,
        spec: *spec,
        trace_for_rate,
    };
    let mut run = |rate: f64| probe.run(rate);

    let (feasible, result) = run(spec.min_rate);
    if !feasible {
        return CapacityResult {
            max_rate_rps: 0.0,
            ..result
        };
    }
    let mut lo = spec.min_rate;
    let mut best = result;
    let mut hi = None;
    let mut rate = spec.min_rate;
    while hi.is_none() && rate < spec.max_rate {
        rate = (rate * 2.0).min(spec.max_rate);
        let (feasible, result) = run(rate);
        if feasible {
            lo = rate;
            best = result;
            if rate >= spec.max_rate {
                return best; // feasible everywhere we looked
            }
        } else {
            hi = Some(rate);
        }
    }
    let Some(mut hi) = hi else { return best };
    for _ in 0..spec.iterations {
        let mid = 0.5 * (lo + hi);
        let (feasible, result) = run(mid);
        if feasible {
            lo = mid;
            best = result;
        } else {
            hi = mid;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearCostModel;

    /// The threaded fan-out must be invisible: a fleet run equals the
    /// replicas simulated one by one on the calling thread, report for
    /// report, in load-balancer order.
    #[test]
    fn threaded_fleet_matches_the_sequential_replicas() {
        let trace = WorkloadSpec::chat(8.0, 96, 13).generate();
        let config = ServingConfig::continuous(8, 20_000);
        for replicas in [1, 2, 5, 8] {
            let fleet =
                simulate_fleet_with(LinearCostModel::default_70b, &config, replicas, &trace);
            assert_eq!(fleet.replicas, replicas);
            let shards = trace.split_round_robin(replicas);
            let sequential: Vec<ServingReport> = shards
                .iter()
                .map(|shard| {
                    ServingSimulator::new(LinearCostModel::default_70b(), config).run(shard)
                })
                .collect();
            assert_eq!(fleet.reports, sequential);
        }
    }

    #[test]
    fn hbm_kv_budget_exists_only_for_fitting_schemes() {
        let llama = LlmModel::llama2_70b();
        assert!(hbm_kv_budget_tokens(&llama, &CompressionScheme::bf16_dense()).is_none());
        let q8_5 =
            hbm_kv_budget_tokens(&llama, &CompressionScheme::bf8_sparse(0.05)).expect("Q8_5% fits");
        let q4 = hbm_kv_budget_tokens(&llama, &CompressionScheme::mxfp4()).expect("Q4 fits");
        // Tighter compression leaves more KV headroom.
        assert!(q8_5 > q4);
        assert!(q4 > 10_000);
    }

    #[test]
    fn sharded_budget_reduces_to_the_unsharded_one_on_a_single_socket() {
        let model = LlmModel::llama2_70b();
        for scheme in [
            CompressionScheme::mxfp4(),
            CompressionScheme::bf8_sparse(0.05),
            CompressionScheme::bf16_dense(),
        ] {
            assert_eq!(
                sharded_kv_budget_tokens(&model, &scheme, &ShardSpec::single()),
                hbm_kv_budget_tokens(&model, &scheme)
            );
        }
        // Dense Q8 overflows one socket but gains a budget at TP2.
        let q8 = CompressionScheme::bf8_dense();
        assert_eq!(
            sharded_kv_budget_tokens(&model, &q8, &ShardSpec::single()),
            None
        );
        assert!(sharded_kv_budget_tokens(&model, &q8, &ShardSpec::tp(2)).unwrap() > 0);
    }

    #[test]
    fn sharding_sweep_skips_unservable_plans_and_finds_the_min_sockets() {
        let model = LlmModel::llama2_70b();
        let q8 = CompressionScheme::bf8_dense();
        let search = ShardingSearchSpec {
            slo: SloTarget::interactive(),
            workload: WorkloadSpec::chat(0.4, 12, 11),
            max_batch: 8,
            required_kv_tokens: 10_000,
        };
        let plans = [ShardSpec::single(), ShardSpec::tp(2), ShardSpec::tp(4)];
        let results = sharding_sweep(
            &MachineConfig::spr_hbm(),
            &model,
            &q8,
            Engine::deca_default(),
            InterconnectModel::spr_upi(),
            &plans,
            &search,
        );
        assert_eq!(results.len(), 3);
        // One socket cannot even hold the Q8-dense weights: not simulated.
        assert!(!results[0].servable && !results[0].feasible);
        assert_eq!(results[0].kv_budget_tokens, None);
        assert_eq!(results[0].p99_ttft_s, 0.0);
        // TP2 fits and (at this trickle load) meets the SLO.
        assert!(results[1].servable);
        let min = min_sockets_for_slo(
            &MachineConfig::spr_hbm(),
            &model,
            &q8,
            Engine::deca_default(),
            InterconnectModel::spr_upi(),
            &plans,
            &search,
        )
        .expect("some plan is feasible");
        assert!(min.spec.sockets() >= 2, "Q8 dense needs sharding");
        assert!(min.feasible && min.p99_ttft_s > 0.0);
    }

    #[test]
    fn fleet_conserves_requests_and_scales_throughput() {
        let trace = WorkloadSpec::chat(4.0, 60, 13).generate();
        let machine = MachineConfig::spr_hbm();
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf8_sparse(0.05);
        let budget = hbm_kv_budget_tokens(&model, &scheme).expect("fits");
        let config = ServingConfig::continuous(16, budget);
        let one = simulate_fleet(
            &machine,
            &model,
            &scheme,
            Engine::deca_default(),
            &config,
            1,
            &trace,
        );
        let four = simulate_fleet(
            &machine,
            &model,
            &scheme,
            Engine::deca_default(),
            &config,
            4,
            &trace,
        );
        for fleet in [&one, &four] {
            let completed: usize = fleet.reports.iter().map(ServingReport::completed).sum();
            assert_eq!(completed + fleet.rejected(), 60);
        }
        // Four replicas drain the same offered load no slower (and, under
        // any queueing, strictly faster at the tail).
        assert!(four.metrics().e2e.p99_s <= one.metrics().e2e.p99_s);
        assert_eq!(four.records().len(), 60);
    }

    /// The capacity search works against any cost model; exercise its
    /// bracketing/bisection logic with the cheap linear model by wiring it
    /// through a local probe.
    #[test]
    fn capacity_search_brackets_the_knee() {
        // With the linear model a decode step costs ~30 ms at batch 1; the
        // interactive SLO (75 ms TPOT) caps the feasible batch, so capacity
        // is finite and well inside [0.25, 64].
        let slo = SloTarget::interactive();
        let spec = CapacitySpec {
            slo,
            requests: 80,
            seed: 5,
            min_rate: 0.25,
            max_rate: 64.0,
            iterations: 5,
        };
        let config = ServingConfig::continuous(64, 1_000_000);
        let feasible_at = |rate: f64| {
            let workload = WorkloadSpec::chat(rate, spec.requests, spec.seed);
            let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
            let report = sim.run(&workload.generate());
            let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
            let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
            percentile(&tpot, 99.0) <= slo.tpot_s && percentile(&ttft, 99.0) <= slo.ttft_s
        };
        assert!(feasible_at(spec.min_rate), "SLO must hold at trickle load");
        assert!(
            !feasible_at(spec.max_rate),
            "SLO must break at saturating load"
        );
    }
}
