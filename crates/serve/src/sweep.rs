//! Fleet-level sweeps: multi-replica simulation, the SLO capacity search
//! that turns "DECA vs software decompression" into "requests/sec per
//! socket at a p99 SLO", and the sharding sweep that answers "how many
//! sockets does a scheme need to hold its KV working set *and* hit the p99
//! SLO?".

use deca_compress::CompressionScheme;
use deca_kernels::Engine;
use deca_llm::{footprint, parallel, InterconnectModel, LlmModel, ShardSpec};
use deca_roofsurface::MachineConfig;

use crate::cost::{DecodePoolCostModel, EstimatorCostModel, ServingCostModel};
use crate::metrics::{percentile, RequestRecord, ServingMetrics, SloTarget};
use crate::scheduler::{ServingConfig, ServingReport, ServingSimulator, SpeculationSpec};
use crate::tenant::QosClass;
use crate::tier::KvShipSpec;
use crate::workload::{Request, RequestTrace, WorkloadSpec};

/// The KV budget (tokens) the HBM headroom sustains for a model/scheme, or
/// `None` when the compressed weights alone do not fit in HBM (such schemes
/// cannot be served from HBM at all — the paper simulates them with larger
/// capacity).
#[must_use]
pub fn hbm_kv_budget_tokens(model: &LlmModel, scheme: &CompressionScheme) -> Option<usize> {
    footprint::max_kv_tokens(model, scheme).map(|tokens| tokens as usize)
}

/// The KV budget (tokens) of one *sharded* replica — the minimum over
/// pipeline stages of the post-weights headroom divided by the per-token
/// sharded KV cost — or `None` when some socket's weight shard does not
/// fit. With [`ShardSpec::single`] this is exactly
/// [`hbm_kv_budget_tokens`].
#[must_use]
pub fn sharded_kv_budget_tokens(
    model: &LlmModel,
    scheme: &CompressionScheme,
    spec: &ShardSpec,
) -> Option<usize> {
    parallel::sharded_max_kv_tokens(model, scheme, spec).map(|tokens| tokens as usize)
}

/// What a sharding sweep demands of every candidate plan: hold a KV
/// working set of `required_kv_tokens` and serve `workload` within `slo`
/// at the 99th percentile.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardingSearchSpec {
    /// The p99 objective a feasible plan must meet.
    pub slo: SloTarget,
    /// The workload simulated against every servable plan.
    pub workload: WorkloadSpec,
    /// Decode batch limit of the sharded replica.
    pub max_batch: usize,
    /// KV-token working set the plan must be able to hold (e.g. target
    /// concurrent sequences × target context). Plans whose sharded KV
    /// budget falls short are unservable and skip the simulation.
    pub required_kv_tokens: usize,
}

/// The outcome of one sharding plan under a [`ShardingSearchSpec`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardingPlanResult {
    /// The plan.
    pub spec: ShardSpec,
    /// The plan's sharded KV budget (`None`: weights don't fit).
    pub kv_budget_tokens: Option<usize>,
    /// Whether the plan fits the weights *and* the required KV working set
    /// (only servable plans are simulated).
    pub servable: bool,
    /// Whether the simulated p99 TTFT/TPOT met the SLO with no rejections.
    pub feasible: bool,
    /// p99 TTFT of the simulated run, seconds (0 when not simulated).
    pub p99_ttft_s: f64,
    /// p99 TPOT of the simulated run, seconds (0 when not simulated).
    pub p99_tpot_s: f64,
    /// SLO goodput of the simulated run, requests/sec (0 when not
    /// simulated).
    pub goodput_rps: f64,
}

/// Evaluates every candidate sharding plan against the search spec: the
/// sharded KV budget gates servability, and servable plans run the full
/// serving simulation (sharded cost model, continuous batching) to check
/// the p99 SLO. Deterministic: the same inputs always produce the same
/// results.
#[must_use]
pub fn sharding_sweep(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    interconnect: InterconnectModel,
    plans: &[ShardSpec],
    search: &ShardingSearchSpec,
) -> Vec<ShardingPlanResult> {
    let trace = search.workload.generate();
    plans
        .iter()
        .map(|&spec| {
            let kv_budget_tokens = sharded_kv_budget_tokens(model, scheme, &spec);
            let servable = kv_budget_tokens.is_some_and(|b| b >= search.required_kv_tokens);
            let mut result = ShardingPlanResult {
                spec,
                kv_budget_tokens,
                servable,
                feasible: false,
                p99_ttft_s: 0.0,
                p99_tpot_s: 0.0,
                goodput_rps: 0.0,
            };
            if !servable {
                return result;
            }
            let budget = kv_budget_tokens.expect("servable implies a budget");
            let cost = EstimatorCostModel::sharded(
                machine.clone(),
                model.clone(),
                *scheme,
                engine,
                spec,
                interconnect,
            );
            let config = ServingConfig::continuous(search.max_batch, budget);
            let report = ServingSimulator::new(cost, config).run(&trace);
            let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
            let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
            result.p99_ttft_s = percentile(&ttft, 99.0);
            result.p99_tpot_s = percentile(&tpot, 99.0);
            result.goodput_rps = report.goodput_rps(&search.slo);
            result.feasible = report.rejected == 0
                && result.p99_ttft_s <= search.slo.ttft_s
                && result.p99_tpot_s <= search.slo.tpot_s;
            result
        })
        .collect()
}

/// The cheapest feasible plan of a sharding sweep: fewest sockets first
/// (ties broken by candidate order), or `None` when no candidate meets the
/// search spec.
#[must_use]
pub fn min_sockets_for_slo(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    interconnect: InterconnectModel,
    plans: &[ShardSpec],
    search: &ShardingSearchSpec,
) -> Option<ShardingPlanResult> {
    sharding_sweep(machine, model, scheme, engine, interconnect, plans, search)
        .into_iter()
        .filter(|r| r.feasible)
        .min_by_key(|r| r.spec.sockets())
}

/// One replica's share plus its report, and the fleet aggregate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// Replica count.
    pub replicas: usize,
    /// Per-replica reports, in load-balancer order.
    pub reports: Vec<ServingReport>,
}

impl FleetReport {
    /// All completed records across the fleet.
    #[must_use]
    pub fn records(&self) -> Vec<RequestRecord> {
        let mut all: Vec<RequestRecord> = self
            .reports
            .iter()
            .flat_map(|r| r.records.iter().copied())
            .collect();
        all.sort_by_key(|r| r.id);
        all
    }

    /// Fleet makespan: the slowest replica's.
    #[must_use]
    pub fn makespan_s(&self) -> f64 {
        self.reports
            .iter()
            .map(|r| r.makespan_s)
            .fold(0.0, f64::max)
    }

    /// Total rejected across the fleet.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.reports.iter().map(|r| r.rejected).sum()
    }

    /// Aggregate metrics over the union of completed requests.
    #[must_use]
    pub fn metrics(&self) -> ServingMetrics {
        ServingMetrics::from_records(&self.records(), self.rejected(), self.makespan_s())
    }

    /// Fleet goodput under `slo`.
    #[must_use]
    pub fn goodput_rps(&self, slo: &SloTarget) -> f64 {
        ServingMetrics::goodput_rps(&self.records(), slo, self.makespan_s())
    }
}

/// Simulates a fleet of identical replicas behind a round-robin load
/// balancer, with one cost model per replica drawn from `cost`. The trace
/// is split round-robin across the replicas; every request lands on
/// exactly one, so a fleet run conserves the trace.
///
/// Replicas are independent simulations, so they fan out across OS
/// threads with `std::thread::scope`, banded round-robin over the
/// available cores the same way `ParallelMatrixEngine` bands tiles. The
/// cost-model factory still runs serially in replica order on the calling
/// thread (it is `FnMut` and may carry warm caches), and the reports are
/// reassembled in load-balancer order — the result is byte-identical to
/// the sequential loop.
///
/// # Panics
///
/// Panics if `replicas` is zero, or if a replica's simulation panics on
/// its worker thread.
pub fn simulate_fleet_with<C, F>(
    mut cost: F,
    config: &ServingConfig,
    replicas: usize,
    trace: &RequestTrace,
) -> FleetReport
where
    C: crate::cost::ServingCostModel + Send,
    F: FnMut() -> C,
{
    let shards = trace.split_round_robin(replicas);
    // Build every replica's cost model up front, in replica order.
    let mut jobs: Vec<(usize, RequestTrace, C)> = shards
        .into_iter()
        .enumerate()
        .map(|(idx, shard)| (idx, shard, cost()))
        .collect();
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(replicas)
        .max(1);
    let mut indexed: Vec<(usize, ServingReport)> = if workers <= 1 {
        jobs.drain(..)
            .map(|(idx, shard, cost)| (idx, ServingSimulator::new(cost, *config).run(&shard)))
            .collect()
    } else {
        // Band the replicas round-robin across the workers.
        let mut bands: Vec<Vec<(usize, RequestTrace, C)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (slot, job) in jobs.drain(..).enumerate() {
            bands[slot % workers].push(job);
        }
        let mut collected = Vec::with_capacity(replicas);
        std::thread::scope(|scope| {
            let handles: Vec<_> = bands
                .into_iter()
                .map(|band| {
                    scope.spawn(move || {
                        band.into_iter()
                            .map(|(idx, shard, cost)| {
                                (idx, ServingSimulator::new(cost, *config).run(&shard))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                collected.extend(handle.join().expect("replica worker panicked"));
            }
        });
        collected
    };
    indexed.sort_by_key(|(idx, _)| *idx);
    let reports = indexed.into_iter().map(|(_, report)| report).collect();
    FleetReport { replicas, reports }
}

/// Simulates a fleet of identical replicas behind a round-robin load
/// balancer. Each replica runs the same machine/model/scheme/engine and
/// `config`; the trace is split round-robin across them.
#[must_use]
pub fn simulate_fleet(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    config: &ServingConfig,
    replicas: usize,
    trace: &RequestTrace,
) -> FleetReport {
    simulate_fleet_with(
        || EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine),
        config,
        replicas,
        trace,
    )
}

/// A disaggregated prefill/decode deployment: `prefill_replicas` sockets
/// run nothing but prefills, `decode_replicas` sockets run nothing but
/// decode, and every prefilled request's KV ships from its prefill
/// replica to its decode replica at [`KvShipSpec`] cost.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DisaggSpec {
    /// Sockets in the prefill pool (≥ 1).
    pub prefill_replicas: usize,
    /// Sockets in the decode pool (≥ 1).
    pub decode_replicas: usize,
    /// Pricing of the prefill → decode KV transfer.
    pub kv_ship: KvShipSpec,
}

impl DisaggSpec {
    /// Total sockets across both pools.
    #[must_use]
    pub fn sockets(&self) -> usize {
        self.prefill_replicas + self.decode_replicas
    }
}

/// The outcome of one disaggregated run: both pools' raw fleet reports
/// plus the stitched end-to-end per-request records.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DisaggReport {
    /// The deployment that produced this report.
    pub spec: DisaggSpec,
    /// The prefill pool's fleet report (its records' completions are
    /// *first tokens*, not end-to-end finishes).
    pub prefill: FleetReport,
    /// The decode pool's fleet report (its records' arrivals are prefill
    /// completions, its TTFTs are meaningless — see `records`).
    pub decode: FleetReport,
    /// End-to-end records: original arrival, first token from the prefill
    /// pool, completion from the decode pool (or from the prefill pool
    /// for single-token outputs). Sorted by request id.
    pub records: Vec<RequestRecord>,
    /// Requests rejected by either pool.
    pub rejected: usize,
}

impl DisaggReport {
    /// Deployment makespan: the slower pool's.
    #[must_use]
    pub fn makespan_s(&self) -> f64 {
        self.prefill.makespan_s().max(self.decode.makespan_s())
    }

    /// Aggregate end-to-end metrics.
    #[must_use]
    pub fn metrics(&self) -> ServingMetrics {
        ServingMetrics::from_records(&self.records, self.rejected, self.makespan_s())
    }

    /// End-to-end goodput under `slo`.
    #[must_use]
    pub fn goodput_rps(&self, slo: &SloTarget) -> f64 {
        ServingMetrics::goodput_rps(&self.records, slo, self.makespan_s())
    }
}

/// Simulates a disaggregated prefill/decode deployment with one cost
/// model per socket drawn from `cost`.
///
/// Three phases, all deterministic:
///
/// 1. **Prefill pool** — the trace's requests, truncated to their first
///    output token, split round-robin over the prefill replicas under
///    `config` (KV shipping off: prompts arrive as tokens, not KV).
/// 2. **Decode pool** — every multi-token request re-arrives at the
///    instant its first token was produced, with [`KvShipSpec`] enabled
///    in the config so the shipped-KV transfer delays admission, and a
///    [`DecodePoolCostModel`] so "prefill" costs nothing but the decode
///    steps price normally. Requests the prefill pool rejected never
///    ship.
/// 3. **Stitch** — each completed request's end-to-end record keeps its
///    original arrival, takes its first token from the prefill pool and
///    its completion from the decode pool. The KV transfer therefore
///    lands exactly between TTFT and the first decode step.
///
/// # Panics
///
/// Panics if either pool is empty.
pub fn simulate_disaggregated_with<C, F>(
    mut cost: F,
    config: &ServingConfig,
    spec: &DisaggSpec,
    trace: &RequestTrace,
) -> DisaggReport
where
    C: ServingCostModel + Send,
    F: FnMut() -> C,
{
    assert!(
        spec.prefill_replicas > 0 && spec.decode_replicas > 0,
        "a disaggregated deployment needs both pools"
    );
    // Phase 1: prefill-only requests (the first output token is the
    // prefill's product; everything after it belongs to the decode pool).
    let prefill_requests: Vec<Request> = trace
        .requests()
        .iter()
        .map(|r| Request {
            output_tokens: 1,
            ..*r
        })
        .collect();
    let prefill_trace = RequestTrace::new(prefill_requests);
    let prefill_config = config.with_kv_ship(KvShipSpec::disabled());
    let prefill = simulate_fleet_with(
        &mut cost,
        &prefill_config,
        spec.prefill_replicas,
        &prefill_trace,
    );

    // Phase 2: re-offer every prefilled multi-token request to the decode
    // pool at the instant its first token existed.
    let prefill_records = prefill.records();
    let by_id: std::collections::HashMap<usize, RequestRecord> =
        prefill_records.iter().map(|r| (r.id, *r)).collect();
    let decode_requests: Vec<Request> = trace
        .requests()
        .iter()
        .filter(|r| r.output_tokens > 1)
        .filter_map(|r| {
            by_id.get(&r.id).map(|done| Request {
                arrival_s: done.first_token_s,
                ..*r
            })
        })
        .collect();
    let decode_trace = RequestTrace::new(decode_requests);
    let decode_config = config.with_kv_ship(spec.kv_ship);
    let decode = simulate_fleet_with(
        || DecodePoolCostModel::new(cost()),
        &decode_config,
        spec.decode_replicas,
        &decode_trace,
    );

    // Phase 3: stitch end-to-end records.
    let mut records: Vec<RequestRecord> = Vec::with_capacity(prefill_records.len());
    let decoded: std::collections::HashMap<usize, RequestRecord> =
        decode.records().iter().map(|r| (r.id, *r)).collect();
    for request in trace.requests() {
        let Some(first) = by_id.get(&request.id) else {
            continue; // rejected by the prefill pool
        };
        if request.output_tokens == 1 {
            records.push(*first);
            continue;
        }
        let Some(done) = decoded.get(&request.id) else {
            continue; // rejected by the decode pool
        };
        records.push(RequestRecord {
            id: request.id,
            arrival_s: request.arrival_s,
            first_token_s: first.first_token_s,
            completion_s: done.completion_s,
            prompt_tokens: request.prompt_tokens,
            output_tokens: request.output_tokens,
            qos: request.qos,
        });
    }
    records.sort_by_key(|r| r.id);
    let rejected = trace.len() - records.len();
    DisaggReport {
        spec: *spec,
        prefill,
        decode,
        records,
        rejected,
    }
}

/// [`simulate_disaggregated_with`] with one [`EstimatorCostModel`] per
/// socket — the disaggregated counterpart of [`simulate_fleet`].
#[must_use]
pub fn simulate_disaggregated(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    config: &ServingConfig,
    spec: &DisaggSpec,
    trace: &RequestTrace,
) -> DisaggReport {
    simulate_disaggregated_with(
        || EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine),
        config,
        spec,
        trace,
    )
}

/// Parameters of an SLO capacity search on one replica.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapacitySpec {
    /// The objective a feasible rate must meet at the 99th percentile.
    pub slo: SloTarget,
    /// Requests simulated per probed rate (more ⇒ tighter percentiles,
    /// slower search).
    pub requests: usize,
    /// Trace seed (the same lengths are replayed at every probed rate).
    pub seed: u64,
    /// Lower bound of the searched rate range (requests/sec).
    pub min_rate: f64,
    /// Upper bound of the searched rate range (requests/sec).
    pub max_rate: f64,
    /// Bisection refinements after bracketing.
    pub iterations: usize,
}

impl CapacitySpec {
    /// A default chat-serving search: interactive SLO, a modest trace per
    /// probe, rates from 0.25 to 64 req/s.
    #[must_use]
    pub fn chat(requests: usize, seed: u64) -> Self {
        CapacitySpec {
            slo: SloTarget::interactive(),
            requests,
            seed,
            min_rate: 0.25,
            max_rate: 64.0,
            iterations: 7,
        }
    }
}

/// The outcome of a capacity search.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapacityResult {
    /// Highest probed arrival rate whose p99 latencies met the SLO
    /// (0 when even `min_rate` misses it).
    pub max_rate_rps: f64,
    /// p99 TTFT at that rate, seconds.
    pub p99_ttft_s: f64,
    /// p99 TPOT at that rate, seconds.
    pub p99_tpot_s: f64,
    /// Goodput at that rate, requests/sec.
    pub goodput_rps: f64,
}

/// One replica under test: reuses a single memoized cost model across all
/// probed rates (its latencies are pure functions of (batch, context),
/// independent of the arrival rate).
struct CapacityProbe<'a, F> {
    cost: &'a mut EstimatorCostModel,
    config: ServingConfig,
    spec: CapacitySpec,
    trace_for_rate: F,
}

impl<F: FnMut(f64) -> RequestTrace> CapacityProbe<'_, F> {
    fn run(&mut self, rate: f64) -> (bool, CapacityResult) {
        let trace = (self.trace_for_rate)(rate);
        let mut simulator = ServingSimulator::new(self.cost.clone(), self.config);
        let report = simulator.run(&trace);
        *self.cost = simulator.into_cost_model();
        judge_probe(&report, &self.spec, rate)
    }
}

/// Judges one probed rate's report against the capacity spec's p99 SLO —
/// the feasibility rule every capacity search shares.
fn judge_probe(report: &ServingReport, spec: &CapacitySpec, rate: f64) -> (bool, CapacityResult) {
    let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
    let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
    let p99_ttft = percentile(&ttft, 99.0);
    let p99_tpot = percentile(&tpot, 99.0);
    let feasible =
        report.rejected == 0 && p99_ttft <= spec.slo.ttft_s && p99_tpot <= spec.slo.tpot_s;
    let result = CapacityResult {
        max_rate_rps: rate,
        p99_ttft_s: p99_ttft,
        p99_tpot_s: p99_tpot,
        goodput_rps: report.goodput_rps(&spec.slo),
    };
    (feasible, result)
}

/// Finds the highest Poisson arrival rate one replica sustains while its
/// p99 TTFT and p99 TPOT stay within the SLO, by doubling out of
/// `min_rate` to bracket the knee and then bisecting. Deterministic: the
/// same inputs always return the same capacity.
#[must_use]
pub fn capacity_search(
    machine: &MachineConfig,
    model: &LlmModel,
    scheme: &CompressionScheme,
    engine: Engine,
    config: &ServingConfig,
    spec: &CapacitySpec,
) -> CapacityResult {
    let requests = spec.requests;
    let seed = spec.seed;
    capacity_search_with(
        EstimatorCostModel::new(machine.clone(), model.clone(), *scheme, engine),
        config,
        spec,
        move |rate| WorkloadSpec::chat(rate, requests, seed).generate(),
    )
}

/// The general capacity search: any replica cost model (single-socket or
/// sharded), any admission policy (including
/// [`crate::SchedulerKind::PagedContinuous`]), and any workload family —
/// `trace_for_rate` maps a probed arrival rate to the trace offered at
/// that rate (e.g. [`crate::SharedPrefixChatSpec::with_rate`], so paged +
/// prefix-sharing replicas are searched on the shared-prefix workload they
/// exist for). Same bracketing/bisection as [`capacity_search`].
#[must_use]
pub fn capacity_search_with<F: FnMut(f64) -> RequestTrace>(
    mut cost: EstimatorCostModel,
    config: &ServingConfig,
    spec: &CapacitySpec,
    trace_for_rate: F,
) -> CapacityResult {
    capacity_search_warm(&mut cost, config, spec, trace_for_rate)
}

/// [`capacity_search_with`], but borrowing the cost model and leaving its
/// memoized latency caches warm — the shape for sweeping several
/// configurations of the *same* replica (e.g. the three admission policies
/// of `bench_paged`), where every search asks the estimator the same
/// (batch, context) questions.
#[must_use]
pub fn capacity_search_warm<F: FnMut(f64) -> RequestTrace>(
    cost: &mut EstimatorCostModel,
    config: &ServingConfig,
    spec: &CapacitySpec,
    trace_for_rate: F,
) -> CapacityResult {
    let mut probe = CapacityProbe {
        cost,
        config: *config,
        spec: *spec,
        trace_for_rate,
    };
    bracket_and_bisect(spec, &mut |rate| probe.run(rate))
}

/// The knee-finding core shared by every capacity search: double out of
/// `spec.min_rate` until `run` reports infeasible (or `max_rate` is
/// reached), then bisect `spec.iterations` times. `run` maps a probed
/// rate to (feasible, result-at-that-rate).
fn bracket_and_bisect(
    spec: &CapacitySpec,
    run: &mut dyn FnMut(f64) -> (bool, CapacityResult),
) -> CapacityResult {
    let (feasible, result) = run(spec.min_rate);
    if !feasible {
        return CapacityResult {
            max_rate_rps: 0.0,
            ..result
        };
    }
    let mut lo = spec.min_rate;
    let mut best = result;
    let mut hi = None;
    let mut rate = spec.min_rate;
    while hi.is_none() && rate < spec.max_rate {
        rate = (rate * 2.0).min(spec.max_rate);
        let (feasible, result) = run(rate);
        if feasible {
            lo = rate;
            best = result;
            if rate >= spec.max_rate {
                return best; // feasible everywhere we looked
            }
        } else {
            hi = Some(rate);
        }
    }
    let Some(mut hi) = hi else { return best };
    for _ in 0..spec.iterations {
        let mid = 0.5 * (lo + hi);
        let (feasible, result) = run(mid);
        if feasible {
            lo = mid;
            best = result;
        } else {
            hi = mid;
        }
    }
    best
}

/// One pool split's sustained capacity, from
/// [`disagg_capacity_search_with`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PoolSplitResult {
    /// Sockets assigned to the prefill pool.
    pub prefill_replicas: usize,
    /// Sockets assigned to the decode pool.
    pub decode_replicas: usize,
    /// The split's capacity-search outcome.
    pub capacity: CapacityResult,
}

/// Extends the capacity search across *pool splits*: for every way of
/// partitioning `sockets` into a non-empty prefill pool and a non-empty
/// decode pool, finds the highest arrival rate the disaggregated
/// deployment sustains within the p99 SLO (same bracketing/bisection as
/// [`capacity_search_with`], feasibility judged on the stitched
/// end-to-end records). Pick the winner with [`best_pool_split`].
pub fn disagg_capacity_search_with<C, F, T>(
    mut cost: F,
    config: &ServingConfig,
    sockets: usize,
    kv_ship: KvShipSpec,
    spec: &CapacitySpec,
    mut trace_for_rate: T,
) -> Vec<PoolSplitResult>
where
    C: ServingCostModel + Send,
    F: FnMut() -> C,
    T: FnMut(f64) -> RequestTrace,
{
    assert!(sockets >= 2, "a split needs a socket in each pool");
    (1..sockets)
        .map(|prefill_replicas| {
            let split = DisaggSpec {
                prefill_replicas,
                decode_replicas: sockets - prefill_replicas,
                kv_ship,
            };
            let capacity = bracket_and_bisect(spec, &mut |rate| {
                let trace = trace_for_rate(rate);
                let report = simulate_disaggregated_with(&mut cost, config, &split, &trace);
                let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
                let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
                let p99_ttft = percentile(&ttft, 99.0);
                let p99_tpot = percentile(&tpot, 99.0);
                let feasible = report.rejected == 0
                    && p99_ttft <= spec.slo.ttft_s
                    && p99_tpot <= spec.slo.tpot_s;
                let result = CapacityResult {
                    max_rate_rps: rate,
                    p99_ttft_s: p99_ttft,
                    p99_tpot_s: p99_tpot,
                    goodput_rps: report.goodput_rps(&spec.slo),
                };
                (feasible, result)
            });
            PoolSplitResult {
                prefill_replicas,
                decode_replicas: sockets - prefill_replicas,
                capacity,
            }
        })
        .collect()
}

/// The capacity search over a *colocated* fleet: the highest arrival rate
/// `replicas` identical prefill+decode replicas sustain within the p99
/// SLO — the same-socket-count baseline a disaggregated pool split must
/// beat. Same bracketing/bisection as [`capacity_search_with`],
/// feasibility judged on the fleet's pooled records.
pub fn fleet_capacity_search_with<C, F, T>(
    mut cost: F,
    config: &ServingConfig,
    replicas: usize,
    spec: &CapacitySpec,
    mut trace_for_rate: T,
) -> CapacityResult
where
    C: ServingCostModel + Send,
    F: FnMut() -> C,
    T: FnMut(f64) -> RequestTrace,
{
    bracket_and_bisect(spec, &mut |rate| {
        let trace = trace_for_rate(rate);
        let fleet = simulate_fleet_with(&mut cost, config, replicas, &trace);
        let records = fleet.records();
        let ttft: Vec<f64> = records.iter().map(RequestRecord::ttft_s).collect();
        let tpot: Vec<f64> = records.iter().map(RequestRecord::tpot_s).collect();
        let p99_ttft = percentile(&ttft, 99.0);
        let p99_tpot = percentile(&tpot, 99.0);
        let feasible =
            fleet.rejected() == 0 && p99_ttft <= spec.slo.ttft_s && p99_tpot <= spec.slo.tpot_s;
        let result = CapacityResult {
            max_rate_rps: rate,
            p99_ttft_s: p99_ttft,
            p99_tpot_s: p99_tpot,
            goodput_rps: fleet.goodput_rps(&spec.slo),
        };
        (feasible, result)
    })
}

/// One chunk budget's sustained capacity, from
/// [`chunk_budget_capacity_sweep_with`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChunkBudgetPoint {
    /// The probed per-step prefill chunk budget (`None` = unchunked:
    /// whole prompts prefill in one wave).
    pub chunk_budget_tokens: Option<usize>,
    /// The budget's capacity-search outcome.
    pub capacity: CapacityResult,
}

/// Extends the capacity search across *prefill chunk budgets*: for every
/// probed budget (including `None`, the unchunked baseline), finds the
/// highest arrival rate one replica sustains within the p99 SLO. Small
/// budgets bound the decode stall a long-document prefill inflicts on
/// co-resident chats (better p99 TPOT) but pay per-chunk step overhead;
/// the sweep locates the knee. Same bracketing/bisection as
/// [`capacity_search_with`].
pub fn chunk_budget_capacity_sweep_with<C, F>(
    cost: &mut C,
    config: &ServingConfig,
    spec: &CapacitySpec,
    budgets: &[Option<usize>],
    mut trace_for_rate: F,
) -> Vec<ChunkBudgetPoint>
where
    C: ServingCostModel + Clone,
    F: FnMut(f64) -> RequestTrace,
{
    budgets
        .iter()
        .map(|&chunk_budget_tokens| {
            let chunked = config.with_chunked_prefill(chunk_budget_tokens);
            let capacity = bracket_and_bisect(spec, &mut |rate| {
                let trace = trace_for_rate(rate);
                let mut simulator = ServingSimulator::new(cost.clone(), chunked);
                let report = simulator.run(&trace);
                *cost = simulator.into_cost_model();
                judge_probe(&report, spec, rate)
            });
            ChunkBudgetPoint {
                chunk_budget_tokens,
                capacity,
            }
        })
        .collect()
}

/// One service class's tail latencies and goodput at a probed rate, from
/// [`qos_capacity_search_with`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClassOutcome {
    /// p99 TTFT over the class's completed requests, seconds (0 when the
    /// class completed nothing).
    pub p99_ttft_s: f64,
    /// p99 TPOT over the class's completed requests, seconds.
    pub p99_tpot_s: f64,
    /// The class's goodput under its own SLO, requests/sec.
    pub goodput_rps: f64,
}

/// The outcome of a per-class QoS capacity search.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QosCapacityResult {
    /// Highest probed arrival rate at which *both* classes met their SLOs
    /// with no rejections (0 when even `min_rate` misses).
    pub max_rate_rps: f64,
    /// The Interactive class at that rate.
    pub interactive: ClassOutcome,
    /// The Batch class at that rate.
    pub batch: ClassOutcome,
}

/// One class's slice of a report, judged against that class's SLO.
fn class_outcome(report: &ServingReport, class: QosClass, slo: &SloTarget) -> ClassOutcome {
    let records = report.class_records(class);
    let ttft: Vec<f64> = records.iter().map(RequestRecord::ttft_s).collect();
    let tpot: Vec<f64> = records.iter().map(RequestRecord::tpot_s).collect();
    ClassOutcome {
        p99_ttft_s: percentile(&ttft, 99.0),
        p99_tpot_s: percentile(&tpot, 99.0),
        goodput_rps: report.class_goodput_rps(class, slo),
    }
}

/// The per-class QoS capacity search: the highest arrival rate one replica
/// sustains while *each* service class meets its own p99 SLO — the
/// Interactive class judged against `spec.slo`, the Batch class against
/// the (typically much looser) `batch_slo` — with no rejections in either
/// lane. On a single-class trace the batch side is vacuous and the search
/// degenerates to [`capacity_search_with`]'s rule exactly. Same
/// bracketing/bisection as every other capacity search.
pub fn qos_capacity_search_with<C, F>(
    cost: &mut C,
    config: &ServingConfig,
    spec: &CapacitySpec,
    batch_slo: &SloTarget,
    mut trace_for_rate: F,
) -> QosCapacityResult
where
    C: ServingCostModel + Clone,
    F: FnMut(f64) -> RequestTrace,
{
    // Per-class outcomes of every probe, so the winning rate's class
    // breakdown can be recovered after the search.
    let mut outcomes: Vec<(f64, ClassOutcome, ClassOutcome)> = Vec::new();
    let capacity = bracket_and_bisect(spec, &mut |rate| {
        let trace = trace_for_rate(rate);
        let mut simulator = ServingSimulator::new(cost.clone(), *config);
        let report = simulator.run(&trace);
        *cost = simulator.into_cost_model();
        let interactive = class_outcome(&report, QosClass::Interactive, &spec.slo);
        let batch = class_outcome(&report, QosClass::Batch, batch_slo);
        let feasible = report.rejected == 0
            && interactive.p99_ttft_s <= spec.slo.ttft_s
            && interactive.p99_tpot_s <= spec.slo.tpot_s
            && batch.p99_ttft_s <= batch_slo.ttft_s
            && batch.p99_tpot_s <= batch_slo.tpot_s;
        outcomes.push((rate, interactive, batch));
        let result = CapacityResult {
            max_rate_rps: rate,
            p99_ttft_s: interactive.p99_ttft_s,
            p99_tpot_s: interactive.p99_tpot_s,
            goodput_rps: report.goodput_rps(&spec.slo),
        };
        (feasible, result)
    });
    let (_, interactive, batch) = *outcomes
        .iter()
        .rev()
        .find(|(rate, _, _)| *rate == capacity.max_rate_rps)
        // Infeasible even at `min_rate`: report that probe's breakdown.
        .unwrap_or(&outcomes[0]);
    QosCapacityResult {
        max_rate_rps: capacity.max_rate_rps,
        interactive,
        batch,
    }
}

/// One acceptance rate's outcome on a fixed trace, from
/// [`speculation_goodput_curve_with`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpeculationPoint {
    /// The probed draft acceptance rate, in `[0, 1]`.
    pub acceptance_rate: f64,
    /// p99 TTFT on the trace, seconds.
    pub p99_ttft_s: f64,
    /// p99 TPOT on the trace, seconds.
    pub p99_tpot_s: f64,
    /// SLO goodput on the trace, requests/sec.
    pub goodput_rps: f64,
    /// Draft-and-verify bursts the run took (decode steps when the rate
    /// retires one token per burst).
    pub decode_steps: u64,
}

/// Sweeps speculative decoding's acceptance rate on a *fixed* trace: each
/// probed rate replays the same requests with
/// [`crate::SpeculationSpec::new`]`(draft_tokens, rate, draw_seed)` and
/// reports tail latency and SLO goodput — the goodput-vs-acceptance curve
/// that says how good a draft model must be before speculation pays on
/// this hardware. A `draft_tokens` of zero degenerates every point to the
/// plain run (the baseline the curve is read against).
pub fn speculation_goodput_curve_with<C>(
    cost: &mut C,
    config: &ServingConfig,
    slo: &SloTarget,
    draft_tokens: usize,
    draw_seed: u64,
    acceptance_rates: &[f64],
    trace: &RequestTrace,
) -> Vec<SpeculationPoint>
where
    C: ServingCostModel + Clone,
{
    acceptance_rates
        .iter()
        .map(|&acceptance_rate| {
            let speculation = SpeculationSpec::new(draft_tokens, acceptance_rate, draw_seed);
            let mut simulator =
                ServingSimulator::new(cost.clone(), config.with_speculation(speculation));
            let report = simulator.run(trace);
            *cost = simulator.into_cost_model();
            let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
            let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
            SpeculationPoint {
                acceptance_rate,
                p99_ttft_s: percentile(&ttft, 99.0),
                p99_tpot_s: percentile(&tpot, 99.0),
                goodput_rps: report.goodput_rps(slo),
                decode_steps: report.decode_steps,
            }
        })
        .collect()
}

/// The winning split of a [`disagg_capacity_search_with`] sweep: highest
/// sustained rate, goodput breaking ties (earlier split on exact ties).
#[must_use]
pub fn best_pool_split(results: &[PoolSplitResult]) -> Option<&PoolSplitResult> {
    results.iter().reduce(|best, candidate| {
        let better = candidate.capacity.max_rate_rps > best.capacity.max_rate_rps
            || (candidate.capacity.max_rate_rps == best.capacity.max_rate_rps
                && candidate.capacity.goodput_rps > best.capacity.goodput_rps);
        if better {
            candidate
        } else {
            best
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinearCostModel;

    /// The threaded fan-out must be invisible: a fleet run equals the
    /// replicas simulated one by one on the calling thread, report for
    /// report, in load-balancer order.
    #[test]
    fn threaded_fleet_matches_the_sequential_replicas() {
        let trace = WorkloadSpec::chat(8.0, 96, 13).generate();
        let config = ServingConfig::continuous(8, 20_000);
        for replicas in [1, 2, 5, 8] {
            let fleet =
                simulate_fleet_with(LinearCostModel::default_70b, &config, replicas, &trace);
            assert_eq!(fleet.replicas, replicas);
            let shards = trace.split_round_robin(replicas);
            let sequential: Vec<ServingReport> = shards
                .iter()
                .map(|shard| {
                    ServingSimulator::new(LinearCostModel::default_70b(), config).run(shard)
                })
                .collect();
            assert_eq!(fleet.reports, sequential);
        }
    }

    /// The chunk-budget sweep probes every budget (unchunked first) and
    /// its degenerate entry reproduces the plain capacity search exactly.
    #[test]
    fn chunk_budget_sweep_covers_the_unchunked_baseline() {
        use crate::workload::DocChatMixSpec;
        let spec = CapacitySpec {
            slo: SloTarget {
                ttft_s: 2.0,
                tpot_s: 0.12,
            },
            requests: 48,
            seed: 21,
            min_rate: 0.25,
            max_rate: 8.0,
            iterations: 4,
        };
        let config = ServingConfig::paged(16, 200_000, 16);
        let mix = DocChatMixSpec::fleet(1.0, 40, 21);
        let mut cost = LinearCostModel::default_70b();
        let points = chunk_budget_capacity_sweep_with(
            &mut cost,
            &config,
            &spec,
            &[None, Some(512), Some(2_048)],
            |rate| mix.with_rate(rate).generate(),
        );
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].chunk_budget_tokens, None);
        let cost = LinearCostModel::default_70b();
        let baseline = bracket_and_bisect(&spec, &mut |rate| {
            let trace = mix.with_rate(rate).generate();
            let report = ServingSimulator::new(cost, config).run(&trace);
            judge_probe(&report, &spec, rate)
        });
        assert_eq!(points[0].capacity, baseline);
        for point in &points {
            assert!(point.capacity.max_rate_rps >= 0.0);
        }
    }

    /// The QoS capacity search honours both classes' SLOs: the mixed
    /// trace sustains a positive rate under sane per-class targets, an
    /// impossible Batch SLO drives capacity to zero even though the
    /// Interactive lane is fine, and on a single-class trace the search
    /// degenerates to the class-blind rule exactly.
    #[test]
    fn qos_capacity_search_honours_both_classes() {
        use crate::tenant::MultiTenantSpec;
        let spec = CapacitySpec {
            slo: SloTarget {
                ttft_s: 8.0,
                tpot_s: 0.3,
            },
            requests: 32,
            seed: 31,
            min_rate: 0.25,
            max_rate: 8.0,
            iterations: 3,
        };
        let batch_slo = SloTarget {
            ttft_s: 60.0,
            tpot_s: 0.5,
        };
        let mix = MultiTenantSpec::fleet(1.0, 24, 31);
        let config = ServingConfig::paged(16, 200_000, 16).with_qos_aging(4);
        let mut cost = LinearCostModel::default_70b();
        let result = qos_capacity_search_with(&mut cost, &config, &spec, &batch_slo, |rate| {
            mix.with_rate(rate).generate()
        });
        assert!(result.max_rate_rps > 0.0);
        assert!(result.interactive.p99_ttft_s <= spec.slo.ttft_s);
        assert!(result.batch.p99_ttft_s <= batch_slo.ttft_s);
        let impossible = SloTarget {
            ttft_s: 1e-9,
            tpot_s: 1e-9,
        };
        let strangled = qos_capacity_search_with(&mut cost, &config, &spec, &impossible, |rate| {
            mix.with_rate(rate).generate()
        });
        assert_eq!(
            strangled.max_rate_rps, 0.0,
            "an unmeetable Batch SLO caps capacity at zero"
        );
        assert!(
            strangled.batch.p99_ttft_s > 0.0,
            "the infeasible probe's breakdown is still reported"
        );
        // Single-class degenerate: same knee as the class-blind search.
        let mut warm = LinearCostModel::default_70b();
        let qos = qos_capacity_search_with(&mut warm, &config, &spec, &spec.slo, |rate| {
            WorkloadSpec::chat(rate, spec.requests, spec.seed).generate()
        });
        let blind = LinearCostModel::default_70b();
        let plain = bracket_and_bisect(&spec, &mut |rate| {
            let trace = WorkloadSpec::chat(rate, spec.requests, spec.seed).generate();
            let report = ServingSimulator::new(blind, config).run(&trace);
            judge_probe(&report, &spec, rate)
        });
        assert_eq!(qos.max_rate_rps, plain.max_rate_rps);
    }

    /// Higher acceptance rates can only help: on a decode-heavy trace the
    /// all-accept end of the curve beats the none-accept end on p99 TPOT,
    /// and a zero-draft curve is flat at the plain run.
    #[test]
    fn speculation_curve_improves_with_acceptance() {
        let trace = WorkloadSpec::chat(2.0, 48, 23).generate();
        let config = ServingConfig::continuous(16, 200_000);
        let slo = SloTarget {
            ttft_s: 2.0,
            tpot_s: 0.12,
        };
        let mut cost = LinearCostModel::default_70b();
        let curve = speculation_goodput_curve_with(
            &mut cost,
            &config,
            &slo,
            4,
            7,
            &[0.0, 0.5, 1.0],
            &trace,
        );
        assert_eq!(curve.len(), 3);
        // All-accept retires 5 tokens per burst; none-accept pays the same
        // burst for 1. Fewer steps, lower tail.
        assert!(curve[2].decode_steps < curve[0].decode_steps);
        assert!(curve[2].p99_tpot_s < curve[0].p99_tpot_s);
        // Zero draft tokens: every point is the plain run.
        let mut cost = LinearCostModel::default_70b();
        let flat =
            speculation_goodput_curve_with(&mut cost, &config, &slo, 0, 7, &[0.0, 1.0], &trace);
        let outcome =
            |p: &SpeculationPoint| (p.p99_ttft_s, p.p99_tpot_s, p.goodput_rps, p.decode_steps);
        assert_eq!(outcome(&flat[0]), outcome(&flat[1]));
    }

    #[test]
    fn hbm_kv_budget_exists_only_for_fitting_schemes() {
        let llama = LlmModel::llama2_70b();
        assert!(hbm_kv_budget_tokens(&llama, &CompressionScheme::bf16_dense()).is_none());
        let q8_5 =
            hbm_kv_budget_tokens(&llama, &CompressionScheme::bf8_sparse(0.05)).expect("Q8_5% fits");
        let q4 = hbm_kv_budget_tokens(&llama, &CompressionScheme::mxfp4()).expect("Q4 fits");
        // Tighter compression leaves more KV headroom.
        assert!(q8_5 > q4);
        assert!(q4 > 10_000);
    }

    #[test]
    fn sharded_budget_reduces_to_the_unsharded_one_on_a_single_socket() {
        let model = LlmModel::llama2_70b();
        for scheme in [
            CompressionScheme::mxfp4(),
            CompressionScheme::bf8_sparse(0.05),
            CompressionScheme::bf16_dense(),
        ] {
            assert_eq!(
                sharded_kv_budget_tokens(&model, &scheme, &ShardSpec::single()),
                hbm_kv_budget_tokens(&model, &scheme)
            );
        }
        // Dense Q8 overflows one socket but gains a budget at TP2.
        let q8 = CompressionScheme::bf8_dense();
        assert_eq!(
            sharded_kv_budget_tokens(&model, &q8, &ShardSpec::single()),
            None
        );
        assert!(sharded_kv_budget_tokens(&model, &q8, &ShardSpec::tp(2)).unwrap() > 0);
    }

    #[test]
    fn sharding_sweep_skips_unservable_plans_and_finds_the_min_sockets() {
        let model = LlmModel::llama2_70b();
        let q8 = CompressionScheme::bf8_dense();
        let search = ShardingSearchSpec {
            slo: SloTarget::interactive(),
            workload: WorkloadSpec::chat(0.4, 12, 11),
            max_batch: 8,
            required_kv_tokens: 10_000,
        };
        let plans = [ShardSpec::single(), ShardSpec::tp(2), ShardSpec::tp(4)];
        let results = sharding_sweep(
            &MachineConfig::spr_hbm(),
            &model,
            &q8,
            Engine::deca_default(),
            InterconnectModel::spr_upi(),
            &plans,
            &search,
        );
        assert_eq!(results.len(), 3);
        // One socket cannot even hold the Q8-dense weights: not simulated.
        assert!(!results[0].servable && !results[0].feasible);
        assert_eq!(results[0].kv_budget_tokens, None);
        assert_eq!(results[0].p99_ttft_s, 0.0);
        // TP2 fits and (at this trickle load) meets the SLO.
        assert!(results[1].servable);
        let min = min_sockets_for_slo(
            &MachineConfig::spr_hbm(),
            &model,
            &q8,
            Engine::deca_default(),
            InterconnectModel::spr_upi(),
            &plans,
            &search,
        )
        .expect("some plan is feasible");
        assert!(min.spec.sockets() >= 2, "Q8 dense needs sharding");
        assert!(min.feasible && min.p99_ttft_s > 0.0);
    }

    #[test]
    fn fleet_conserves_requests_and_scales_throughput() {
        let trace = WorkloadSpec::chat(4.0, 60, 13).generate();
        let machine = MachineConfig::spr_hbm();
        let model = LlmModel::llama2_70b();
        let scheme = CompressionScheme::bf8_sparse(0.05);
        let budget = hbm_kv_budget_tokens(&model, &scheme).expect("fits");
        let config = ServingConfig::continuous(16, budget);
        let one = simulate_fleet(
            &machine,
            &model,
            &scheme,
            Engine::deca_default(),
            &config,
            1,
            &trace,
        );
        let four = simulate_fleet(
            &machine,
            &model,
            &scheme,
            Engine::deca_default(),
            &config,
            4,
            &trace,
        );
        for fleet in [&one, &four] {
            let completed: usize = fleet.reports.iter().map(ServingReport::completed).sum();
            assert_eq!(completed + fleet.rejected(), 60);
        }
        // Four replicas drain the same offered load no slower (and, under
        // any queueing, strictly faster at the tail).
        assert!(four.metrics().e2e.p99_s <= one.metrics().e2e.p99_s);
        assert_eq!(four.records().len(), 60);
    }

    /// A disaggregated run must conserve the trace: every request either
    /// completes with a stitched end-to-end record or counts as rejected,
    /// first tokens come from the prefill pool, and completions land
    /// after the shipped-KV transfer plus the remaining decode steps.
    #[test]
    fn disaggregated_runs_stitch_prefill_and_decode_records() {
        let trace = WorkloadSpec::chat(4.0, 80, 17).generate();
        let config = ServingConfig::continuous(16, 1_000_000);
        let ship = KvShipSpec {
            bytes_per_token: 300_000.0,
            bandwidth_gbps: 50.0,
            latency_us: 10.0,
        };
        let spec = DisaggSpec {
            prefill_replicas: 1,
            decode_replicas: 1,
            kv_ship: ship,
        };
        let report =
            simulate_disaggregated_with(LinearCostModel::default_70b, &config, &spec, &trace);
        assert_eq!(report.records.len() + report.rejected, 80);
        assert!(report.rejected == 0, "generous budget admits everything");
        let min_transfer = ship.transfer_seconds(1);
        for (record, request) in report.records.iter().zip(trace.requests()) {
            assert_eq!(record.id, request.id);
            assert_eq!(record.arrival_s, request.arrival_s, "original arrival");
            assert!(record.first_token_s > record.arrival_s);
            if request.output_tokens > 1 {
                // The KV transfer plus at least one decode step separates
                // the first token from the completion.
                assert!(
                    record.completion_s > record.first_token_s + min_transfer + 0.9 * 0.03,
                    "request {}: completion {:.4} vs first token {:.4}",
                    record.id,
                    record.completion_s,
                    record.first_token_s
                );
            } else {
                assert_eq!(record.completion_s, record.first_token_s);
            }
        }
        // Determinism: same inputs, same stitched report.
        let again =
            simulate_disaggregated_with(LinearCostModel::default_70b, &config, &spec, &trace);
        assert_eq!(report, again);
    }

    #[test]
    fn pool_split_search_covers_every_partition_and_picks_the_best() {
        let spec = CapacitySpec {
            slo: SloTarget::interactive(),
            requests: 40,
            seed: 23,
            min_rate: 0.25,
            max_rate: 16.0,
            iterations: 3,
        };
        let config = ServingConfig::continuous(16, 1_000_000);
        let results = disagg_capacity_search_with(
            LinearCostModel::default_70b,
            &config,
            4,
            KvShipSpec {
                bytes_per_token: 300_000.0,
                bandwidth_gbps: 50.0,
                latency_us: 10.0,
            },
            &spec,
            |rate| WorkloadSpec::chat(rate, spec.requests, spec.seed).generate(),
        );
        assert_eq!(results.len(), 3, "splits 1+3, 2+2, 3+1");
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.prefill_replicas, i + 1);
            assert_eq!(result.decode_replicas, 4 - (i + 1));
        }
        let best = best_pool_split(&results).expect("non-empty");
        assert!(results
            .iter()
            .all(|r| r.capacity.max_rate_rps <= best.capacity.max_rate_rps));
    }

    /// The capacity search works against any cost model; exercise its
    /// bracketing/bisection logic with the cheap linear model by wiring it
    /// through a local probe.
    #[test]
    fn capacity_search_brackets_the_knee() {
        // With the linear model a decode step costs ~30 ms at batch 1; the
        // interactive SLO (75 ms TPOT) caps the feasible batch, so capacity
        // is finite and well inside [0.25, 64].
        let slo = SloTarget::interactive();
        let spec = CapacitySpec {
            slo,
            requests: 80,
            seed: 5,
            min_rate: 0.25,
            max_rate: 64.0,
            iterations: 5,
        };
        let config = ServingConfig::continuous(64, 1_000_000);
        let feasible_at = |rate: f64| {
            let workload = WorkloadSpec::chat(rate, spec.requests, spec.seed);
            let mut sim = ServingSimulator::new(LinearCostModel::default_70b(), config);
            let report = sim.run(&workload.generate());
            let tpot: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
            let ttft: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
            percentile(&tpot, 99.0) <= slo.tpot_s && percentile(&ttft, 99.0) <= slo.ttft_s
        };
        assert!(feasible_at(spec.min_rate), "SLO must hold at trickle load");
        assert!(
            !feasible_at(spec.max_rate),
            "SLO must break at saturating load"
        );
    }
}
