//! Radix-tree prefix cache over token-id prefixes, with block-granular
//! copy-on-write sharing and LRU eviction of unreferenced blocks.
//!
//! SGLang's RadixAttention idea on top of the [`crate::kv`] allocator: the
//! cache is a radix tree whose edges are whole KV blocks
//! ([`BlockAllocator::block_size`] token ids each). A request's prompt is
//! matched block by block from the root; every matched block is shared with
//! the requesting sequence via [`BlockAllocator::fork`] (refcount sharing),
//! so the prefill only has to process the *uncached suffix*. Shared blocks
//! are immutable by construction — sequence growth appends at a block
//! boundary or inside a private block — so the serving engine never writes
//! one; [`BlockAllocator::cow`] exists for callers that do mutate a shared
//! block. After a prefill (and again on completion, when the generated
//! tokens are known) the sequence's full blocks are inserted, so later
//! same-session turns and same-system-prompt sessions hit.
//!
//! Only *full* blocks enter the tree: partial trailing blocks stay private
//! to their sequence, which keeps every shared block immutable (sequence
//! growth always appends at a block boundary or inside a private block).
//!
//! # Invariants (enforced by `crates/serve/tests/property_serving.rs`)
//!
//! * The cache holds exactly one reference per resident node; a lookup
//!   hands the *caller* one additional reference per matched block.
//! * Eviction only touches leaf nodes whose block the cache is the sole
//!   owner of (`ref_count == 1`): blocks still referenced by a running
//!   sequence are never reclaimed under it.
//! * [`PrefixCache::flush`] releases every resident block, so after the
//!   sequences retire too, the allocator drains to `allocated == 0` and
//!   all ref-counts return to zero.
//! * Determinism: ties in the LRU order break on the smaller node id, and
//!   the eviction scan walks the arena in index order.

use std::collections::HashMap;

use crate::kv::{BlockAllocator, BlockId};

/// Arena index of one radix-tree node.
type NodeId = usize;

/// The root occupies arena slot 0 and holds no block.
const ROOT: NodeId = 0;

#[derive(Debug, Clone)]
struct Node {
    /// Token ids of this node's block (the edge label from the parent);
    /// empty for the root.
    key: Vec<u64>,
    /// The KV block backing this node (unused by the root).
    block: BlockId,
    parent: NodeId,
    children: HashMap<Vec<u64>, NodeId>,
    /// Logical LRU timestamp of the last lookup that traversed this node.
    last_use: u64,
}

/// Counters of one cache's lifetime, for [`crate::scheduler::PagedStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PrefixCacheStats {
    /// Blocks currently resident in the tree.
    pub resident_blocks: usize,
    /// Largest resident-block count observed.
    pub peak_resident_blocks: usize,
    /// Blocks evicted over the cache's lifetime.
    pub evictions: u64,
    /// Blocks inserted over the cache's lifetime.
    pub insertions: u64,
}

/// A radix tree of cached KV blocks keyed by token-id prefixes.
#[derive(Debug, Clone)]
pub struct PrefixCache {
    block_size: usize,
    nodes: Vec<Option<Node>>,
    recycled: Vec<NodeId>,
    clock: u64,
    resident: usize,
    peak_resident: usize,
    evictions: u64,
    insertions: u64,
}

impl PrefixCache {
    /// Creates an empty cache over blocks of `block_size` token ids.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        PrefixCache {
            block_size,
            nodes: vec![Some(Node {
                key: Vec::new(),
                block: 0,
                parent: ROOT,
                children: HashMap::new(),
                last_use: 0,
            })],
            recycled: Vec::new(),
            clock: 0,
            resident: 0,
            peak_resident: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    /// Blocks currently resident in the tree.
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.resident
    }

    /// Blocks that repeated [`PrefixCache::evict_lru`] calls could free
    /// right now. Eviction is leaf-first and only touches sole-owner
    /// blocks, so a resident block is cascade-deliverable exactly when its
    /// *entire subtree* is sole-owner. Sole ownership of the node alone is
    /// not enough: [`PrefixCache::insert`] deduplicates an already-resident
    /// prefix block while still attaching the sequence's divergent child
    /// beneath it, so a sequence can share a mid-tree node without
    /// referencing its ancestor — that ancestor stays pinned until the
    /// shared descendant retires, and must not be counted. Lets a caller
    /// check an allocation is satisfiable *before* sacrificing cache
    /// residency.
    #[must_use]
    pub fn evictable_blocks(&self, allocator: &BlockAllocator) -> usize {
        // A subtree is entirely sole-owner iff the node is sole-owner and
        // no shared node sits below it, so: pin every ancestor of a shared
        // node, then count the unpinned sole-owner residents. Iterative
        // (long transcripts make arbitrarily deep chains, so recursion
        // would risk the stack), and O(nodes) amortized: each parent-chain
        // walk stops at the first already-pinned ancestor.
        let mut pinned = vec![false; self.nodes.len()];
        for id in 1..self.nodes.len() {
            let Some(node) = self.nodes[id].as_ref() else {
                continue;
            };
            if allocator.ref_count(node.block) == 1 {
                continue;
            }
            let mut at = id;
            while at != ROOT && !pinned[at] {
                pinned[at] = true;
                at = self.node(at).parent;
            }
        }
        (1..self.nodes.len())
            .filter(|&id| {
                self.nodes[id]
                    .as_ref()
                    .is_some_and(|node| !pinned[id] && allocator.ref_count(node.block) == 1)
            })
            .count()
    }

    /// Snapshot of the lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            resident_blocks: self.resident,
            peak_resident_blocks: self.peak_resident,
            evictions: self.evictions,
            insertions: self.insertions,
        }
    }

    /// Matches the longest cached block-aligned prefix of `tokens` and
    /// shares every matched block with the caller: each returned block has
    /// been [`BlockAllocator::fork`]ed once, and the caller owns that
    /// reference (releases it with [`BlockAllocator::free`]). The cached
    /// prefix length in tokens is `result.len() * block_size`.
    pub fn lookup(&mut self, tokens: &[u64], allocator: &mut BlockAllocator) -> Vec<BlockId> {
        self.clock += 1;
        let now = self.clock;
        let mut node = ROOT;
        let mut matched = Vec::new();
        for chunk in tokens.chunks_exact(self.block_size) {
            let Some(&child) = self.node(node).children.get(chunk) else {
                break;
            };
            allocator.fork(self.node(child).block);
            matched.push(self.node(child).block);
            self.node_mut(child).last_use = now;
            node = child;
        }
        matched
    }

    /// Inserts the full blocks of `tokens` (a sequence's prompt, or its
    /// prompt plus generated output on completion) into the tree. `blocks`
    /// is the sequence's block list covering at least those tokens. Each
    /// *newly created* node takes its own reference on the sequence's block
    /// (the cache's ownership share); blocks whose prefix is already
    /// resident are left untouched, so duplicates are deduplicated in favor
    /// of the first writer.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` does not cover the full blocks of `tokens`.
    pub fn insert(&mut self, tokens: &[u64], blocks: &[BlockId], allocator: &mut BlockAllocator) {
        let full_blocks = tokens.len() / self.block_size;
        assert!(
            blocks.len() >= full_blocks,
            "sequence holds {} blocks but {} full blocks of tokens were offered",
            blocks.len(),
            full_blocks
        );
        self.clock += 1;
        let now = self.clock;
        let mut node = ROOT;
        for (i, chunk) in tokens.chunks_exact(self.block_size).enumerate() {
            if let Some(&child) = self.node(node).children.get(chunk) {
                self.node_mut(child).last_use = now;
                node = child;
                continue;
            }
            allocator.fork(blocks[i]);
            let fresh = self.new_node(Node {
                key: chunk.to_vec(),
                block: blocks[i],
                parent: node,
                children: HashMap::new(),
                last_use: now,
            });
            self.node_mut(node).children.insert(chunk.to_vec(), fresh);
            self.resident += 1;
            self.peak_resident = self.peak_resident.max(self.resident);
            self.insertions += 1;
            node = fresh;
        }
    }

    fn new_node(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.recycled.pop() {
            self.nodes[id] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    /// Evicts the least-recently-used *evictable* block — a leaf node whose
    /// block the cache is the sole owner of — freeing it back to the
    /// allocator. Returns `false` when nothing is evictable (every resident
    /// block is still shared with a running sequence, or the tree is
    /// empty).
    pub fn evict_lru(&mut self, allocator: &mut BlockAllocator) -> bool {
        let mut victim: Option<(u64, NodeId)> = None;
        // Arena-order scan: deterministic, and O(nodes) is cheap at
        // simulation scale.
        for id in 1..self.nodes.len() {
            let Some(node) = self.nodes[id].as_ref() else {
                continue;
            };
            if !node.children.is_empty() || allocator.ref_count(node.block) != 1 {
                continue;
            }
            let candidate = (node.last_use, id);
            if victim.is_none_or(|best| candidate < best) {
                victim = Some(candidate);
            }
        }
        let Some((_, id)) = victim else {
            return false;
        };
        let node = self.nodes[id].take().expect("victim is live");
        self.node_mut(node.parent).children.remove(&node.key);
        allocator.free(node.block);
        self.recycled.push(id);
        self.resident -= 1;
        self.evictions += 1;
        true
    }

    /// Releases every resident block the cache is the sole owner of (leaf
    /// first, so whole chains drain). Blocks still shared with running
    /// sequences stay resident.
    pub fn flush(&mut self, allocator: &mut BlockAllocator) {
        while self.evict_lru(allocator) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<u64> {
        range.collect()
    }

    /// Allocates `n` private blocks for a sequence.
    fn seq_blocks(pool: &mut BlockAllocator, n: usize) -> Vec<BlockId> {
        (0..n).map(|_| pool.alloc().unwrap()).collect()
    }

    #[test]
    fn lookup_misses_then_hits_after_insert() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let tokens = ids(0..10); // 2 full blocks + 2 trailing tokens
        assert!(cache.lookup(&tokens, &mut pool).is_empty());

        let blocks = seq_blocks(&mut pool, 3);
        cache.insert(&tokens, &blocks, &mut pool);
        assert_eq!(cache.resident_blocks(), 2, "only full blocks are cached");
        // The cache holds one extra ref on each inserted block.
        assert_eq!(pool.ref_count(blocks[0]), 2);
        assert_eq!(pool.ref_count(blocks[2]), 1, "partial block stays private");

        let matched = cache.lookup(&tokens, &mut pool);
        assert_eq!(matched, vec![blocks[0], blocks[1]]);
        // The lookup handed us one more reference per matched block.
        assert_eq!(pool.ref_count(blocks[0]), 3);
        for block in matched {
            pool.free(block);
        }
    }

    #[test]
    fn divergent_suffixes_share_the_common_prefix_only() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let a: Vec<u64> = [0, 1, 2, 3, 10, 11, 12, 13].to_vec();
        let b: Vec<u64> = [0, 1, 2, 3, 20, 21, 22, 23].to_vec();
        let blocks_a = seq_blocks(&mut pool, 2);
        cache.insert(&a, &blocks_a, &mut pool);
        let blocks_b = seq_blocks(&mut pool, 2);
        cache.insert(&b, &blocks_b, &mut pool);
        // b's first block duplicated a's resident prefix: not re-inserted.
        assert_eq!(cache.resident_blocks(), 3);
        assert_eq!(pool.ref_count(blocks_b[0]), 1, "duplicate stays private");

        let matched = cache.lookup(&b, &mut pool);
        assert_eq!(matched, vec![blocks_a[0], blocks_b[1]]);
        for block in matched {
            pool.free(block);
        }
    }

    #[test]
    fn eviction_is_lru_leaf_first_and_spares_shared_blocks() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let chain = ids(0..8); // parent block + child block
        let blocks = seq_blocks(&mut pool, 2);
        cache.insert(&chain, &blocks, &mut pool);
        // Release the sequence's own refs: cache is the sole owner.
        pool.free(blocks[0]);
        pool.free(blocks[1]);
        assert_eq!(pool.allocated_blocks(), 2);

        // The parent is not a leaf: the child must go first.
        assert!(cache.evict_lru(&mut pool));
        assert_eq!(cache.resident_blocks(), 1);
        assert_eq!(pool.ref_count(blocks[1]), 0);
        assert_eq!(pool.ref_count(blocks[0]), 1, "parent still cached");

        // A block shared with a "running sequence" is not evictable.
        pool.fork(blocks[0]);
        assert!(!cache.evict_lru(&mut pool));
        pool.free(blocks[0]);
        assert!(cache.evict_lru(&mut pool));
        assert_eq!(pool.allocated_blocks(), 0);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn lru_order_follows_lookups() {
        let mut pool = BlockAllocator::new(2, 16);
        let mut cache = PrefixCache::new(2);
        let a: Vec<u64> = vec![1, 2];
        let b: Vec<u64> = vec![3, 4];
        let blocks_a = seq_blocks(&mut pool, 1);
        cache.insert(&a, &blocks_a, &mut pool);
        let blocks_b = seq_blocks(&mut pool, 1);
        cache.insert(&b, &blocks_b, &mut pool);
        pool.free(blocks_a[0]);
        pool.free(blocks_b[0]);
        // Touch `a`: `b` becomes the LRU victim.
        for block in cache.lookup(&a, &mut pool) {
            pool.free(block);
        }
        assert!(cache.evict_lru(&mut pool));
        assert_eq!(pool.ref_count(blocks_b[0]), 0, "b evicted first");
        assert_eq!(pool.ref_count(blocks_a[0]), 1);
    }

    #[test]
    fn evictable_blocks_counts_exactly_the_sole_owner_residents() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let tokens = ids(0..12); // 3 full blocks in a chain
        let blocks = seq_blocks(&mut pool, 3);
        cache.insert(&tokens, &blocks, &mut pool);
        // The sequence still holds all three: nothing is evictable.
        assert_eq!(cache.evictable_blocks(&pool), 0);
        // Sequence releases its path: the whole chain becomes evictable
        // (the count is the cascade total, not just current leaves).
        for &block in &blocks {
            pool.free(block);
        }
        assert_eq!(cache.evictable_blocks(&pool), 3);
        // A sequence re-sharing a prefix pins that path again.
        let matched = cache.lookup(&ids(0..8), &mut pool);
        assert_eq!(matched.len(), 2);
        assert_eq!(cache.evictable_blocks(&pool), 1);
        // And the count is exactly what eviction can deliver.
        assert!(cache.evict_lru(&mut pool));
        assert!(!cache.evict_lru(&mut pool));
        for block in matched {
            pool.free(block);
        }
    }

    /// Regression: a dedup-insert can leave a sequence sharing a mid-tree
    /// node without referencing its ancestor — the ancestor is sole-owner
    /// yet unevictable while the shared descendant lives, and
    /// `evictable_blocks` must not count it (it used to, promising blocks
    /// that `evict_lru` could never deliver).
    #[test]
    fn evictable_blocks_excludes_sole_owner_nodes_above_shared_descendants() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        // Sequence A inserts two chained blocks.
        let a: Vec<u64> = vec![0, 1, 2, 3, 10, 11, 12, 13];
        let blocks_a = seq_blocks(&mut pool, 2);
        cache.insert(&a, &blocks_a, &mut pool);
        // Sequence B duplicates A's first block of tokens (deduplicated:
        // B keeps its private copy) and diverges in its second, which the
        // cache attaches beneath A's resident prefix block.
        let b: Vec<u64> = vec![0, 1, 2, 3, 20, 21, 22, 23];
        let blocks_b = seq_blocks(&mut pool, 2);
        cache.insert(&b, &blocks_b, &mut pool);
        // A retires; B keeps running. The cache now solely owns A's whole
        // chain, but A's first block sits above B's still-shared divergent
        // block: only A's leaf is deliverable.
        pool.free(blocks_a[0]);
        pool.free(blocks_a[1]);
        assert_eq!(cache.evictable_blocks(&pool), 1);
        assert!(cache.evict_lru(&mut pool));
        assert!(!cache.evict_lru(&mut pool), "nothing else is deliverable");
        assert_eq!(cache.evictable_blocks(&pool), 0);
        // B retires: the remaining chain becomes deliverable end to end.
        pool.free(blocks_b[0]);
        pool.free(blocks_b[1]);
        assert_eq!(cache.evictable_blocks(&pool), 2);
        cache.flush(&mut pool);
        assert_eq!(pool.allocated_blocks(), 0);
    }

    #[test]
    fn flush_drains_everything_unshared() {
        let mut pool = BlockAllocator::new(4, 32);
        let mut cache = PrefixCache::new(4);
        for stream in 0..4u64 {
            let tokens: Vec<u64> = (0..12).map(|p| stream * 100 + p).collect();
            let blocks = seq_blocks(&mut pool, 3);
            cache.insert(&tokens, &blocks, &mut pool);
            for block in blocks {
                pool.free(block);
            }
        }
        assert_eq!(cache.resident_blocks(), 12);
        cache.flush(&mut pool);
        assert_eq!(cache.resident_blocks(), 0);
        assert_eq!(pool.allocated_blocks(), 0);
    }
}
