//! Radix-tree prefix cache over token-id prefixes, with block-granular
//! copy-on-write sharing and LRU eviction of unreferenced blocks.
//!
//! SGLang's RadixAttention idea on top of the [`crate::kv`] allocator: the
//! cache is a radix tree whose edges are whole KV blocks
//! ([`BlockAllocator::block_size`] token ids each). A request's prompt is
//! matched block by block from the root; every matched block is shared with
//! the requesting sequence via [`BlockAllocator::fork`] (refcount sharing),
//! so the prefill only has to process the *uncached suffix*. Shared blocks
//! are immutable by construction — sequence growth appends at a block
//! boundary or inside a private block — so the serving engine never writes
//! one; [`BlockAllocator::cow`] exists for callers that do mutate a shared
//! block. After a prefill (and again on completion, when the generated
//! tokens are known) the sequence's full blocks are inserted, so later
//! same-session turns and same-system-prompt sessions hit.
//!
//! Only *full* blocks enter the tree: partial trailing blocks stay private
//! to their sequence, which keeps every shared block immutable (sequence
//! growth always appends at a block boundary or inside a private block).
//!
//! # Invariants (enforced by `crates/serve/tests/property_serving.rs`)
//!
//! * The cache holds exactly one reference per resident node; a lookup
//!   hands the *caller* one additional reference per matched block.
//! * Eviction only touches leaf nodes whose block the cache is the sole
//!   owner of (`ref_count == 1`): blocks still referenced by a running
//!   sequence are never reclaimed under it.
//! * [`PrefixCache::flush`] releases every resident block, so after the
//!   sequences retire too, the allocator drains to `allocated == 0` and
//!   all ref-counts return to zero.
//! * Determinism: ties in the LRU order break on the smaller node id.
//!
//! # Bookkeeping contract and complexity
//!
//! The cache tracks incrementally, per node, whether its block is *shared*
//! (the allocator's ref-count exceeds the cache's own reference) and how
//! many of its children root a shared descendant. That makes
//! [`PrefixCache::evictable_blocks`] O(1) and [`PrefixCache::evict_lru`]
//! O(log evictable) — the original full-arena scans cost O(cache size) per
//! admission decision, which dominated the simulator at million-session
//! scale. The price is a contract: once a block is resident, a caller must
//! drop its references through [`PrefixCache::release`] rather than
//! [`BlockAllocator::free`], so the shared flags resync as the ref-count
//! crosses back to one. (References are only *acquired* through
//! [`PrefixCache::lookup`] and [`PrefixCache::insert`], which resync on
//! their own; `release` degrades to a plain `free` for blocks the cache
//! never saw.) Debug builds cross-check both the evictable counter and
//! every eviction choice against the original reference scans.

use std::collections::{BTreeSet, HashMap};

use crate::kv::{BlockAllocator, BlockId};

/// Arena index of one radix-tree node.
type NodeId = usize;

/// The root occupies arena slot 0 and holds no block.
const ROOT: NodeId = 0;

#[derive(Debug, Clone)]
struct Node {
    /// Token ids of this node's block (the edge label from the parent);
    /// empty for the root.
    key: Vec<u64>,
    /// The KV block backing this node (unused by the root).
    block: BlockId,
    parent: NodeId,
    children: HashMap<Vec<u64>, NodeId>,
    /// Logical LRU timestamp of the last lookup that traversed this node.
    last_use: u64,
    /// True while the block's ref-count exceeds the cache's own reference
    /// (a running sequence still shares it), as of the last resync.
    shared: bool,
    /// Children whose subtree contains a shared node. A node is *pinned*
    /// (unevictable even by cascade) iff it is shared or this is nonzero.
    pinned_children: usize,
}

impl Node {
    /// Pinned nodes can never be delivered by [`PrefixCache::evict_lru`]:
    /// the node's own block is shared, or a shared descendant keeps it from
    /// ever becoming a sole-owner leaf.
    fn pinned(&self) -> bool {
        self.shared || self.pinned_children > 0
    }
}

/// Counters of one cache's lifetime, for [`crate::scheduler::PagedStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PrefixCacheStats {
    /// Blocks currently resident in the tree.
    pub resident_blocks: usize,
    /// Largest resident-block count observed.
    pub peak_resident_blocks: usize,
    /// Blocks evicted over the cache's lifetime.
    pub evictions: u64,
    /// Blocks inserted over the cache's lifetime.
    pub insertions: u64,
}

/// A radix tree of cached KV blocks keyed by token-id prefixes.
#[derive(Debug, Clone)]
pub struct PrefixCache {
    block_size: usize,
    nodes: Vec<Option<Node>>,
    recycled: Vec<NodeId>,
    clock: u64,
    resident: usize,
    peak_resident: usize,
    evictions: u64,
    insertions: u64,
    /// Resident block → its tree node, for [`PrefixCache::release`] resync.
    by_block: HashMap<BlockId, NodeId>,
    /// Eviction candidates — exactly the unshared leaves — ordered by
    /// `(last_use, id)` so iteration order matches the reference LRU scan.
    lru: BTreeSet<(u64, NodeId)>,
    /// Non-root nodes currently pinned; `resident - pinned_count` is the
    /// cascade-deliverable eviction total.
    pinned_count: usize,
}

impl PrefixCache {
    /// Creates an empty cache over blocks of `block_size` token ids.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        PrefixCache {
            block_size,
            nodes: vec![Some(Node {
                key: Vec::new(),
                block: 0,
                parent: ROOT,
                children: HashMap::new(),
                last_use: 0,
                shared: false,
                pinned_children: 0,
            })],
            recycled: Vec::new(),
            clock: 0,
            resident: 0,
            peak_resident: 0,
            evictions: 0,
            insertions: 0,
            by_block: HashMap::new(),
            lru: BTreeSet::new(),
            pinned_count: 0,
        }
    }

    fn node(&self, id: NodeId) -> &Node {
        self.nodes[id].as_ref().expect("live node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id].as_mut().expect("live node")
    }

    /// Blocks currently resident in the tree.
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.resident
    }

    /// Blocks that repeated [`PrefixCache::evict_lru`] calls could free
    /// right now, in O(1). Eviction is leaf-first and only touches
    /// sole-owner blocks, so a resident block is cascade-deliverable
    /// exactly when its *entire subtree* is sole-owner. Sole ownership of
    /// the node alone is not enough: [`PrefixCache::insert`] deduplicates
    /// an already-resident prefix block while still attaching the
    /// sequence's divergent child beneath it, so a sequence can share a
    /// mid-tree node without referencing its ancestor — that ancestor
    /// stays pinned until the shared descendant retires, and must not be
    /// counted. Lets a caller check an allocation is satisfiable *before*
    /// sacrificing cache residency.
    #[must_use]
    pub fn evictable_blocks(&self, allocator: &BlockAllocator) -> usize {
        debug_assert_eq!(
            self.resident - self.pinned_count,
            self.scan_evictable(allocator),
            "incremental pin counters diverged from the reference scan \
             (was a resident block freed without PrefixCache::release?)"
        );
        self.resident - self.pinned_count
    }

    /// Reference implementation of [`PrefixCache::evictable_blocks`]: pin
    /// every ancestor of a shared node (per the live allocator ref-counts),
    /// then count the unpinned sole-owner residents. Iterative (long
    /// transcripts make arbitrarily deep chains, so recursion would risk
    /// the stack), and O(nodes) amortized: each parent-chain walk stops at
    /// the first already-pinned ancestor. Debug cross-check only.
    fn scan_evictable(&self, allocator: &BlockAllocator) -> usize {
        let mut pinned = vec![false; self.nodes.len()];
        for id in 1..self.nodes.len() {
            let Some(node) = self.nodes[id].as_ref() else {
                continue;
            };
            if allocator.ref_count(node.block) == 1 {
                continue;
            }
            let mut at = id;
            while at != ROOT && !pinned[at] {
                pinned[at] = true;
                at = self.node(at).parent;
            }
        }
        (1..self.nodes.len())
            .filter(|&id| {
                self.nodes[id]
                    .as_ref()
                    .is_some_and(|node| !pinned[id] && allocator.ref_count(node.block) == 1)
            })
            .count()
    }

    /// Reference implementation of the [`PrefixCache::evict_lru`] victim
    /// choice: full arena scan for the `(last_use, id)`-minimal sole-owner
    /// leaf, against the live allocator ref-counts. Debug cross-check only.
    fn scan_victim(&self, allocator: &BlockAllocator) -> Option<(u64, NodeId)> {
        let mut victim: Option<(u64, NodeId)> = None;
        for id in 1..self.nodes.len() {
            let Some(node) = self.nodes[id].as_ref() else {
                continue;
            };
            if !node.children.is_empty() || allocator.ref_count(node.block) != 1 {
                continue;
            }
            let candidate = (node.last_use, id);
            if victim.is_none_or(|best| candidate < best) {
                victim = Some(candidate);
            }
        }
        victim
    }

    /// Snapshot of the lifetime counters.
    #[must_use]
    pub fn stats(&self) -> PrefixCacheStats {
        PrefixCacheStats {
            resident_blocks: self.resident,
            peak_resident_blocks: self.peak_resident,
            evictions: self.evictions,
            insertions: self.insertions,
        }
    }

    /// Bumps `id`'s LRU timestamp, keeping its candidate-set key in sync.
    fn touch(&mut self, id: NodeId, now: u64) {
        let node = self.node(id);
        if node.children.is_empty() && !node.shared {
            let stale = (node.last_use, id);
            self.lru.remove(&stale);
            self.lru.insert((now, id));
        }
        self.node_mut(id).last_use = now;
    }

    /// Records a shared-flag transition for `id`, maintaining the LRU
    /// candidate set and the pin counters (with ancestor propagation).
    fn set_shared(&mut self, id: NodeId, shared: bool) {
        let node = self.node(id);
        if node.shared == shared {
            return;
        }
        let was_pinned = node.pinned();
        if node.children.is_empty() {
            let key = (node.last_use, id);
            if shared {
                self.lru.remove(&key);
            } else {
                self.lru.insert(key);
            }
        }
        self.node_mut(id).shared = shared;
        let now_pinned = self.node(id).pinned();
        if was_pinned != now_pinned {
            self.propagate_pin_flip(id, now_pinned);
        }
    }

    /// Walks the ancestor chain after `id`'s pinned state flipped to
    /// `now_pinned`, updating the pinned total and each ancestor's
    /// pinned-children count. Stops at the first ancestor whose own state
    /// does not flip, so the per-update cost telescopes the same way the
    /// reference scan's pin walk does.
    fn propagate_pin_flip(&mut self, mut id: NodeId, now_pinned: bool) {
        debug_assert_ne!(id, ROOT, "the root holds no block and is never pinned");
        loop {
            if now_pinned {
                self.pinned_count += 1;
            } else {
                self.pinned_count -= 1;
            }
            let parent = self.node(id).parent;
            let node = self.node_mut(parent);
            let was_pinned = node.pinned();
            if now_pinned {
                node.pinned_children += 1;
            } else {
                node.pinned_children -= 1;
            }
            if parent == ROOT || was_pinned == node.pinned() {
                return;
            }
            id = parent;
        }
    }

    /// Matches the longest cached block-aligned prefix of `tokens` and
    /// shares every matched block with the caller: each returned block has
    /// been [`BlockAllocator::fork`]ed once, and the caller owns that
    /// reference (releases it with [`PrefixCache::release`]). The cached
    /// prefix length in tokens is `result.len() * block_size`.
    pub fn lookup(&mut self, tokens: &[u64], allocator: &mut BlockAllocator) -> Vec<BlockId> {
        self.clock += 1;
        let now = self.clock;
        let mut node = ROOT;
        let mut matched = Vec::new();
        for chunk in tokens.chunks_exact(self.block_size) {
            let Some(&child) = self.node(node).children.get(chunk) else {
                break;
            };
            allocator.fork(self.node(child).block);
            matched.push(self.node(child).block);
            self.touch(child, now);
            // The caller now holds a reference on top of the cache's own.
            self.set_shared(child, true);
            node = child;
        }
        matched
    }

    /// Inserts the full blocks of `tokens` (a sequence's prompt, or its
    /// prompt plus generated output on completion) into the tree. `blocks`
    /// is the sequence's block list covering at least those tokens. Each
    /// *newly created* node takes its own reference on the sequence's block
    /// (the cache's ownership share); blocks whose prefix is already
    /// resident are left untouched, so duplicates are deduplicated in favor
    /// of the first writer.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` does not cover the full blocks of `tokens`.
    pub fn insert(&mut self, tokens: &[u64], blocks: &[BlockId], allocator: &mut BlockAllocator) {
        let full_blocks = tokens.len() / self.block_size;
        assert!(
            blocks.len() >= full_blocks,
            "sequence holds {} blocks but {} full blocks of tokens were offered",
            blocks.len(),
            full_blocks
        );
        self.clock += 1;
        let now = self.clock;
        let mut node = ROOT;
        for (i, chunk) in tokens.chunks_exact(self.block_size).enumerate() {
            if let Some(&child) = self.node(node).children.get(chunk) {
                self.touch(child, now);
                node = child;
                continue;
            }
            allocator.fork(blocks[i]);
            // The parent gains its first child below: eviction is
            // leaf-only, so it stops being a candidate.
            if node != ROOT && self.node(node).children.is_empty() && !self.node(node).shared {
                self.lru.remove(&(self.node(node).last_use, node));
            }
            // The sequence still holds its own reference, so a fresh node
            // starts shared; computed from the live count for robustness.
            let shared = allocator.ref_count(blocks[i]) > 1;
            let fresh = self.new_node(Node {
                key: chunk.to_vec(),
                block: blocks[i],
                parent: node,
                children: HashMap::new(),
                last_use: now,
                shared,
                pinned_children: 0,
            });
            self.node_mut(node).children.insert(chunk.to_vec(), fresh);
            let displaced = self.by_block.insert(blocks[i], fresh);
            debug_assert!(
                displaced.is_none(),
                "block {} resident under two tree nodes",
                blocks[i]
            );
            self.resident += 1;
            self.peak_resident = self.peak_resident.max(self.resident);
            self.insertions += 1;
            if shared {
                self.propagate_pin_flip(fresh, true);
            } else {
                self.lru.insert((now, fresh));
            }
            node = fresh;
        }
    }

    fn new_node(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.recycled.pop() {
            self.nodes[id] = Some(node);
            id
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    /// Drops one caller-held reference on `block`. For a cache-resident
    /// block this is the required replacement for [`BlockAllocator::free`]:
    /// it resyncs the node's shared flag as the ref-count falls back to the
    /// cache's own reference, which is what makes the block evictable
    /// again. For a block the cache never saw (a sequence's private tail,
    /// or one already evicted) it degrades to a plain `free`.
    pub fn release(&mut self, block: BlockId, allocator: &mut BlockAllocator) {
        allocator.free(block);
        if let Some(&id) = self.by_block.get(&block) {
            let refs = allocator.ref_count(block);
            debug_assert!(
                refs >= 1,
                "resident block {block} freed past the cache's own reference"
            );
            self.set_shared(id, refs > 1);
        }
    }

    /// Evicts the least-recently-used *evictable* block — a leaf node whose
    /// block the cache is the sole owner of — freeing it back to the
    /// allocator in O(log evictable). Returns `false` when nothing is
    /// evictable (every resident block is still shared with a running
    /// sequence, or the tree is empty).
    pub fn evict_lru(&mut self, allocator: &mut BlockAllocator) -> bool {
        debug_assert_eq!(
            self.lru.first().copied(),
            self.scan_victim(allocator),
            "incremental LRU candidates diverged from the reference scan \
             (was a resident block freed without PrefixCache::release?)"
        );
        let Some((_, id)) = self.lru.pop_first() else {
            return false;
        };
        let node = self.nodes[id].take().expect("victim is live");
        debug_assert_eq!(
            allocator.ref_count(node.block),
            1,
            "eviction candidate is not sole-owner"
        );
        self.node_mut(node.parent).children.remove(&node.key);
        self.by_block.remove(&node.block);
        allocator.free(node.block);
        self.recycled.push(id);
        self.resident -= 1;
        self.evictions += 1;
        // The victim was an unshared leaf, hence unpinned: no counter
        // propagation. Its parent may have just become a candidate leaf.
        if node.parent != ROOT {
            let parent = self.node(node.parent);
            if parent.children.is_empty() && !parent.shared {
                self.lru.insert((parent.last_use, node.parent));
            }
        }
        true
    }

    /// [`PrefixCache::evict_lru`], but additionally returns the victim's
    /// chained path hash ([`crate::tier::chain_hash`] folded from
    /// [`crate::tier::PATH_HASH_SEED`] over every block's tokens from the
    /// root), so the caller can *demote* the evicted block into a lower
    /// KV tier ([`crate::TierResidency::demote`]) instead of dropping it.
    /// Returns `None` when nothing is evictable. The plain `evict_lru`
    /// stays hash-free, so untiered runs pay nothing for this hook.
    pub fn evict_lru_demoting(&mut self, allocator: &mut BlockAllocator) -> Option<u64> {
        let &(_, id) = self.lru.first()?;
        let hash = self.path_hash(id);
        let evicted = self.evict_lru(allocator);
        debug_assert!(evicted, "a present LRU candidate must evict");
        Some(hash)
    }

    /// The chained hash of every token from the root through `id`'s block.
    fn path_hash(&self, id: NodeId) -> u64 {
        let mut chain = Vec::new();
        let mut at = id;
        while at != ROOT {
            chain.push(at);
            at = self.node(at).parent;
        }
        let mut hash = crate::tier::PATH_HASH_SEED;
        for &node in chain.iter().rev() {
            hash = crate::tier::chain_hash(hash, &self.node(node).key);
        }
        hash
    }

    /// Releases every resident block the cache is the sole owner of (leaf
    /// first, so whole chains drain). Blocks still shared with running
    /// sequences stay resident.
    pub fn flush(&mut self, allocator: &mut BlockAllocator) {
        while self.evict_lru(allocator) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u64>) -> Vec<u64> {
        range.collect()
    }

    /// Allocates `n` private blocks for a sequence.
    fn seq_blocks(pool: &mut BlockAllocator, n: usize) -> Vec<BlockId> {
        (0..n).map(|_| pool.alloc().unwrap()).collect()
    }

    #[test]
    fn lookup_misses_then_hits_after_insert() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let tokens = ids(0..10); // 2 full blocks + 2 trailing tokens
        assert!(cache.lookup(&tokens, &mut pool).is_empty());

        let blocks = seq_blocks(&mut pool, 3);
        cache.insert(&tokens, &blocks, &mut pool);
        assert_eq!(cache.resident_blocks(), 2, "only full blocks are cached");
        // The cache holds one extra ref on each inserted block.
        assert_eq!(pool.ref_count(blocks[0]), 2);
        assert_eq!(pool.ref_count(blocks[2]), 1, "partial block stays private");

        let matched = cache.lookup(&tokens, &mut pool);
        assert_eq!(matched, vec![blocks[0], blocks[1]]);
        // The lookup handed us one more reference per matched block.
        assert_eq!(pool.ref_count(blocks[0]), 3);
        for block in matched {
            cache.release(block, &mut pool);
        }
    }

    #[test]
    fn divergent_suffixes_share_the_common_prefix_only() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let a: Vec<u64> = [0, 1, 2, 3, 10, 11, 12, 13].to_vec();
        let b: Vec<u64> = [0, 1, 2, 3, 20, 21, 22, 23].to_vec();
        let blocks_a = seq_blocks(&mut pool, 2);
        cache.insert(&a, &blocks_a, &mut pool);
        let blocks_b = seq_blocks(&mut pool, 2);
        cache.insert(&b, &blocks_b, &mut pool);
        // b's first block duplicated a's resident prefix: not re-inserted.
        assert_eq!(cache.resident_blocks(), 3);
        assert_eq!(pool.ref_count(blocks_b[0]), 1, "duplicate stays private");

        let matched = cache.lookup(&b, &mut pool);
        assert_eq!(matched, vec![blocks_a[0], blocks_b[1]]);
        for block in matched {
            cache.release(block, &mut pool);
        }
    }

    #[test]
    fn eviction_is_lru_leaf_first_and_spares_shared_blocks() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let chain = ids(0..8); // parent block + child block
        let blocks = seq_blocks(&mut pool, 2);
        cache.insert(&chain, &blocks, &mut pool);
        // Release the sequence's own refs: cache is the sole owner.
        cache.release(blocks[0], &mut pool);
        cache.release(blocks[1], &mut pool);
        assert_eq!(pool.allocated_blocks(), 2);

        // The parent is not a leaf: the child must go first.
        assert!(cache.evict_lru(&mut pool));
        assert_eq!(cache.resident_blocks(), 1);
        assert_eq!(pool.ref_count(blocks[1]), 0);
        assert_eq!(pool.ref_count(blocks[0]), 1, "parent still cached");

        // A block shared with a "running sequence" (here re-acquired
        // through a lookup) is not evictable.
        let matched = cache.lookup(&chain[..4], &mut pool);
        assert_eq!(matched, vec![blocks[0]]);
        assert!(!cache.evict_lru(&mut pool));
        cache.release(blocks[0], &mut pool);
        assert!(cache.evict_lru(&mut pool));
        assert_eq!(pool.allocated_blocks(), 0);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn lru_order_follows_lookups() {
        let mut pool = BlockAllocator::new(2, 16);
        let mut cache = PrefixCache::new(2);
        let a: Vec<u64> = vec![1, 2];
        let b: Vec<u64> = vec![3, 4];
        let blocks_a = seq_blocks(&mut pool, 1);
        cache.insert(&a, &blocks_a, &mut pool);
        let blocks_b = seq_blocks(&mut pool, 1);
        cache.insert(&b, &blocks_b, &mut pool);
        cache.release(blocks_a[0], &mut pool);
        cache.release(blocks_b[0], &mut pool);
        // Touch `a`: `b` becomes the LRU victim.
        for block in cache.lookup(&a, &mut pool) {
            cache.release(block, &mut pool);
        }
        assert!(cache.evict_lru(&mut pool));
        assert_eq!(pool.ref_count(blocks_b[0]), 0, "b evicted first");
        assert_eq!(pool.ref_count(blocks_a[0]), 1);
    }

    #[test]
    fn evictable_blocks_counts_exactly_the_sole_owner_residents() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let tokens = ids(0..12); // 3 full blocks in a chain
        let blocks = seq_blocks(&mut pool, 3);
        cache.insert(&tokens, &blocks, &mut pool);
        // The sequence still holds all three: nothing is evictable.
        assert_eq!(cache.evictable_blocks(&pool), 0);
        // Sequence releases its path: the whole chain becomes evictable
        // (the count is the cascade total, not just current leaves).
        for &block in &blocks {
            cache.release(block, &mut pool);
        }
        assert_eq!(cache.evictable_blocks(&pool), 3);
        // A sequence re-sharing a prefix pins that path again.
        let matched = cache.lookup(&ids(0..8), &mut pool);
        assert_eq!(matched.len(), 2);
        assert_eq!(cache.evictable_blocks(&pool), 1);
        // And the count is exactly what eviction can deliver.
        assert!(cache.evict_lru(&mut pool));
        assert!(!cache.evict_lru(&mut pool));
        for block in matched {
            cache.release(block, &mut pool);
        }
    }

    /// Regression: a dedup-insert can leave a sequence sharing a mid-tree
    /// node without referencing its ancestor — the ancestor is sole-owner
    /// yet unevictable while the shared descendant lives, and
    /// `evictable_blocks` must not count it (it used to, promising blocks
    /// that `evict_lru` could never deliver).
    #[test]
    fn evictable_blocks_excludes_sole_owner_nodes_above_shared_descendants() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        // Sequence A inserts two chained blocks.
        let a: Vec<u64> = vec![0, 1, 2, 3, 10, 11, 12, 13];
        let blocks_a = seq_blocks(&mut pool, 2);
        cache.insert(&a, &blocks_a, &mut pool);
        // Sequence B duplicates A's first block of tokens (deduplicated:
        // B keeps its private copy) and diverges in its second, which the
        // cache attaches beneath A's resident prefix block.
        let b: Vec<u64> = vec![0, 1, 2, 3, 20, 21, 22, 23];
        let blocks_b = seq_blocks(&mut pool, 2);
        cache.insert(&b, &blocks_b, &mut pool);
        // A retires; B keeps running. The cache now solely owns A's whole
        // chain, but A's first block sits above B's still-shared divergent
        // block: only A's leaf is deliverable.
        cache.release(blocks_a[0], &mut pool);
        cache.release(blocks_a[1], &mut pool);
        assert_eq!(cache.evictable_blocks(&pool), 1);
        assert!(cache.evict_lru(&mut pool));
        assert!(!cache.evict_lru(&mut pool), "nothing else is deliverable");
        assert_eq!(cache.evictable_blocks(&pool), 0);
        // B retires: the remaining chain becomes deliverable end to end.
        cache.release(blocks_b[0], &mut pool);
        cache.release(blocks_b[1], &mut pool);
        assert_eq!(cache.evictable_blocks(&pool), 2);
        cache.flush(&mut pool);
        assert_eq!(pool.allocated_blocks(), 0);
    }

    #[test]
    fn flush_drains_everything_unshared() {
        let mut pool = BlockAllocator::new(4, 32);
        let mut cache = PrefixCache::new(4);
        for stream in 0..4u64 {
            let tokens: Vec<u64> = (0..12).map(|p| stream * 100 + p).collect();
            let blocks = seq_blocks(&mut pool, 3);
            cache.insert(&tokens, &blocks, &mut pool);
            for block in blocks {
                cache.release(block, &mut pool);
            }
        }
        assert_eq!(cache.resident_blocks(), 12);
        cache.flush(&mut pool);
        assert_eq!(cache.resident_blocks(), 0);
        assert_eq!(pool.allocated_blocks(), 0);
    }

    /// The demoting evictor returns the same hash a caller computes by
    /// folding `chain_hash` over the victim's full token path — the key
    /// the residency map is probed with at admission.
    #[test]
    fn demoting_eviction_hashes_the_full_root_path() {
        use crate::tier::{chain_hash, PATH_HASH_SEED};
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let tokens = ids(0..8); // two chained blocks
        let blocks = seq_blocks(&mut pool, 2);
        cache.insert(&tokens, &blocks, &mut pool);
        cache.release(blocks[0], &mut pool);
        cache.release(blocks[1], &mut pool);

        // Leaf first: its hash covers both blocks' tokens.
        let leaf = chain_hash(chain_hash(PATH_HASH_SEED, &tokens[..4]), &tokens[4..]);
        assert_eq!(cache.evict_lru_demoting(&mut pool), Some(leaf));
        let parent = chain_hash(PATH_HASH_SEED, &tokens[..4]);
        assert_eq!(cache.evict_lru_demoting(&mut pool), Some(parent));
        assert_eq!(cache.evict_lru_demoting(&mut pool), None, "tree empty");
        assert_eq!(pool.allocated_blocks(), 0);
    }

    /// `release` on a block the cache never saw is a plain allocator free.
    #[test]
    fn release_degrades_to_free_for_unknown_blocks() {
        let mut pool = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new(4);
        let block = pool.alloc().unwrap();
        cache.release(block, &mut pool);
        assert_eq!(pool.allocated_blocks(), 0);
        assert_eq!(cache.evictable_blocks(&pool), 0);
    }
}
