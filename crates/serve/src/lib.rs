//! `deca-serve`: a continuous-batching LLM serving simulator on top of the
//! DECA latency model.
//!
//! The paper's evaluation (§9.4, Table 4) stops at single-batch next-token
//! latency. This crate adds the layer above: multi-request serving under
//! realistic load, answering fleet questions — throughput, tail latency,
//! SLO goodput — with every per-step cost still coming from the calibrated
//! [`deca_llm::InferenceEstimator`] (and therefore from the simulated
//! compressed-GeMM machine underneath).
//!
//! The pieces:
//!
//! * [`workload`] — Poisson and bursty arrival processes, prompt/output
//!   length distributions, the replayable [`RequestTrace`], deterministic
//!   per-request [`TokenStream`] token ids, and the shared-prefix chat
//!   workload ([`SharedPrefixChatSpec`]) whose conversations share system
//!   prompts and carry their transcripts forward,
//! * [`cost`] — the [`ServingCostModel`] trait: prefill cost (new in
//!   `deca-llm` for this layer), per-step decode cost, the cached-prefix
//!   prefill query that prices only a prompt's uncached suffix, and the
//!   batch-step interface — a [`StepMix`] of prefill [`ChunkWork`] plus a
//!   decode batch priced as one unit, with draft-model speculative bursts
//!   priced via [`deca_llm::DraftSpec`] — memoized (bounded, with
//!   [`CostMemoStats`] hit counters) in [`EstimatorCostModel`],
//! * [`event`] — the discrete-event core: a deterministic binary-heap
//!   [`EventQueue`] over typed [`Event`]s (arrivals, prefill/decode step
//!   completions, preemption re-queues) that advances simulation time in
//!   O(log n) pops instead of per-step scans — what makes million-session
//!   traces simulate in seconds,
//! * [`kv`] — the paged KV-cache layer: a fixed-pool, ref-counted
//!   [`BlockAllocator`] of block-granular token slots (alloc/free/fork and
//!   copy-on-write), sized from [`deca_llm::footprint::max_kv_tokens`],
//! * [`prefix`] — a radix-tree [`PrefixCache`] over token-id prefixes with
//!   copy-on-write block sharing and LRU eviction of unreferenced blocks,
//! * [`scheduler`] — vLLM/Orca-style continuous batching (admission at
//!   token boundaries against an HBM-derived KV budget), the static
//!   run-to-completion baseline, and the paged policy
//!   ([`SchedulerKind::PagedContinuous`]): admission on *current* need,
//!   on-demand block allocation per decode step, prefix-hit prefill
//!   skipping, and preempt-by-recompute when the pool runs dry — with
//!   preemption/eviction/hit-rate counters in [`PagedStats`] — plus two
//!   policy axes on every scheduler: chunked prefill
//!   ([`ServingConfig::with_chunked_prefill`]: long prompts split into
//!   token-budget chunks interleaved with decode at batch boundaries,
//!   completed chunks published into the prefix cache incrementally) and
//!   speculative decoding ([`SpeculationSpec`]: draft-and-verify bursts
//!   with deterministic seeded acceptance draws),
//! * [`tier`] — the KV offload hierarchy: a priced HBM → DDR → disk
//!   [`KvTierModel`] (per-tier capacity, bandwidth, latency — the same
//!   shape as `deca_llm`'s interconnect pricing), the [`TierResidency`]
//!   map tracking demoted prefix blocks and swap reservations, and the
//!   [`KvShipSpec`] pricing prefill → decode KV shipping in the
//!   disaggregated mode,
//! * [`metrics`] — per-request TTFT / TPOT / end-to-end records,
//!   percentile summaries, and SLO goodput,
//! * [`lora`] + [`tenant`] — the multi-tenant layer: per-request
//!   [`AdapterId`]s whose weights page through the block pool behind a
//!   deterministic LRU [`AdapterCache`] (misses priced by
//!   [`ServingCostModel::adapter_load_seconds`]), [`QosClass`] priority
//!   admission with an anti-starvation aging bound ([`QosAdmission`],
//!   counters in [`QosStats`]), and the tenant-shaped workloads —
//!   [`RagSpec`] (shared document prefixes), [`AgentLoopSpec`] (tool-call
//!   loops re-prefilling a growing transcript), and [`MultiTenantSpec`]
//!   (mixed interactive/batch LoRA traffic),
//! * [`sweep`] — multi-replica fleets, the p99-SLO capacity search that
//!   reports requests/sec per socket for DECA versus software
//!   decompression (generalized by [`capacity_search_with`] to any cost
//!   model, any admission policy — including the paged one — and any
//!   workload family), and the sharding sweep (`deca_llm::parallel` TP/PP
//!   plans over an interconnect model) that finds the minimum socket count
//!   holding a KV working set while meeting the p99 SLO — making schemes
//!   that overflow one socket's HBM servable at TP ≥ 2.
//!
//! # Example
//!
//! ```
//! use deca_compress::CompressionScheme;
//! use deca_kernels::Engine;
//! use deca_llm::LlmModel;
//! use deca_roofsurface::MachineConfig;
//! use deca_serve::{
//!     hbm_kv_budget_tokens, EstimatorCostModel, ServingConfig, ServingSimulator, WorkloadSpec,
//! };
//!
//! let model = LlmModel::llama2_70b();
//! let scheme = CompressionScheme::bf8_sparse(0.05);
//! let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
//! let cost = EstimatorCostModel::new(
//!     MachineConfig::spr_hbm(),
//!     model,
//!     scheme,
//!     Engine::deca_default(),
//! );
//! let mut server = ServingSimulator::new(cost, ServingConfig::continuous(16, budget));
//! let trace = WorkloadSpec::chat(2.0, 40, 7).generate();
//! let report = server.run(&trace);
//! assert_eq!(report.completed() + report.rejected, 40);
//! assert!(report.metrics().ttft.p99_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod event;
pub mod kv;
pub mod lora;
pub mod metrics;
pub mod prefix;
pub mod scheduler;
pub mod sweep;
pub mod tenant;
pub mod tier;
pub mod workload;

pub use cost::{
    ChunkWork, CostMemoStats, DecodePoolCostModel, EstimatorCostModel, LinearCostModel,
    ServingCostModel, StepMix, SHIPPED_PREFILL_EPSILON_S,
};
pub use event::{Event, EventQueue, Scheduled};
pub use kv::{AllocatorStats, BlockAllocator, BlockId};
pub use lora::{AdapterCache, AdapterId, AdapterModel, AdapterStats};
pub use metrics::{
    percentile, LatencySummary, RequestRecord, ServingMetrics, SloTarget, TimeWeightedMean,
};
pub use prefix::{PrefixCache, PrefixCacheStats};
pub use scheduler::{
    PagedStats, SchedulerKind, ServingConfig, ServingReport, ServingSimulator, SpeculationSpec,
    DEFAULT_BLOCK_SIZE,
};
pub use sweep::{
    best_pool_split, capacity_search, capacity_search_warm, capacity_search_with,
    chunk_budget_capacity_sweep_with, disagg_capacity_search_with, fleet_capacity_search_with,
    hbm_kv_budget_tokens, min_sockets_for_slo, qos_capacity_search_with, sharded_kv_budget_tokens,
    sharding_sweep, simulate_disaggregated, simulate_disaggregated_with, simulate_fleet,
    simulate_fleet_with, speculation_goodput_curve_with, CapacityResult, CapacitySpec,
    ChunkBudgetPoint, ClassOutcome, DisaggReport, DisaggSpec, FleetReport, PoolSplitResult,
    QosCapacityResult, ShardingPlanResult, ShardingSearchSpec, SpeculationPoint,
};
pub use tenant::{
    AgentLoopSpec, MultiTenantSpec, QosAdmission, QosClass, QosPick, QosStats, RagSpec,
};
pub use tier::{KvShipSpec, KvTierModel, KvTierSpec, TierKind, TierResidency};
pub use workload::{
    ArrivalProcess, ColdSessionSpec, DocChatMixSpec, LengthDistribution, Request, RequestTrace,
    SharedPrefixChatSpec, TokenStream, WorkloadError, WorkloadSpec,
};
