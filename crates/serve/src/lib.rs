//! `deca-serve`: a continuous-batching LLM serving simulator on top of the
//! DECA latency model.
//!
//! The paper's evaluation (§9.4, Table 4) stops at single-batch next-token
//! latency. This crate adds the layer above: multi-request serving under
//! realistic load, answering fleet questions — throughput, tail latency,
//! SLO goodput — with every per-step cost still coming from the calibrated
//! [`deca_llm::InferenceEstimator`] (and therefore from the simulated
//! compressed-GeMM machine underneath).
//!
//! The pieces:
//!
//! * [`workload`] — Poisson and bursty arrival processes, prompt/output
//!   length distributions, and the replayable [`RequestTrace`],
//! * [`cost`] — the [`ServingCostModel`] trait: prefill cost (new in
//!   `deca-llm` for this layer) and per-step decode cost, memoized in
//!   [`EstimatorCostModel`],
//! * [`scheduler`] — vLLM/Orca-style continuous batching (admission at
//!   token boundaries against an HBM-derived KV budget) and the static
//!   run-to-completion baseline,
//! * [`metrics`] — per-request TTFT / TPOT / end-to-end records,
//!   percentile summaries, and SLO goodput,
//! * [`sweep`] — multi-replica fleets, the p99-SLO capacity search that
//!   reports requests/sec per socket for DECA versus software
//!   decompression, and the sharding sweep (`deca_llm::parallel` TP/PP
//!   plans over an interconnect model) that finds the minimum socket count
//!   holding a KV working set while meeting the p99 SLO — making schemes
//!   that overflow one socket's HBM servable at TP ≥ 2.
//!
//! # Example
//!
//! ```
//! use deca_compress::CompressionScheme;
//! use deca_kernels::Engine;
//! use deca_llm::LlmModel;
//! use deca_roofsurface::MachineConfig;
//! use deca_serve::{
//!     hbm_kv_budget_tokens, EstimatorCostModel, ServingConfig, ServingSimulator, WorkloadSpec,
//! };
//!
//! let model = LlmModel::llama2_70b();
//! let scheme = CompressionScheme::bf8_sparse(0.05);
//! let budget = hbm_kv_budget_tokens(&model, &scheme).expect("Q8_5% fits in HBM");
//! let cost = EstimatorCostModel::new(
//!     MachineConfig::spr_hbm(),
//!     model,
//!     scheme,
//!     Engine::deca_default(),
//! );
//! let mut server = ServingSimulator::new(cost, ServingConfig::continuous(16, budget));
//! let trace = WorkloadSpec::chat(2.0, 40, 7).generate();
//! let report = server.run(&trace);
//! assert_eq!(report.completed() + report.rejected, 40);
//! assert!(report.metrics().ttft.p99_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod metrics;
pub mod scheduler;
pub mod sweep;
pub mod workload;

pub use cost::{EstimatorCostModel, LinearCostModel, ServingCostModel};
pub use metrics::{LatencySummary, RequestRecord, ServingMetrics, SloTarget};
pub use scheduler::{SchedulerKind, ServingConfig, ServingReport, ServingSimulator};
pub use sweep::{
    capacity_search, hbm_kv_budget_tokens, min_sockets_for_slo, sharded_kv_budget_tokens,
    sharding_sweep, simulate_fleet, simulate_fleet_with, CapacityResult, CapacitySpec, FleetReport,
    ShardingPlanResult, ShardingSearchSpec,
};
pub use workload::{ArrivalProcess, LengthDistribution, Request, RequestTrace, WorkloadSpec};
