//! The paged KV-cache block allocator: fixed-size, ref-counted blocks of
//! KV-token slots, handed out from a free list.
//!
//! vLLM's PagedAttention observation, transplanted into the simulator: a
//! scheduler that reserves a request's whole `prompt + output` footprint at
//! admission wastes most of the budget on tokens that do not exist yet.
//! Allocating the KV cache in small fixed-size blocks *as the sequence
//! grows* raises effective capacity, and ref-counting the blocks lets
//! several sequences share a common prefix ([`crate::prefix`]) without
//! copying — copy-on-write semantics via [`BlockAllocator::cow`].
//!
//! # Invariants (enforced by `crates/serve/tests/property_serving.rs`)
//!
//! * A block is never double-freed: every [`BlockAllocator::free`] matches
//!   exactly one prior [`BlockAllocator::alloc`] or
//!   [`BlockAllocator::fork`]; freeing an unreferenced block panics.
//! * `allocated_blocks() + free_blocks() == total_blocks()` at all times.
//! * After every run drains (sequences retired, prefix cache flushed),
//!   `allocated_blocks() == 0` and every ref-count is zero.
//! * The allocator is deterministic: the free list is a LIFO stack, so the
//!   same alloc/free sequence always yields the same block ids.

/// Index of one KV-cache block in the allocator's pool.
pub type BlockId = usize;

/// Aggregate allocator statistics, snapshot at any point of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AllocatorStats {
    /// Tokens per block.
    pub block_size: usize,
    /// Blocks in the pool.
    pub total_blocks: usize,
    /// Blocks currently holding at least one reference.
    pub allocated_blocks: usize,
    /// Largest `allocated_blocks` observed.
    pub peak_allocated_blocks: usize,
    /// Successful allocations over the allocator's lifetime.
    pub total_allocs: u64,
    /// Allocations that failed for want of a free block.
    pub failed_allocs: u64,
    /// Reference forks (prefix shares) over the lifetime.
    pub forks: u64,
}

/// A fixed-pool, ref-counted block allocator for paged KV caching.
///
/// Blocks hold `block_size` KV-token slots each. [`BlockAllocator::alloc`]
/// hands out a free block with reference count 1; [`BlockAllocator::fork`]
/// adds a reference (prefix sharing); [`BlockAllocator::free`] drops one
/// and returns the block to the free list when the count reaches zero.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    block_size: usize,
    ref_counts: Vec<u32>,
    free_list: Vec<BlockId>,
    allocated: usize,
    peak_allocated: usize,
    total_allocs: u64,
    failed_allocs: u64,
    forks: u64,
}

impl BlockAllocator {
    /// Creates an allocator of `total_blocks` blocks of `block_size` tokens.
    /// A zero-block pool is legal (every `alloc` fails; the stats stay
    /// finite) — it models a replica with no KV headroom at all.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn new(block_size: usize, total_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BlockAllocator {
            block_size,
            ref_counts: vec![0; total_blocks],
            // LIFO stack, lowest ids on top: deterministic and cheap.
            free_list: (0..total_blocks).rev().collect(),
            allocated: 0,
            peak_allocated: 0,
            total_allocs: 0,
            failed_allocs: 0,
            forks: 0,
        }
    }

    /// Sizes an allocator from a KV-token budget (e.g.
    /// [`deca_llm::footprint::max_kv_tokens`]): as many whole blocks as the
    /// budget holds (zero blocks when the budget is under one block).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    #[must_use]
    pub fn from_token_budget(block_size: usize, budget_tokens: usize) -> Self {
        Self::new(block_size, budget_tokens / block_size)
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Blocks in the pool.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.ref_counts.len()
    }

    /// Token slots across the whole pool (`total_blocks × block_size`).
    #[must_use]
    pub fn total_tokens(&self) -> usize {
        self.ref_counts.len() * self.block_size
    }

    /// Blocks currently free.
    #[must_use]
    pub fn free_blocks(&self) -> usize {
        self.free_list.len()
    }

    /// Blocks currently holding at least one reference.
    #[must_use]
    pub fn allocated_blocks(&self) -> usize {
        self.allocated
    }

    /// Whole blocks needed to hold `tokens` token slots (rounded up).
    #[must_use]
    pub fn blocks_for_tokens(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_size)
    }

    /// Fraction of the pool currently allocated (0 for an empty pool, so
    /// the stat stays finite instead of going NaN in [`crate::PagedStats`]).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.ref_counts.is_empty() {
            0.0
        } else {
            self.allocated as f64 / self.ref_counts.len() as f64
        }
    }

    /// Internal fragmentation of the allocated blocks: the fraction of
    /// their token slots not covered by `occupied_tokens` (0 when nothing
    /// is allocated).
    #[must_use]
    pub fn internal_fragmentation(&self, occupied_tokens: usize) -> f64 {
        let slots = self.allocated * self.block_size;
        if slots == 0 {
            0.0
        } else {
            1.0 - (occupied_tokens.min(slots) as f64 / slots as f64)
        }
    }

    /// Current reference count of a block.
    #[must_use]
    pub fn ref_count(&self, block: BlockId) -> u32 {
        self.ref_counts[block]
    }

    /// Allocates a free block with reference count 1, or `None` when the
    /// pool is exhausted (the caller evicts or preempts and retries).
    pub fn alloc(&mut self) -> Option<BlockId> {
        let Some(block) = self.free_list.pop() else {
            self.failed_allocs += 1;
            return None;
        };
        debug_assert_eq!(self.ref_counts[block], 0);
        self.ref_counts[block] = 1;
        self.allocated += 1;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
        self.total_allocs += 1;
        Some(block)
    }

    /// Adds a reference to an allocated block (a sequence or the prefix
    /// cache sharing it).
    ///
    /// # Panics
    ///
    /// Panics if the block is free — sharing an unallocated block is a
    /// use-after-free.
    pub fn fork(&mut self, block: BlockId) {
        assert!(
            self.ref_counts[block] > 0,
            "fork of free block {block} (use after free)"
        );
        self.ref_counts[block] += 1;
        self.forks += 1;
    }

    /// Drops one reference; the block returns to the free list when the
    /// count reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if the block is already free — the double-free the property
    /// suite guards against.
    pub fn free(&mut self, block: BlockId) {
        assert!(self.ref_counts[block] > 0, "double free of block {block}");
        self.ref_counts[block] -= 1;
        if self.ref_counts[block] == 0 {
            self.allocated -= 1;
            self.free_list.push(block);
        }
    }

    /// Copy-on-write: returns a block the caller may mutate exclusively.
    /// A sole owner keeps its block; a shared block is released (one
    /// reference dropped) and a fresh private copy allocated. `None` when a
    /// copy is needed but the pool is exhausted — the shared reference is
    /// retained so the caller can evict/preempt and retry.
    ///
    /// # Panics
    ///
    /// Panics if the block is free.
    pub fn cow(&mut self, block: BlockId) -> Option<BlockId> {
        assert!(
            self.ref_counts[block] > 0,
            "copy-on-write of free block {block}"
        );
        if self.ref_counts[block] == 1 {
            return Some(block);
        }
        let copy = self.alloc()?;
        self.free(block);
        Some(copy)
    }

    /// Snapshot of the aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> AllocatorStats {
        AllocatorStats {
            block_size: self.block_size,
            total_blocks: self.ref_counts.len(),
            allocated_blocks: self.allocated,
            peak_allocated_blocks: self.peak_allocated,
            total_allocs: self.total_allocs,
            failed_allocs: self.failed_allocs,
            forks: self.forks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_returns_blocks_to_the_pool() {
        let mut pool = BlockAllocator::new(16, 4);
        assert_eq!(pool.total_tokens(), 64);
        let a = pool.alloc().unwrap();
        let b = pool.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.allocated_blocks(), 2);
        assert_eq!(pool.free_blocks(), 2);
        pool.free(a);
        pool.free(b);
        assert_eq!(pool.allocated_blocks(), 0);
        assert_eq!(pool.free_blocks(), 4);
        assert_eq!(pool.stats().total_allocs, 2);
    }

    #[test]
    fn exhaustion_returns_none_and_counts_the_failure() {
        let mut pool = BlockAllocator::new(1, 2);
        assert!(pool.alloc().is_some());
        assert!(pool.alloc().is_some());
        assert_eq!(pool.alloc(), None);
        assert_eq!(pool.stats().failed_allocs, 1);
        assert!((pool.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fork_shares_and_free_releases_one_reference_at_a_time() {
        let mut pool = BlockAllocator::new(16, 2);
        let block = pool.alloc().unwrap();
        pool.fork(block);
        pool.fork(block);
        assert_eq!(pool.ref_count(block), 3);
        pool.free(block);
        pool.free(block);
        assert_eq!(pool.allocated_blocks(), 1, "still referenced");
        pool.free(block);
        assert_eq!(pool.allocated_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pool = BlockAllocator::new(16, 2);
        let block = pool.alloc().unwrap();
        pool.free(block);
        pool.free(block);
    }

    #[test]
    fn cow_keeps_exclusive_blocks_and_copies_shared_ones() {
        let mut pool = BlockAllocator::new(16, 3);
        let block = pool.alloc().unwrap();
        // Sole owner: no copy.
        assert_eq!(pool.cow(block), Some(block));
        // Shared: the writer gets a fresh block, the original keeps one ref.
        pool.fork(block);
        let copy = pool.cow(block).unwrap();
        assert_ne!(copy, block);
        assert_eq!(pool.ref_count(block), 1);
        assert_eq!(pool.ref_count(copy), 1);
        // Shared but exhausted: the reference is retained for a retry.
        pool.fork(block);
        let _spare = pool.alloc().unwrap();
        assert_eq!(pool.cow(block), None);
        assert_eq!(pool.ref_count(block), 2);
    }

    #[test]
    fn token_rounding_and_fragmentation() {
        let mut pool = BlockAllocator::from_token_budget(16, 100);
        assert_eq!(pool.total_blocks(), 6);
        assert_eq!(pool.blocks_for_tokens(1), 1);
        assert_eq!(pool.blocks_for_tokens(16), 1);
        assert_eq!(pool.blocks_for_tokens(17), 2);
        let _a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        // 2 blocks = 32 slots; 24 occupied tokens leave 25% internal waste.
        assert!((pool.internal_fragmentation(24) - 0.25).abs() < 1e-12);
        assert_eq!(pool.internal_fragmentation(40), 0.0, "clamped");
    }

    /// Regression: a zero-block pool used to divide by zero and leak NaN
    /// utilization into `PagedStats`; now every stat stays finite and
    /// every alloc fails cleanly.
    #[test]
    fn zero_size_pool_keeps_stats_finite() {
        let mut pool = BlockAllocator::new(16, 0);
        assert_eq!(pool.total_blocks(), 0);
        assert_eq!(pool.total_tokens(), 0);
        assert_eq!(pool.alloc(), None);
        assert_eq!(pool.utilization(), 0.0, "not NaN");
        assert_eq!(pool.internal_fragmentation(0), 0.0, "not NaN");
        let stats = pool.stats();
        assert_eq!(stats.failed_allocs, 1);
        assert_eq!(stats.peak_allocated_blocks, 0);
        // The budget-sizing path hits the same case for sub-block budgets.
        let tiny = BlockAllocator::from_token_budget(16, 10);
        assert_eq!(tiny.total_blocks(), 0);
        assert_eq!(tiny.utilization(), 0.0);
    }

    #[test]
    fn allocation_order_is_deterministic() {
        let mut a = BlockAllocator::new(8, 8);
        let mut b = BlockAllocator::new(8, 8);
        let seq_a: Vec<_> = (0..5).map(|_| a.alloc().unwrap()).collect();
        let seq_b: Vec<_> = (0..5).map(|_| b.alloc().unwrap()).collect();
        assert_eq!(seq_a, seq_b);
        a.free(seq_a[2]);
        assert_eq!(a.alloc().unwrap(), seq_a[2], "LIFO free list");
    }
}
