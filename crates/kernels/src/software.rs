//! Execution model of the libxsmm-style software kernel.
//!
//! The software kernel decompresses with AVX into a double software buffer
//! kept in the L1 and consumes the buffer with AMX (§2.4, Fig. 2). The
//! double buffer plus out-of-order execution overlap the AVX sequence of
//! tile *i+1* with the AMX work on tile *i*; hardware and software
//! prefetching cover the streaming weight reads.

use deca_compress::CompressionScheme;
use deca_sim::{InvocationModel, PrefetchConfig, TileExecModel};

use crate::avx_model::{AvxOpBudget, VectorResources};

/// Prefetch run-ahead (in tiles) available to the software kernel: the L2
/// stream prefetcher plus explicit software prefetches emitted by libxsmm.
pub const SOFTWARE_PREFETCH_DISTANCE: usize = 8;

/// Builds the [`TileExecModel`] of the software compressed-GeMM kernel for
/// a scheme, given the core's vector resources.
#[must_use]
pub fn software_exec_model(
    scheme: &CompressionScheme,
    resources: &VectorResources,
) -> TileExecModel {
    let budget = AvxOpBudget::for_scheme(scheme);
    TileExecModel {
        bytes_per_tile: scheme.expected_tile_bytes(),
        decompress_cycles_per_tile: resources.decompress_cycles_per_tile(&budget),
        core_cycles_per_tile: resources.core_cycles_per_tile(&budget),
        tmul_cycles_per_tile: 16.0,
        exposed_pre_latency: 0.0,
        // The double buffer lives in the L1; the AMX TLoad from it costs a
        // handful of cycles.
        exposed_post_latency: 5.0,
        invocation: InvocationModel::Overlapped,
        buffering_depth: 2,
        prefetch: PrefetchConfig::stream(SOFTWARE_PREFETCH_DISTANCE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_roofsurface::{KernelSignature, MachineConfig, RoofSurface};
    use deca_sim::{CacheConfig, GemmSimulation};

    #[test]
    fn model_fields_follow_the_op_budget() {
        let scheme = CompressionScheme::bf8_sparse(0.3);
        let model = software_exec_model(&scheme, &VectorResources::spr());
        assert_eq!(model.decompress_cycles_per_tile, 72.0);
        assert!((model.bytes_per_tile - 217.6).abs() < 1e-9);
        assert!(matches!(model.invocation, InvocationModel::Overlapped));
    }

    #[test]
    fn simulated_software_kernel_stays_below_roof_surface() {
        // The simulator adds latency and overlap imperfections on top of the
        // analytic Roof-Surface bound, so simulated performance must stay at
        // or slightly below the R-S prediction, never above it — and within
        // ~25 % of it for the VEC-bound kernels (Fig. 4b "Real" column).
        let machine = MachineConfig::spr_hbm();
        let surface = RoofSurface::for_cpu(&machine);
        let sim = GemmSimulation::new(machine.clone(), CacheConfig::spr());
        for scheme in deca_compress::SchemeSet::paper_evaluation() {
            let model = software_exec_model(&scheme, &VectorResources::spr());
            let simulated = sim.run(&model, 4000).tflops(&machine, 4);
            let sig = KernelSignature::from_scheme_and_vops(
                &scheme,
                crate::avx_model::software_vops_per_tile(&scheme).max(1.0),
            );
            let analytic = surface.flops(&sig, 4) / 1e12;
            assert!(
                simulated <= analytic * 1.02,
                "{scheme}: simulated {simulated:.2} exceeds Roof-Surface {analytic:.2}"
            );
            assert!(
                simulated >= analytic * 0.72,
                "{scheme}: simulated {simulated:.2} too far below Roof-Surface {analytic:.2}"
            );
        }
    }

    #[test]
    fn wider_and_more_avx_variants_change_the_model() {
        let scheme = CompressionScheme::bf8_sparse(0.1);
        let base = software_exec_model(&scheme, &VectorResources::spr());
        let more = software_exec_model(&scheme, &VectorResources::more_avx_units());
        let wider = software_exec_model(&scheme, &VectorResources::wider_avx_units());
        assert!(more.decompress_cycles_per_tile < base.decompress_cycles_per_tile);
        assert!(wider.decompress_cycles_per_tile < base.decompress_cycles_per_tile);
        assert_eq!(more.core_cycles_per_tile, base.core_cycles_per_tile);
        assert!(wider.core_cycles_per_tile < base.core_cycles_per_tile);
    }
}
