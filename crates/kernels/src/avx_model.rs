//! The AVX decompression instruction budget of the libxsmm software kernel.
//!
//! Libxsmm decompresses one 64-byte output row (32 BF16 elements) at a time
//! with a short AVX-512 sequence (§2.4): load the bitmask chunk and the
//! packed nonzeros, expand the nonzeros to their dense positions with a
//! masked `vexpand`, convert the narrow format to BF16, apply the scale
//! factors for MX formats, store the row into the software double buffer,
//! and advance the cursors. The *number* of such instructions per row is
//! what determines the kernel's matriX-to-Vector intensity, and therefore
//! whether it is VEC-bound.
//!
//! The budgets below are derived from that sequence and calibrated so the
//! resulting signatures land where the paper's Fig. 4b/5 place them
//! (96 ops/tile for sparse Q16, 144 for sparse Q8, 80 for dense Q8,
//! 192 for MXFP4).

use deca_compress::{CompressionScheme, TILE_ROWS};
use deca_roofsurface::KernelSignature;

/// The per-row AVX instruction budget of a decompression sequence, split by
/// port class so that vector-resource scaling experiments (§7, Fig. 15) can
/// be modelled: wider vectors shrink the compute portion but memory
/// operations stay cache-line sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AvxOpBudget {
    /// Vector load instructions per 32-element output row.
    pub loads_per_row: u32,
    /// Vector store instructions per row (into the software double buffer).
    pub stores_per_row: u32,
    /// Non-memory vector instructions per row (permutes, expands, converts,
    /// shifts, multiplies, mask manipulation).
    pub compute_per_row: u32,
}

impl AvxOpBudget {
    /// The budget for a compression scheme.
    #[must_use]
    pub fn for_scheme(scheme: &CompressionScheme) -> Self {
        let quantized = scheme.is_quantized();
        let sparse = scheme.is_sparse();
        let bits = scheme.format().bits();
        match (quantized, sparse) {
            // Uncompressed BF16: tiles are TLoaded directly; only a software
            // prefetch / cursor update per row.
            (false, false) => AvxOpBudget {
                loads_per_row: 0,
                stores_per_row: 0,
                compute_per_row: 1,
            },
            // Sparse BF16: bitmask load, nonzero load, masked expand, store,
            // popcount + cursor bookkeeping.
            (false, true) => AvxOpBudget {
                loads_per_row: 2,
                stores_per_row: 1,
                compute_per_row: 3,
            },
            // Quantized formats.
            (true, sparse) => {
                if bits <= 4 {
                    // MXFP4: load packed nibbles, split high/low nibbles,
                    // two-step LUT permutes for each half, broadcast and
                    // apply the group scale, re-interleave, store.
                    let extra_sparse = if sparse { 3 } else { 0 };
                    AvxOpBudget {
                        loads_per_row: 2,
                        stores_per_row: 1,
                        compute_per_row: 9 + extra_sparse,
                    }
                } else if sparse {
                    // Sparse BF8: bitmask load, data load, masked byte
                    // expand, two-step widen/convert to BF16, exponent
                    // fix-up, store, popcount + cursor bookkeeping.
                    AvxOpBudget {
                        loads_per_row: 2,
                        stores_per_row: 1,
                        compute_per_row: 6,
                    }
                } else {
                    // Dense BF8: data load, two-step convert, store, cursor.
                    AvxOpBudget {
                        loads_per_row: 1,
                        stores_per_row: 1,
                        compute_per_row: 3,
                    }
                }
            }
        }
    }

    /// Total AVX instructions per row.
    #[must_use]
    pub fn total_per_row(&self) -> u32 {
        self.loads_per_row + self.stores_per_row + self.compute_per_row
    }

    /// Total AVX instructions per 16-row weight tile.
    #[must_use]
    pub fn total_per_tile(&self) -> u32 {
        self.total_per_row() * TILE_ROWS as u32
    }

    /// Memory (load + store) instructions per tile.
    #[must_use]
    pub fn memory_ops_per_tile(&self) -> u32 {
        (self.loads_per_row + self.stores_per_row) * TILE_ROWS as u32
    }

    /// Compute (non-memory) instructions per tile.
    #[must_use]
    pub fn compute_ops_per_tile(&self) -> u32 {
        self.compute_per_row * TILE_ROWS as u32
    }
}

/// The CPU core's vector execution resources available to the decompression
/// sequence, and how they are scaled in the §7 alternatives.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VectorResources {
    /// SIMD execution ports that can run the decompression µops.
    pub simd_units: usize,
    /// Vector width multiplier versus AVX-512 (4 models the hypothetical
    /// AVX-2048 units of Fig. 15).
    pub width_multiplier: usize,
    /// Issue/commit width of the core (unchanged in all §7 variants).
    pub issue_width: usize,
}

impl VectorResources {
    /// Stock SPR core: 2 AVX-512 FMA-capable ports, 6-wide allocation.
    #[must_use]
    pub fn spr() -> Self {
        VectorResources {
            simd_units: 2,
            width_multiplier: 1,
            issue_width: 6,
        }
    }

    /// The "More AVX Units" alternative: 4× more SIMD ports, same core
    /// width.
    #[must_use]
    pub fn more_avx_units() -> Self {
        VectorResources {
            simd_units: 8,
            ..VectorResources::spr()
        }
    }

    /// The "Wider AVX Units" alternative: AVX-2048, modelled optimistically
    /// by shrinking the compute portion of the sequence 4× while memory
    /// operations stay cache-line sized.
    #[must_use]
    pub fn wider_avx_units() -> Self {
        VectorResources {
            width_multiplier: 4,
            ..VectorResources::spr()
        }
    }

    /// Dynamic AVX instructions per tile after width scaling.
    #[must_use]
    pub fn effective_avx_ops_per_tile(&self, budget: &AvxOpBudget) -> f64 {
        let compute = f64::from(budget.compute_ops_per_tile()) / self.width_multiplier as f64;
        let memory = f64::from(budget.memory_ops_per_tile());
        compute + memory
    }

    /// Cycles the SIMD ports are busy decompressing one tile.
    #[must_use]
    pub fn decompress_cycles_per_tile(&self, budget: &AvxOpBudget) -> f64 {
        self.effective_avx_ops_per_tile(budget) / self.simd_units as f64
    }

    /// Core issue-slot cycles per tile: the whole dynamic instruction stream
    /// of one iteration — AVX sequence, AMX instructions (TLoad + TComp) and
    /// scalar loop overhead — divided by the core width.
    #[must_use]
    pub fn core_cycles_per_tile(&self, budget: &AvxOpBudget) -> f64 {
        const AMX_OPS_PER_TILE: f64 = 2.0;
        const SCALAR_OVERHEAD_PER_TILE: f64 = 8.0;
        (self.effective_avx_ops_per_tile(budget) + AMX_OPS_PER_TILE + SCALAR_OVERHEAD_PER_TILE)
            / self.issue_width as f64
    }
}

/// The number of vector operations per tile used for Roof-Surface
/// signatures of the *software* kernel (stock SPR resources).
#[must_use]
pub fn software_vops_per_tile(scheme: &CompressionScheme) -> f64 {
    f64::from(AvxOpBudget::for_scheme(scheme).total_per_tile())
}

/// The Roof-Surface kernel signature of the software kernel for a scheme.
#[must_use]
pub fn software_signature(scheme: &CompressionScheme) -> KernelSignature {
    KernelSignature::from_scheme_and_vops(scheme, software_vops_per_tile(scheme).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_calibration_targets() {
        // The op totals that put the software kernels where Fig. 4b/5 place
        // them.
        assert_eq!(
            AvxOpBudget::for_scheme(&CompressionScheme::bf16_sparse(0.2)).total_per_tile(),
            96
        );
        assert_eq!(
            AvxOpBudget::for_scheme(&CompressionScheme::bf8_sparse(0.1)).total_per_tile(),
            144
        );
        assert_eq!(
            AvxOpBudget::for_scheme(&CompressionScheme::bf8_dense()).total_per_tile(),
            80
        );
        assert_eq!(
            AvxOpBudget::for_scheme(&CompressionScheme::mxfp4()).total_per_tile(),
            192
        );
        assert_eq!(
            AvxOpBudget::for_scheme(&CompressionScheme::bf16_dense()).total_per_tile(),
            16
        );
    }

    #[test]
    fn budget_is_independent_of_density_within_a_format() {
        // The AVX sequence processes whole rows, so its length does not
        // depend on how many nonzeros a row happens to contain.
        for d in [0.5, 0.3, 0.1, 0.05] {
            assert_eq!(
                AvxOpBudget::for_scheme(&CompressionScheme::bf8_sparse(d)).total_per_tile(),
                144
            );
        }
    }

    #[test]
    fn sparse_mxfp4_costs_more_than_dense() {
        let dense = AvxOpBudget::for_scheme(&CompressionScheme::mxfp4());
        let sparse = AvxOpBudget::for_scheme(&CompressionScheme::mxfp4_sparse(0.3));
        assert!(sparse.total_per_tile() > dense.total_per_tile());
    }

    #[test]
    fn stock_resources_cycle_counts() {
        let budget = AvxOpBudget::for_scheme(&CompressionScheme::bf8_sparse(0.2));
        let spr = VectorResources::spr();
        assert_eq!(spr.effective_avx_ops_per_tile(&budget), 144.0);
        assert_eq!(spr.decompress_cycles_per_tile(&budget), 72.0);
        // (144 + 2 + 8) / 6 ≈ 25.7 issue cycles per tile: 40–80 % of the
        // commit slots when the per-tile time is 52–84 cycles, matching §4.2.
        let core = spr.core_cycles_per_tile(&budget);
        assert!((core - 154.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn more_units_divide_simd_cycles_but_not_issue_cycles() {
        let budget = AvxOpBudget::for_scheme(&CompressionScheme::bf8_sparse(0.2));
        let more = VectorResources::more_avx_units();
        assert_eq!(more.decompress_cycles_per_tile(&budget), 18.0);
        assert_eq!(
            more.core_cycles_per_tile(&budget),
            VectorResources::spr().core_cycles_per_tile(&budget),
            "commit-width pressure is unchanged"
        );
    }

    #[test]
    fn wider_units_shrink_compute_but_not_memory_ops() {
        let budget = AvxOpBudget::for_scheme(&CompressionScheme::bf8_sparse(0.2));
        let wider = VectorResources::wider_avx_units();
        // loads+stores = 48 per tile stay; compute 96 -> 24.
        assert_eq!(wider.effective_avx_ops_per_tile(&budget), 72.0);
        assert_eq!(wider.decompress_cycles_per_tile(&budget), 36.0);
    }

    #[test]
    fn software_signature_uses_byte_accounting_and_op_budget() {
        let sig = software_signature(&CompressionScheme::mxfp4());
        assert!((sig.vops_per_tile() - 192.0).abs() < 1e-9);
        assert!((sig.bytes_per_tile() - 272.0).abs() < 1e-9);
    }
}
