//! GeMM shapes and the FC-cascade workload (§8).

use deca_compress::{TILE_COLS, TILE_ROWS};

/// The shape of one FC-layer GeMM: activations are `N×K`, weights `K×M`,
/// output `N×M` (§2.3's convention with batch size `N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct GemmShape {
    /// Batch size (rows of the activation matrix).
    pub n: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Output features (columns of the weight matrix).
    pub m: usize,
}

impl GemmShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(n: usize, k: usize, m: usize) -> Self {
        assert!(n > 0 && k > 0 && m > 0, "GeMM dimensions must be positive");
        GemmShape { n, k, m }
    }

    /// Number of weight elements.
    #[must_use]
    pub fn weight_elements(&self) -> usize {
        self.k * self.m
    }

    /// Number of 16×32 weight tiles the GeMM streams (zero-padded at the
    /// edges).
    #[must_use]
    pub fn weight_tiles(&self) -> usize {
        self.m.div_ceil(TILE_ROWS) * self.k.div_ceil(TILE_COLS)
    }

    /// Total FMAs of the GeMM (`N·K·M`).
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.n as f64 * self.k as f64 * self.m as f64
    }

    /// TMUL tile operations needed (each covers `512·min(N,16)` FMAs).
    #[must_use]
    pub fn tmul_ops(&self) -> usize {
        self.weight_tiles() * self.n.div_ceil(16)
    }

    /// Bytes of uncompressed BF16 weights.
    #[must_use]
    pub fn weight_bytes_bf16(&self) -> usize {
        self.weight_elements() * 2
    }
}

/// A cascade of identical FC layers, the microbenchmark workload of §8
/// ("a large cascade of FC layers ... ≈250 million parameters, similar to
/// the large FC layers of Llama-2-70B").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FcCascade {
    /// Shape of each layer's GeMM.
    pub layer: GemmShape,
    /// Number of chained layers.
    pub layers: usize,
}

impl FcCascade {
    /// The paper's microbenchmark: FC layers of 8192 × 30720 ≈ 252 M
    /// parameters each, with the requested batch size.
    #[must_use]
    pub fn paper_microbenchmark(batch: usize) -> Self {
        FcCascade {
            layer: GemmShape::new(batch, 8192, 30720),
            layers: 8,
        }
    }

    /// A scaled-down cascade for fast tests (same tile-level behaviour).
    #[must_use]
    pub fn small(batch: usize) -> Self {
        FcCascade {
            layer: GemmShape::new(batch, 512, 1024),
            layers: 2,
        }
    }

    /// Total weight tiles streamed by the cascade.
    #[must_use]
    pub fn total_weight_tiles(&self) -> usize {
        self.layer.weight_tiles() * self.layers
    }

    /// Total weight parameters.
    #[must_use]
    pub fn total_parameters(&self) -> usize {
        self.layer.weight_elements() * self.layers
    }

    /// Total FMAs.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.layer.flops() * self.layers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::TILE_ELEMS;

    #[test]
    fn shape_accounting() {
        let shape = GemmShape::new(4, 8192, 30720);
        assert_eq!(shape.weight_elements(), 8192 * 30720);
        assert_eq!(shape.weight_tiles(), (30720 / 16) * (8192 / 32));
        assert_eq!(shape.weight_tiles() * TILE_ELEMS, shape.weight_elements());
        assert_eq!(shape.flops(), 4.0 * 8192.0 * 30720.0);
        assert_eq!(shape.tmul_ops(), shape.weight_tiles());
        assert_eq!(shape.weight_bytes_bf16(), 2 * 8192 * 30720);
    }

    #[test]
    fn ragged_shapes_round_up_to_whole_tiles() {
        let shape = GemmShape::new(1, 33, 17);
        assert_eq!(shape.weight_tiles(), 2 * 2);
        let batch_32 = GemmShape::new(32, 64, 64);
        assert_eq!(batch_32.tmul_ops(), batch_32.weight_tiles() * 2);
    }

    #[test]
    fn paper_microbenchmark_is_250m_parameters_per_layer() {
        let cascade = FcCascade::paper_microbenchmark(1);
        let params = cascade.layer.weight_elements() as f64;
        assert!((params - 251.66e6).abs() / 251.66e6 < 0.01);
        assert_eq!(
            cascade.total_parameters(),
            cascade.layer.weight_elements() * 8
        );
        assert!(cascade.total_weight_tiles() > 3_900_000);
    }

    #[test]
    fn small_cascade_is_cheap() {
        let cascade = FcCascade::small(4);
        assert!(cascade.total_weight_tiles() < 5000);
        assert_eq!(cascade.total_flops(), 2.0 * 4.0 * 512.0 * 1024.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = GemmShape::new(0, 8, 8);
    }
}
