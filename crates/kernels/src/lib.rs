//! Compressed-GeMM kernels for the DECA reproduction.
//!
//! This crate provides both sides of the paper's comparison:
//!
//! * the **software baseline**: a model of Intel's libxsmm compressed-GeMM
//!   kernels, which decompress tiles with an AVX instruction sequence and
//!   overlap it with AMX through a double software buffer (§2.4). The AVX
//!   instruction budget per tile, and how it changes when the core's vector
//!   resources are scaled (more units / wider units, §7), live in
//!   [`avx_model`];
//! * the **DECA kernel**: the same GeMM invoking a per-core DECA PE through
//!   TEPL (or the store+fence fallback), built on the `deca` crate;
//! * the **workload**: FC-layer GeMM shapes, a large FC cascade like the one
//!   used in §8, and Parlooper-style static partitioning across cores;
//! * the **executor**: runs either kernel on the `deca-sim` machine model
//!   and reports TFLOPS, utilization and speedups (the data behind
//!   Figs. 12–15 and Table 3);
//! * a **functional GeMM** used to check that computing with decompressed
//!   weights gives the same result (up to quantization error) as the dense
//!   reference.
//!
//! # Example
//!
//! ```
//! use deca_compress::CompressionScheme;
//! use deca_kernels::{CompressedGemmExecutor, Engine};
//! use deca_roofsurface::MachineConfig;
//!
//! let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
//! let result = executor.run(&CompressionScheme::bf8_sparse(0.2), Engine::software(), 1);
//! assert!(result.tflops > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avx_model;
mod executor;
pub mod functional;
mod gemm;
mod parlooper;
mod software;

pub use avx_model::{AvxOpBudget, VectorResources};
pub use executor::{CompressedGemmExecutor, Engine, GemmRunResult};
pub use gemm::{FcCascade, GemmShape};
pub use parlooper::Parlooper;
pub use software::software_exec_model;

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::{CompressionScheme, SchemeSet};
    use deca_roofsurface::MachineConfig;

    /// Figure 13's qualitative result: on HBM, DECA beats the software
    /// kernel for (almost) every compression scheme, by up to ~4x, and
    /// approaches the roofline-optimal speedup.
    #[test]
    fn deca_beats_software_on_hbm() {
        let executor = CompressedGemmExecutor::new(MachineConfig::spr_hbm());
        let mut max_speedup: f64 = 0.0;
        for scheme in SchemeSet::paper_evaluation() {
            let sw = executor.run(&scheme, Engine::software(), 1);
            let deca = executor.run(&scheme, Engine::deca_default(), 1);
            let ratio = deca.tflops / sw.tflops;
            assert!(
                ratio > 0.95,
                "{scheme}: DECA ({:.2} TF) should not lose to software ({:.2} TF)",
                deca.tflops,
                sw.tflops
            );
            max_speedup = max_speedup.max(ratio);
        }
        assert!(
            max_speedup > 3.0,
            "DECA's best-case speedup over software should approach 4x, got {max_speedup:.2}"
        );
    }

    /// Figure 12's qualitative result: on DDR, the software kernel is
    /// already near the (memory) roofline for low compression factors, so
    /// DECA only helps for highly compressed schemes.
    #[test]
    fn ddr_speedups_appear_only_at_high_compression() {
        let executor = CompressedGemmExecutor::new(MachineConfig::spr_ddr());
        let low_cf = CompressionScheme::bf16_sparse(0.5);
        let high_cf = CompressionScheme::bf8_sparse(0.05);
        let low = executor.run(&low_cf, Engine::deca_default(), 1).tflops
            / executor.run(&low_cf, Engine::software(), 1).tflops;
        let high = executor.run(&high_cf, Engine::deca_default(), 1).tflops
            / executor.run(&high_cf, Engine::software(), 1).tflops;
        assert!(
            low < 1.15,
            "no meaningful gain expected at low CF on DDR, got {low:.2}"
        );
        assert!(
            high > 1.4,
            "high-CF schemes should gain on DDR, got {high:.2}"
        );
    }
}
