//! Runs compressed-GeMM kernels on the simulated machine.

use deca::{timing, DecaConfig, IntegrationConfig};
use deca_compress::{
    generator::WeightGenerator, CompressError, CompressionScheme, Compressor, EngineKind,
};
use deca_roofsurface::{MachineConfig, Roofline};
use deca_sim::{CacheConfig, GemmSimulation, GemmStats, TileExecModel};

use crate::{avx_model::VectorResources, software_exec_model, GemmShape, Parlooper};

/// Which decompression engine executes the kernel.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Engine {
    /// The libxsmm-style software kernel on the core's AVX units.
    Software {
        /// The core's vector resources (stock or scaled per §7).
        resources: VectorResources,
    },
    /// The DECA-accelerated kernel.
    Deca {
        /// PE sizing.
        config: DecaConfig,
        /// Integration / invocation options.
        integration: IntegrationConfig,
    },
}

impl Engine {
    /// The stock software kernel.
    #[must_use]
    pub fn software() -> Self {
        Engine::Software {
            resources: VectorResources::spr(),
        }
    }

    /// The software kernel on a core with scaled vector resources.
    #[must_use]
    pub fn software_with(resources: VectorResources) -> Self {
        Engine::Software { resources }
    }

    /// DECA with the paper's baseline sizing and full integration
    /// (TOut registers, DECA prefetcher, TEPL).
    #[must_use]
    pub fn deca_default() -> Self {
        Engine::Deca {
            config: DecaConfig::baseline(),
            integration: IntegrationConfig::full(),
        }
    }

    /// DECA with explicit sizing and integration options.
    #[must_use]
    pub fn deca(config: DecaConfig, integration: IntegrationConfig) -> Self {
        Engine::Deca {
            config,
            integration,
        }
    }

    /// A short display label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Engine::Software { resources } => {
                if resources.width_multiplier > 1 {
                    "Wider AVX Units".to_string()
                } else if resources.simd_units > 2 {
                    "More AVX Units".to_string()
                } else {
                    "Software-only".to_string()
                }
            }
            Engine::Deca { config, .. } => format!("DECA{{W={},L={}}}", config.w, config.l),
        }
    }
}

/// The result of one simulated compressed GeMM.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GemmRunResult {
    /// Scheme label (`Q8_20%` etc.).
    pub scheme: String,
    /// Engine label.
    pub engine: String,
    /// Which functional decompression backend stands behind this modeled
    /// run (the engine used when cross-checking modeled numbers against the
    /// functional ground truth).
    pub decompress_engine: String,
    /// Batch size used.
    pub batch: usize,
    /// Achieved TFLOPS (FMAs/s ×1e-12) at the socket level.
    pub tflops: f64,
    /// Detailed simulation statistics.
    pub stats: GemmStats,
}

impl GemmRunResult {
    /// Speedup of this run over a baseline run.
    #[must_use]
    pub fn speedup_over(&self, baseline: &GemmRunResult) -> f64 {
        if baseline.tflops == 0.0 {
            0.0
        } else {
            self.tflops / baseline.tflops
        }
    }
}

/// Executes compressed GeMMs (software or DECA) on a simulated machine.
#[derive(Debug, Clone)]
pub struct CompressedGemmExecutor {
    machine: MachineConfig,
    cache: CacheConfig,
    steady_state_tiles: usize,
    decompress_backend: EngineKind,
}

impl CompressedGemmExecutor {
    /// Creates an executor for a machine with SPR cache parameters. The
    /// functional decompression backend defaults to the scalar reference.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        CompressedGemmExecutor {
            machine,
            cache: CacheConfig::spr(),
            steady_state_tiles: 3000,
            decompress_backend: EngineKind::Scalar,
        }
    }

    /// Overrides the cache configuration.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Overrides how many tiles per core are simulated for steady-state
    /// measurements.
    #[must_use]
    pub fn with_steady_state_tiles(mut self, tiles: usize) -> Self {
        self.steady_state_tiles = tiles.max(1);
        self
    }

    /// Selects which functional decompression backend stands behind this
    /// executor's modeled runs (named in every [`GemmRunResult`] and used by
    /// [`CompressedGemmExecutor::verify_functional`]).
    #[must_use]
    pub fn with_decompress_backend(mut self, backend: EngineKind) -> Self {
        self.decompress_backend = backend;
        self
    }

    /// The configured functional decompression backend.
    #[must_use]
    pub fn decompress_backend(&self) -> EngineKind {
        self.decompress_backend
    }

    /// The simulated machine.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Cross-checks the configured backend against the scalar reference on
    /// a synthetic matrix compressed with `scheme`: the functional ground
    /// truth the modeled numbers stand on must be engine-independent.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::CorruptTile`] with the backend's name if
    /// the outputs differ, and propagates compression errors.
    pub fn verify_functional(&self, scheme: &CompressionScheme) -> Result<(), CompressError> {
        let weights = WeightGenerator::new(97).dense_matrix(64, 96);
        let compressed = Compressor::new(*scheme).compress_matrix(&weights)?;
        let reference = deca_compress::Decompressor::new().decompress_matrix(&compressed)?;
        let via_backend = self
            .decompress_backend
            .build()
            .decompress_matrix(&compressed)?;
        if via_backend != reference {
            return Err(CompressError::CorruptTile {
                reason: format!(
                    "backend {} disagrees with the scalar reference on {scheme}",
                    self.decompress_backend
                ),
            });
        }
        Ok(())
    }

    /// Builds the tile execution model of a scheme on an engine.
    #[must_use]
    pub fn exec_model(&self, scheme: &CompressionScheme, engine: &Engine) -> TileExecModel {
        match engine {
            Engine::Software { resources } => software_exec_model(scheme, resources),
            Engine::Deca {
                config,
                integration,
            } => timing::tile_exec_model(scheme, config, integration, &self.cache),
        }
    }

    /// Runs a steady-state compressed GeMM and reports the result.
    #[must_use]
    pub fn run(&self, scheme: &CompressionScheme, engine: Engine, batch: usize) -> GemmRunResult {
        let model = self.exec_model(scheme, &engine);
        let sim = GemmSimulation::new(self.machine.clone(), self.cache.clone());
        let stats = sim.run(&model, self.steady_state_tiles);
        GemmRunResult {
            scheme: scheme.label(),
            engine: engine.label(),
            decompress_engine: self.decompress_backend.label().to_string(),
            batch,
            tflops: stats.tflops(&self.machine, batch),
            stats,
        }
    }

    /// The uncompressed BF16 baseline the paper normalizes against
    /// (software kernel, dense BF16 weights).
    #[must_use]
    pub fn uncompressed_baseline(&self, batch: usize) -> GemmRunResult {
        self.run(&CompressionScheme::bf16_dense(), Engine::software(), batch)
    }

    /// The roofline-optimal TFLOPS of a scheme ("Optimal" in Figs. 12/13):
    /// the traditional roofline with all decompression overheads hidden.
    #[must_use]
    pub fn optimal_tflops(&self, scheme: &CompressionScheme, batch: usize) -> f64 {
        let roofline = Roofline::new(&self.machine);
        roofline.attainable_flops(scheme.flops_per_byte(batch), batch) / 1e12
    }

    /// Wall-clock seconds a full GeMM of `shape` takes with the given scheme
    /// and engine: the per-tile steady-state rate applied to the
    /// worst-loaded core of a Parlooper partition.
    #[must_use]
    pub fn gemm_seconds(
        &self,
        shape: &GemmShape,
        scheme: &CompressionScheme,
        engine: Engine,
        batch: usize,
    ) -> f64 {
        let result = self.run(scheme, engine, batch);
        let partition = Parlooper::partition(shape, self.machine.cores);
        let cycles_per_tile = result.stats.cycles_per_tile();
        // Activation-tile reuse: with batches above 16 the TMUL runs
        // ceil(N/16) operations per weight tile, but the weight traffic and
        // decompression work stay the same; the extra TMUL time only matters
        // if the kernel is TMUL-bound, which these GeMMs are not.
        partition.max_tiles_per_core() as f64 * cycles_per_tile / self.machine.frequency_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::SchemeSet;

    fn executor() -> CompressedGemmExecutor {
        CompressedGemmExecutor::new(MachineConfig::spr_hbm()).with_steady_state_tiles(2000)
    }

    #[test]
    fn uncompressed_baseline_is_memory_bound() {
        let exec = executor();
        let base = exec.uncompressed_baseline(1);
        assert!(base.stats.memory_utilization() > 0.9);
        // ~0.4 TFLOPS at N=1 on HBM (850 GB/s / 1 KB per tile * 512 FMAs).
        assert!(
            (base.tflops - 0.42).abs() < 0.05,
            "baseline {}",
            base.tflops
        );
    }

    #[test]
    fn deca_speedup_over_software_reaches_4x_on_hbm() {
        let exec = executor();
        let scheme = CompressionScheme::bf8_sparse(0.05);
        let sw = exec.run(&scheme, Engine::software(), 1);
        let deca = exec.run(&scheme, Engine::deca_default(), 1);
        let speedup = deca.speedup_over(&sw);
        assert!(
            speedup > 3.0 && speedup < 5.5,
            "Q8_5% DECA over software: {speedup:.2} (paper: up to 4x)"
        );
    }

    #[test]
    fn deca_is_near_optimal_for_every_scheme() {
        // §9.1: "In both DDR and HBM, the performance of DECA is
        // near-optimal" (the VEC overheads are hidden).
        let exec = executor();
        for scheme in SchemeSet::paper_evaluation() {
            let deca = exec.run(&scheme, Engine::deca_default(), 1);
            let optimal = exec.optimal_tflops(&scheme, 1);
            assert!(
                deca.tflops > 0.75 * optimal,
                "{scheme}: DECA {:.2} TF vs optimal {:.2} TF",
                deca.tflops,
                optimal
            );
            assert!(deca.tflops <= optimal * 1.02);
        }
    }

    #[test]
    fn software_is_vec_bound_but_deca_is_not_for_q8_sparse() {
        let exec = executor();
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let sw = exec.run(&scheme, Engine::software(), 1);
        let deca = exec.run(&scheme, Engine::deca_default(), 1);
        assert!(sw.stats.decompress_utilization() > 0.85);
        assert!(sw.stats.memory_utilization() < 0.6);
        assert!(deca.stats.memory_utilization() > 0.8);
    }

    #[test]
    fn results_name_the_decompress_backend() {
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let base = executor();
        assert_eq!(base.decompress_backend(), EngineKind::Scalar);
        let run = base.run(&scheme, Engine::deca_default(), 1);
        assert_eq!(run.decompress_engine, "scalar");
        let word = executor().with_decompress_backend(EngineKind::WordParallel);
        let run = word.run(&scheme, Engine::deca_default(), 1);
        assert_eq!(run.decompress_engine, "word-parallel");
        // The modeled numbers do not depend on the functional backend.
        assert_eq!(
            run.tflops,
            base.run(&scheme, Engine::deca_default(), 1).tflops
        );
    }

    #[test]
    fn verify_functional_passes_for_every_backend() {
        for kind in EngineKind::all() {
            let exec = executor().with_decompress_backend(kind);
            for scheme in [
                CompressionScheme::bf8_sparse(0.3),
                CompressionScheme::mxfp4(),
            ] {
                exec.verify_functional(&scheme).expect("bit-exact backend");
            }
        }
    }

    #[test]
    fn engine_labels() {
        assert_eq!(Engine::software().label(), "Software-only");
        assert_eq!(
            Engine::software_with(VectorResources::more_avx_units()).label(),
            "More AVX Units"
        );
        assert_eq!(
            Engine::software_with(VectorResources::wider_avx_units()).label(),
            "Wider AVX Units"
        );
        assert!(Engine::deca_default().label().contains("W=32"));
    }

    #[test]
    fn gemm_seconds_scales_with_shape() {
        let exec = executor();
        let scheme = CompressionScheme::mxfp4();
        let small = GemmShape::new(1, 1024, 4096);
        let large = GemmShape::new(1, 2048, 4096);
        let t_small = exec.gemm_seconds(&small, &scheme, Engine::deca_default(), 1);
        let t_large = exec.gemm_seconds(&large, &scheme, Engine::deca_default(), 1);
        assert!(t_large > 1.8 * t_small && t_large < 2.2 * t_small);
    }

    #[test]
    fn vector_scaling_alternatives_fall_short_of_deca() {
        // Fig. 15: neither 4x more AVX units nor 4x wider AVX units matches
        // DECA.
        let exec = executor();
        let scheme = CompressionScheme::bf8_sparse(0.1);
        let deca = exec.run(&scheme, Engine::deca_default(), 1).tflops;
        let more = exec
            .run(
                &scheme,
                Engine::software_with(VectorResources::more_avx_units()),
                1,
            )
            .tflops;
        let wider = exec
            .run(
                &scheme,
                Engine::software_with(VectorResources::wider_avx_units()),
                1,
            )
            .tflops;
        assert!(deca > more, "DECA {deca:.2} vs more-units {more:.2}");
        assert!(deca > wider, "DECA {deca:.2} vs wider-units {wider:.2}");
    }
}
