//! Functional GeMM used for correctness checking.
//!
//! The timing models elsewhere in this crate never touch actual numbers;
//! this module does. It multiplies activations by (optionally compressed)
//! weight matrices so tests can confirm that a compressed GeMM produces the
//! same result as the dense reference up to the quantization error of the
//! chosen scheme — i.e. that the decompression path feeding the TMUL is
//! numerically sound.

use deca_compress::{
    CompressError, CompressedMatrix, DecompressEngine, Decompressor, WeightMatrix,
};
use deca_numerics::Bf16;

/// Multiplies `activations` (`N×K`, row-major) by `weights` (`K×M`),
/// returning the `N×M` output row-major. Accumulation is in f32, matching
/// the TMUL's BF16-in / f32-accumulate behaviour.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
#[must_use]
pub fn gemm_dense(activations: &WeightMatrix, weights: &WeightMatrix) -> WeightMatrix {
    assert_eq!(
        activations.cols(),
        weights.rows(),
        "inner dimensions must agree"
    );
    let n = activations.rows();
    let k = activations.cols();
    let m = weights.cols();
    let mut out = WeightMatrix::zeros(n, m);
    for i in 0..n {
        for kk in 0..k {
            let a = bf16_round(activations.get(i, kk));
            if a == 0.0 {
                continue;
            }
            for j in 0..m {
                let w = bf16_round(weights.get(kk, j));
                let acc = out.get(i, j) + a * w;
                out.set(i, j, acc);
            }
        }
    }
    out
}

/// Multiplies activations by a *compressed* weight matrix by first running
/// the reference decompressor — exactly what the TMUL consumes after DECA
/// or the software sequence has produced dense BF16 tiles.
///
/// # Errors
///
/// Propagates decompression errors.
pub fn gemm_compressed(
    activations: &WeightMatrix,
    weights: &CompressedMatrix,
) -> Result<WeightMatrix, CompressError> {
    gemm_compressed_with(Decompressor::new().engine(), activations, weights)
}

/// [`gemm_compressed`] through an explicit decompression backend, so
/// modeled-vs-functional comparisons can name which engine produced the
/// dense weights. Every backend is bit-exact against the scalar reference,
/// so the numeric result is engine-independent — running the same GeMM
/// under two engines and comparing is exactly how that invariant is
/// enforced end to end.
///
/// # Errors
///
/// Propagates decompression errors.
pub fn gemm_compressed_with(
    engine: &dyn DecompressEngine,
    activations: &WeightMatrix,
    weights: &CompressedMatrix,
) -> Result<WeightMatrix, CompressError> {
    let dense = engine.decompress_matrix(weights)?;
    Ok(gemm_dense(activations, &dense))
}

/// Root-mean-square relative error between two equally shaped matrices,
/// normalized by the RMS magnitude of the reference.
///
/// # Panics
///
/// Panics if the shapes differ.
#[must_use]
pub fn relative_rms_error(reference: &WeightMatrix, other: &WeightMatrix) -> f64 {
    assert_eq!(reference.rows(), other.rows());
    assert_eq!(reference.cols(), other.cols());
    let mut err = 0.0f64;
    let mut norm = 0.0f64;
    for (a, b) in reference.data().iter().zip(other.data()) {
        err += f64::from(a - b).powi(2);
        norm += f64::from(*a).powi(2);
    }
    if norm == 0.0 {
        return if err == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (err / norm).sqrt()
}

fn bf16_round(v: f32) -> f32 {
    Bf16::from_f32(v).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::{generator::WeightGenerator, CompressionScheme, Compressor};

    fn activations(n: usize, k: usize) -> WeightMatrix {
        WeightGenerator::new(123)
            .with_std_dev(0.5)
            .dense_matrix(n, k)
    }

    #[test]
    fn dense_gemm_matches_hand_computed_example() {
        let a = WeightMatrix::from_data(1, 2, vec![1.0, 2.0]).unwrap();
        let w = WeightMatrix::from_data(2, 3, vec![1.0, 0.5, -1.0, 2.0, 0.0, 4.0]).unwrap();
        let out = gemm_dense(&a, &w);
        assert_eq!(out.rows(), 1);
        assert_eq!(out.cols(), 3);
        assert_eq!(out.get(0, 0), 5.0);
        assert_eq!(out.get(0, 1), 0.5);
        assert_eq!(out.get(0, 2), 7.0);
    }

    #[test]
    fn bf16_sparse_compression_changes_nothing() {
        let weights = WeightGenerator::new(5).sparse_matrix(64, 48, 0.3);
        let a = activations(4, 64);
        let compressed = Compressor::new(CompressionScheme::bf16_sparse(0.9))
            .without_pruning()
            .compress_matrix(&weights)
            .unwrap();
        let reference = gemm_dense(&a, &weights);
        let result = gemm_compressed(&a, &compressed).unwrap();
        assert!(relative_rms_error(&reference, &result) < 1e-6);
    }

    #[test]
    fn bf8_quantization_error_is_small_at_gemm_level() {
        let weights = WeightGenerator::new(6).dense_matrix(64, 48);
        let a = activations(4, 64);
        let compressed = Compressor::new(CompressionScheme::bf8_dense())
            .compress_matrix(&weights)
            .unwrap();
        let reference = gemm_dense(&a, &weights);
        let result = gemm_compressed(&a, &compressed).unwrap();
        let err = relative_rms_error(&reference, &result);
        // Individual weights err by up to 12.5 %; averaging over K=64 terms
        // brings the output error well below that (the exact figure depends
        // on the generator's random stream).
        assert!(err < 0.06, "relative RMS error {err}");
    }

    #[test]
    fn mxfp4_error_is_larger_but_bounded() {
        let weights = WeightGenerator::new(7).dense_matrix(64, 48);
        let a = activations(2, 64);
        let compressed = Compressor::new(CompressionScheme::mxfp4())
            .compress_matrix(&weights)
            .unwrap();
        let reference = gemm_dense(&a, &weights);
        let result = gemm_compressed(&a, &compressed).unwrap();
        let err = relative_rms_error(&reference, &result);
        assert!(err < 0.15, "relative RMS error {err}");
        assert!(err > 1e-6, "FP4 cannot be lossless on random weights");
    }

    #[test]
    fn pruning_plus_quantization_composes() {
        let weights = WeightGenerator::new(8).dense_matrix(64, 48);
        let a = activations(1, 64);
        let compressed = Compressor::new(CompressionScheme::bf8_sparse(0.5))
            .compress_matrix(&weights)
            .unwrap();
        let result = gemm_compressed(&a, &compressed).unwrap();
        // Pruning half the (random) weights changes the result materially but
        // the output must stay finite and nonzero.
        assert!(result.data().iter().all(|v| v.is_finite()));
        assert!(result.data().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn every_engine_yields_the_same_gemm_result() {
        let weights = WeightGenerator::new(9).dense_matrix(64, 48);
        let a = activations(2, 64);
        let compressed = Compressor::new(CompressionScheme::bf8_sparse(0.3))
            .compress_matrix(&weights)
            .unwrap();
        let reference = gemm_compressed(&a, &compressed).unwrap();
        for kind in deca_compress::EngineKind::all() {
            let result = gemm_compressed_with(kind.build().as_ref(), &a, &compressed).unwrap();
            assert_eq!(result, reference, "{kind}");
        }
    }

    #[test]
    fn rms_error_handles_degenerate_cases() {
        let z = WeightMatrix::zeros(2, 2);
        assert_eq!(relative_rms_error(&z, &z), 0.0);
        let mut other = WeightMatrix::zeros(2, 2);
        other.set(0, 0, 1.0);
        assert!(relative_rms_error(&z, &other).is_infinite());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_shapes_panic() {
        let a = WeightMatrix::zeros(2, 3);
        let w = WeightMatrix::zeros(4, 5);
        let _ = gemm_dense(&a, &w);
    }
}
