//! Parlooper-style loop parallelization.
//!
//! Parlooper statically partitions the GeMM's output across cores; each core
//! then streams the weight tiles of its own output block. For the
//! generation-phase GeMMs (weights have no reuse) the relevant outcome is
//! simply how many weight tiles each core processes and how balanced the
//! partition is.

use crate::GemmShape;

/// A static partition of a GeMM across cores.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Parlooper {
    cores: usize,
    tiles_per_core: Vec<usize>,
}

impl Parlooper {
    /// Partitions the weight tiles of `shape` across `cores` cores,
    /// distributing the remainder one tile at a time so the imbalance is at
    /// most one tile.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn partition(shape: &GemmShape, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        let total = shape.weight_tiles();
        let base = total / cores;
        let remainder = total % cores;
        let tiles_per_core = (0..cores)
            .map(|c| base + usize::from(c < remainder))
            .collect();
        Parlooper {
            cores,
            tiles_per_core,
        }
    }

    /// Number of cores in the partition.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Tiles assigned to core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn tiles_for_core(&self, core: usize) -> usize {
        self.tiles_per_core[core]
    }

    /// The largest per-core assignment (determines the parallel makespan).
    #[must_use]
    pub fn max_tiles_per_core(&self) -> usize {
        self.tiles_per_core.iter().copied().max().unwrap_or(0)
    }

    /// Total tiles across all cores (equals the GeMM's tile count).
    #[must_use]
    pub fn total_tiles(&self) -> usize {
        self.tiles_per_core.iter().sum()
    }

    /// Load imbalance: max over mean minus one (0 = perfectly balanced).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.total_tiles() == 0 {
            return 0.0;
        }
        let mean = self.total_tiles() as f64 / self.cores as f64;
        self.max_tiles_per_core() as f64 / mean - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_conserves_tiles_and_balances() {
        let shape = GemmShape::new(4, 8192, 30720);
        let p = Parlooper::partition(&shape, 56);
        assert_eq!(p.total_tiles(), shape.weight_tiles());
        assert_eq!(p.cores(), 56);
        let min = (0..56).map(|c| p.tiles_for_core(c)).min().unwrap();
        assert!(p.max_tiles_per_core() - min <= 1);
        assert!(p.imbalance() < 0.01);
    }

    #[test]
    fn remainder_is_spread_over_leading_cores() {
        let shape = GemmShape::new(1, 32, 16 * 10); // 10 tiles
        let p = Parlooper::partition(&shape, 4);
        assert_eq!(
            (0..4).map(|c| p.tiles_for_core(c)).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
        assert_eq!(p.max_tiles_per_core(), 3);
    }

    #[test]
    fn single_core_gets_everything() {
        let shape = GemmShape::new(1, 64, 64);
        let p = Parlooper::partition(&shape, 1);
        assert_eq!(p.tiles_for_core(0), shape.weight_tiles());
        assert_eq!(p.imbalance(), 0.0);
    }

    #[test]
    fn more_cores_than_tiles_leaves_idle_cores() {
        let shape = GemmShape::new(1, 32, 16); // 1 tile
        let p = Parlooper::partition(&shape, 8);
        assert_eq!(p.total_tiles(), 1);
        assert_eq!(p.max_tiles_per_core(), 1);
        assert_eq!(p.tiles_for_core(7), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = Parlooper::partition(&GemmShape::new(1, 32, 16), 0);
    }
}
