//! The TEPL (Tile External Preprocess and Load) queue (§5.3).
//!
//! TEPL is the ISA extension that lets the core invoke DECA out-of-order.
//! The core holds a small TEPL queue (akin to a load-store queue) with one
//! execution port per DECA Loader. A TEPL instruction occupies a slot from
//! issue until the decompressed tile has been written into the destination
//! core tile register; a structural hazard stalls further TEPLs when every
//! slot is busy. TEPLs execute speculatively: on a pipeline flush the core
//! sends a squash signal and DECA aborts whatever it was doing.

use crate::DecaError;

/// The lifecycle of one TEPL queue slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TeplSlotState {
    /// No TEPL occupies this slot.
    Free,
    /// A TEPL has been issued to the DECA Loader and is awaiting the
    /// decompressed tile.
    Issued {
        /// Identifier of the tile being preprocessed.
        tile_id: u64,
    },
    /// The decompressed tile has been delivered to the destination tile
    /// register; the TEPL is ready to retire.
    Completed {
        /// Identifier of the delivered tile.
        tile_id: u64,
    },
}

/// The core-side TEPL queue.
#[derive(Debug, Clone, PartialEq)]
pub struct TeplQueue {
    slots: Vec<TeplSlotState>,
    issued_total: u64,
    squashed_total: u64,
    structural_stalls: u64,
}

impl TeplQueue {
    /// Creates a queue with one slot per DECA Loader (the paper uses two).
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "the TEPL queue needs at least one port");
        TeplQueue {
            slots: vec![TeplSlotState::Free; ports],
            issued_total: 0,
            squashed_total: 0,
            structural_stalls: 0,
        }
    }

    /// Number of ports (slots).
    #[must_use]
    pub fn ports(&self) -> usize {
        self.slots.len()
    }

    /// Current slot states.
    #[must_use]
    pub fn slots(&self) -> &[TeplSlotState] {
        &self.slots
    }

    /// True if a new TEPL could issue right now.
    #[must_use]
    pub fn can_issue(&self) -> bool {
        self.slots.contains(&TeplSlotState::Free)
    }

    /// Number of TEPLs currently in flight (issued but not yet retired).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, TeplSlotState::Free))
            .count()
    }

    /// Issues a TEPL for `tile_id`, returning the slot index it occupies.
    ///
    /// # Errors
    ///
    /// Returns [`DecaError::TeplHazard`] when every slot is busy — the
    /// structural hazard that stalls the core's issue stage (§5.3). The
    /// stall is also counted for statistics.
    pub fn issue(&mut self, tile_id: u64) -> Result<usize, DecaError> {
        if let Some(slot) = self.slots.iter().position(|s| *s == TeplSlotState::Free) {
            self.slots[slot] = TeplSlotState::Issued { tile_id };
            self.issued_total += 1;
            Ok(slot)
        } else {
            self.structural_stalls += 1;
            Err(DecaError::TeplHazard {
                reason: "all TEPL ports busy (as many TEPLs in flight as DECA Loaders)",
            })
        }
    }

    /// Marks the TEPL in `slot` as completed (DECA wrote the tile into the
    /// destination register).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not currently in the `Issued` state.
    pub fn complete(&mut self, slot: usize) {
        match self.slots[slot] {
            TeplSlotState::Issued { tile_id } => {
                self.slots[slot] = TeplSlotState::Completed { tile_id };
            }
            other => panic!("TEPL slot {slot} cannot complete from state {other:?}"),
        }
    }

    /// Retires the TEPL in `slot`, freeing it.
    ///
    /// # Panics
    ///
    /// Panics if the slot has not completed.
    pub fn retire(&mut self, slot: usize) {
        match self.slots[slot] {
            TeplSlotState::Completed { .. } => self.slots[slot] = TeplSlotState::Free,
            other => panic!("TEPL slot {slot} cannot retire from state {other:?}"),
        }
    }

    /// Squashes every outstanding TEPL (pipeline flush: branch misprediction
    /// or exception). DECA aborts the in-progress tiles; the core may safely
    /// reissue the same TEPLs later.
    pub fn squash_all(&mut self) {
        for slot in &mut self.slots {
            if !matches!(slot, TeplSlotState::Free) {
                self.squashed_total += 1;
                *slot = TeplSlotState::Free;
            }
        }
    }

    /// TEPLs issued since construction.
    #[must_use]
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }

    /// TEPLs squashed since construction.
    #[must_use]
    pub fn squashed_total(&self) -> u64 {
        self.squashed_total
    }

    /// Structural-hazard stalls observed.
    #[must_use]
    pub fn structural_stalls(&self) -> u64 {
        self.structural_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_complete_retire_cycle() {
        let mut q = TeplQueue::new(2);
        assert!(q.can_issue());
        let a = q.issue(1).expect("slot");
        let b = q.issue(2).expect("slot");
        assert_ne!(a, b);
        assert_eq!(q.in_flight(), 2);
        assert!(!q.can_issue());
        // Third TEPL hits the structural hazard.
        assert!(matches!(q.issue(3), Err(DecaError::TeplHazard { .. })));
        assert_eq!(q.structural_stalls(), 1);
        q.complete(a);
        assert_eq!(q.in_flight(), 2, "completed TEPLs still hold their slot");
        q.retire(a);
        assert_eq!(q.in_flight(), 1);
        assert!(q.can_issue());
        let c = q.issue(3).expect("slot freed");
        assert_eq!(c, a);
        assert_eq!(q.issued_total(), 3);
        q.complete(b);
        q.retire(b);
    }

    #[test]
    fn squash_frees_all_slots_and_counts() {
        let mut q = TeplQueue::new(2);
        let a = q.issue(10).expect("slot");
        q.issue(11).expect("slot");
        q.complete(a);
        q.squash_all();
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.squashed_total(), 2);
        // Reissuing the same tiles afterwards is safe.
        assert!(q.issue(10).is_ok());
    }

    #[test]
    fn slot_states_are_observable() {
        let mut q = TeplQueue::new(1);
        assert_eq!(q.slots(), &[TeplSlotState::Free]);
        q.issue(7).expect("slot");
        assert_eq!(q.slots(), &[TeplSlotState::Issued { tile_id: 7 }]);
        q.complete(0);
        assert_eq!(q.slots(), &[TeplSlotState::Completed { tile_id: 7 }]);
        assert_eq!(q.ports(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot complete")]
    fn completing_a_free_slot_panics() {
        let mut q = TeplQueue::new(1);
        q.complete(0);
    }

    #[test]
    #[should_panic(expected = "cannot retire")]
    fn retiring_an_issued_slot_panics() {
        let mut q = TeplQueue::new(1);
        q.issue(1).expect("slot");
        q.retire(0);
    }
}
