//! The DECA vector pipeline: dequantization → expansion → scaling (§6.1).
//!
//! The pipeline consumes a compressed tile as a sequence of vOps. Each vOp
//! produces `W` output elements: it reads the vOp's *window* of nonzero
//! codes from the sparse quantized queue (the window size comes from the
//! bitmask POPCNT), dequantizes them through the LUT array, expands them to
//! their dense positions with the crossbar controlled by the parallel
//! prefix sum, applies the per-group scale factors, and writes the `W`
//! results to the TOut register.
//!
//! The model here is *functional and cycle-counting*: it produces the exact
//! BF16 output tile and, per vOp, the number of cycles the dequantization
//! stage was occupied (1 plus any bubbles caused by windows larger than
//! `Lq`). The queueing/overlap behaviour across tiles is handled by
//! `deca-sim`; this module answers "how many cycles does *this* tile take in
//! the pipeline, given its actual bitmask".

use deca_compress::{
    CompressedTile, DecompressEngine, DecompressScratch, DenseTile, TILE_COLS, TILE_ELEMS,
};
use deca_numerics::{Bf16, QuantFormat};

use crate::{DecaConfig, DecaError, LutArray};

/// Per-tile timing produced by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PipelineTiming {
    /// vOps executed (always `512 / W`).
    pub vops: u32,
    /// Bubbles injected by windows larger than `Lq`.
    pub bubbles: u32,
    /// Total cycles the tile occupied the pipeline, including the fill of
    /// the expansion and scaling stages.
    pub pipeline_cycles: u32,
}

impl PipelineTiming {
    /// Average cycles per vOp.
    #[must_use]
    pub fn cycles_per_vop(&self) -> f64 {
        if self.vops == 0 {
            0.0
        } else {
            f64::from(self.vops + self.bubbles) / f64::from(self.vops)
        }
    }
}

/// The three-stage vOp pipeline of one DECA PE.
#[derive(Debug, Clone, PartialEq)]
pub struct VopPipeline {
    w: usize,
    lut_array: LutArray,
    /// Stages after dequantization (expansion, scaling) that contribute to
    /// the pipeline fill latency of each tile.
    extra_stages: u32,
}

impl VopPipeline {
    /// Builds the pipeline for a PE configuration.
    #[must_use]
    pub fn new(config: &DecaConfig) -> Self {
        VopPipeline {
            w: config.w,
            lut_array: LutArray::new(config.l),
            extra_stages: 2,
        }
    }

    /// The pipeline width `W`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.w
    }

    /// The LUT array (e.g. to inspect the programmed format).
    #[must_use]
    pub fn lut_array(&self) -> &LutArray {
        &self.lut_array
    }

    /// Programs the LUT array for a quantized format (privileged
    /// configuration stores from the core).
    pub fn configure(&mut self, format: QuantFormat) {
        self.lut_array.program(format);
    }

    /// Processes one compressed tile, producing the dense BF16 tile and its
    /// pipeline timing.
    ///
    /// # Errors
    ///
    /// Returns [`DecaError::NotConfiguredFor`] if the LUT array is
    /// programmed for a different quantized format than the tile uses, and
    /// propagates consistency errors from the tile itself.
    pub fn process(
        &mut self,
        tile: &CompressedTile,
    ) -> Result<(DenseTile, PipelineTiming), DecaError> {
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        let timing = self.process_into(tile, &mut scratch, &mut out)?;
        Ok((out, timing))
    }

    /// Streaming variant of [`VopPipeline::process`]: writes the dense tile
    /// into a caller-provided buffer, unpacking the nonzero codes into the
    /// caller's scratch — the same zero-copy contract as
    /// [`DecompressEngine::decompress_tile_into`], plus the timing model.
    ///
    /// # Errors
    ///
    /// Same contract as [`VopPipeline::process`].
    pub fn process_into(
        &mut self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<PipelineTiming, DecaError> {
        // Same memory-structure validation as the decompression engines: a
        // corrupted tile must fault cleanly, never index out of bounds.
        tile.validate()?;
        let scheme = tile.scheme();
        let format = scheme.format();
        if format != QuantFormat::Bf16 {
            match self.lut_array.programmed_format() {
                Some(f) if f == format => {}
                _ => {
                    return Err(DecaError::NotConfiguredFor {
                        found: format.to_string(),
                    })
                }
            }
        }

        let codes = scratch.unpack(tile);
        let expansion = tile.bitmask().map(|m| {
            if m.popcount() != codes.len() {
                return Err(DecaError::Compress(
                    deca_compress::CompressError::CorruptTile {
                        reason: format!(
                            "bitmask popcount {} does not match {} codes",
                            m.popcount(),
                            codes.len()
                        ),
                    },
                ));
            }
            Ok(m.prefix_sums())
        });
        let prefix = match expansion {
            Some(result) => Some(result?),
            None => None,
        };
        let scales = tile.scales();
        let group = scheme.group_size().unwrap_or(usize::MAX);

        out.fill_zero();
        let mut bubbles = 0u32;
        let vops = (TILE_ELEMS / self.w) as u32;

        for vop in 0..vops as usize {
            let window_start = vop * self.w;
            let window_end = window_start + self.w;
            // POPCNT: determine this vOp's window in the sparse quantized
            // queue.
            let (code_start, code_end) = match &prefix {
                Some(p) => (p[window_start], p[window_end]),
                None => (window_start, window_end),
            };
            let window_codes = &codes[code_start..code_end];

            // Dequantization stage (with bubbles for oversized windows).
            let (values, cycles) = self.lut_array.dequantize(window_codes);
            bubbles += cycles - 1;

            // Expansion stage: scatter values to their dense positions.
            // Scaling stage: apply the per-group scale factors.
            match &prefix {
                Some(p) => {
                    for pos in window_start..window_end {
                        if p[pos + 1] > p[pos] {
                            let value = values[p[pos] - code_start];
                            let scaled = apply_scale(value, scales, pos, group);
                            out.set(pos / TILE_COLS, pos % TILE_COLS, scaled);
                        }
                    }
                }
                None => {
                    for (offset, value) in values.iter().enumerate() {
                        let pos = window_start + offset;
                        let scaled = apply_scale(*value, scales, pos, group);
                        out.set(pos / TILE_COLS, pos % TILE_COLS, scaled);
                    }
                }
            }
        }

        Ok(PipelineTiming {
            vops,
            bubbles,
            pipeline_cycles: vops + bubbles + self.extra_stages,
        })
    }

    /// Processes a tile and validates the functional output bit-exactly
    /// against an injected decompression engine — the cross-check the
    /// integration tests and the executor use to tie the PE's timing model
    /// to the functional ground truth, naming which backend verified it.
    ///
    /// # Errors
    ///
    /// Everything [`VopPipeline::process`] returns, plus
    /// [`DecaError::EngineMismatch`] if the engine's output differs from the
    /// pipeline's in any of the 512 BF16 bit patterns.
    pub fn process_validated(
        &mut self,
        tile: &CompressedTile,
        engine: &dyn DecompressEngine,
    ) -> Result<(DenseTile, PipelineTiming), DecaError> {
        let (out, timing) = self.process(tile)?;
        let mut reference = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        engine.decompress_tile_into(tile, &mut scratch, &mut reference)?;
        let agrees = out
            .elements()
            .iter()
            .zip(reference.elements())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        if !agrees {
            return Err(DecaError::EngineMismatch {
                engine: engine.name(),
            });
        }
        Ok((out, timing))
    }
}

fn apply_scale(
    value: Bf16,
    scales: &[deca_numerics::mx::ScaleE8M0],
    dense_pos: usize,
    group: usize,
) -> Bf16 {
    if scales.is_empty() {
        value
    } else {
        value * scales[dense_pos / group].to_bf16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::{generator::WeightGenerator, CompressionScheme, Compressor, Decompressor};

    fn compress_sample(scheme: CompressionScheme, seed: u64) -> CompressedTile {
        let tile = WeightGenerator::new(seed).dense_matrix(16, 32).tile(0, 0);
        Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress")
    }

    fn pipeline_for(scheme: &CompressionScheme, config: DecaConfig) -> VopPipeline {
        let mut p = VopPipeline::new(&config);
        p.configure(scheme.format());
        p
    }

    #[test]
    fn functional_output_matches_reference_decompressor() {
        for scheme in [
            CompressionScheme::bf8_dense(),
            CompressionScheme::bf8_sparse(0.3),
            CompressionScheme::mxfp4(),
            CompressionScheme::bf16_sparse(0.1),
        ] {
            let tile = compress_sample(scheme, 17);
            let mut pipeline = pipeline_for(&scheme, DecaConfig::baseline());
            let (out, _) = pipeline.process(&tile).expect("pipeline");
            let reference = Decompressor::new()
                .decompress_tile(&tile)
                .expect("reference");
            assert_eq!(out, reference, "scheme {scheme}");
        }
    }

    #[test]
    fn streaming_process_into_reuses_buffers() {
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let mut pipeline = pipeline_for(&scheme, DecaConfig::baseline());
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        // Stream two different tiles through the same buffers; each output
        // must match its own reference (no leakage from the previous tile).
        for seed in [40, 41] {
            let tile = compress_sample(scheme, seed);
            let timing = pipeline
                .process_into(&tile, &mut scratch, &mut out)
                .expect("pipeline");
            let reference = Decompressor::new()
                .decompress_tile(&tile)
                .expect("reference");
            assert_eq!(out, reference, "seed {seed}");
            assert_eq!(timing.vops, 16);
        }
    }

    #[test]
    fn process_validated_names_the_agreeing_engine() {
        for kind in deca_compress::EngineKind::all() {
            let scheme = CompressionScheme::mxfp4();
            let tile = compress_sample(scheme, 42);
            let mut pipeline = pipeline_for(&scheme, DecaConfig::baseline());
            let engine = kind.build();
            let (out, timing) = pipeline
                .process_validated(&tile, engine.as_ref())
                .expect("validated");
            assert_eq!(timing.vops, 16);
            assert!(out.nonzero_count() > 0);
        }
    }

    #[test]
    fn dense_q8_timing_is_deterministic() {
        // W=32, L=8, 8-bit codes: every vOp needs 4 dequant cycles -> 3
        // bubbles per vOp, 16 vOps, +2 fill cycles.
        let scheme = CompressionScheme::bf8_dense();
        let tile = compress_sample(scheme, 18);
        let mut pipeline = pipeline_for(&scheme, DecaConfig::baseline());
        let (_, timing) = pipeline.process(&tile).expect("pipeline");
        assert_eq!(timing.vops, 16);
        assert_eq!(timing.bubbles, 48);
        assert_eq!(timing.pipeline_cycles, 16 + 48 + 2);
        assert!((timing.cycles_per_vop() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mxfp4_has_no_bubbles() {
        let scheme = CompressionScheme::mxfp4();
        let tile = compress_sample(scheme, 19);
        let mut pipeline = pipeline_for(&scheme, DecaConfig::baseline());
        let (_, timing) = pipeline.process(&tile).expect("pipeline");
        assert_eq!(timing.bubbles, 0);
        assert_eq!(timing.pipeline_cycles, 18);
    }

    #[test]
    fn sparse_tiles_have_fewer_bubbles_than_dense() {
        let dense = compress_sample(CompressionScheme::bf8_dense(), 20);
        let sparse = compress_sample(CompressionScheme::bf8_sparse(0.2), 20);
        let mut p_dense = pipeline_for(&CompressionScheme::bf8_dense(), DecaConfig::baseline());
        let mut p_sparse =
            pipeline_for(&CompressionScheme::bf8_sparse(0.2), DecaConfig::baseline());
        let (_, t_dense) = p_dense.process(&dense).expect("pipeline");
        let (_, t_sparse) = p_sparse.process(&sparse).expect("pipeline");
        assert!(t_sparse.bubbles < t_dense.bubbles);
    }

    #[test]
    fn bf16_sparse_needs_no_lut_configuration() {
        let scheme = CompressionScheme::bf16_sparse(0.5);
        let tile = compress_sample(scheme, 21);
        let mut pipeline = VopPipeline::new(&DecaConfig::baseline());
        // No configure() call: BF16 bypasses the LUT array.
        let (out, timing) = pipeline.process(&tile).expect("pipeline");
        assert_eq!(timing.bubbles, 0);
        assert_eq!(out.nonzero_count(), tile.nonzero_count());
    }

    #[test]
    fn forged_tiles_fault_cleanly_instead_of_panicking() {
        use deca_compress::{pack_codes, Bitmask, TILE_ELEMS};
        // A bitmask covering half a tile with a matching popcount, and a
        // group-quantized tile with a truncated scale vector: both must be
        // rejected as corrupt, exactly like the decompression engines do.
        let mut short_mask = Bitmask::new(256);
        short_mask.set(0, true);
        let short = deca_compress::CompressedTile::new_unchecked(
            CompressionScheme::bf8_sparse(0.5),
            pack_codes(&[1], 8),
            1,
            Some(short_mask),
            vec![],
        );
        let truncated_scales = deca_compress::CompressedTile::new_unchecked(
            CompressionScheme::mxfp4(),
            pack_codes(&vec![0u16; TILE_ELEMS], 4),
            TILE_ELEMS,
            None,
            vec![deca_numerics::mx::ScaleE8M0::ONE; 1],
        );
        for (tile, label) in [(short, "short bitmask"), (truncated_scales, "scales")] {
            let mut pipeline = VopPipeline::new(&DecaConfig::baseline());
            pipeline.configure(tile.scheme().format());
            let err = pipeline.process(&tile).expect_err(label);
            assert!(matches!(err, DecaError::Compress(_)), "{label}: {err}");
        }
    }

    #[test]
    fn misconfigured_format_is_rejected() {
        let q8 = compress_sample(CompressionScheme::bf8_dense(), 22);
        let mut pipeline = VopPipeline::new(&DecaConfig::baseline());
        pipeline.configure(QuantFormat::Fp4);
        let err = pipeline.process(&q8).expect_err("must reject");
        assert!(matches!(err, DecaError::NotConfiguredFor { .. }));
    }

    #[test]
    fn smaller_w_needs_more_vops() {
        let scheme = CompressionScheme::bf8_sparse(0.1);
        let tile = compress_sample(scheme, 23);
        let mut small = pipeline_for(&scheme, DecaConfig::underprovisioned());
        let mut base = pipeline_for(&scheme, DecaConfig::baseline());
        let (_, t_small) = small.process(&tile).expect("pipeline");
        let (_, t_base) = base.process(&tile).expect("pipeline");
        assert_eq!(t_small.vops, 64);
        assert_eq!(t_base.vops, 16);
        assert!(t_small.pipeline_cycles > t_base.pipeline_cycles);
    }

    #[test]
    fn reconfiguration_switches_formats() {
        let mut pipeline = VopPipeline::new(&DecaConfig::baseline());
        pipeline.configure(QuantFormat::Bf8);
        let q8 = compress_sample(CompressionScheme::bf8_dense(), 24);
        assert!(pipeline.process(&q8).is_ok());
        pipeline.configure(QuantFormat::Fp4);
        let q4 = compress_sample(CompressionScheme::mxfp4(), 24);
        assert!(pipeline.process(&q4).is_ok());
        assert!(pipeline.process(&q8).is_err());
        assert_eq!(pipeline.width(), 32);
        assert_eq!(
            pipeline.lut_array().programmed_format(),
            Some(QuantFormat::Fp4)
        );
    }
}
