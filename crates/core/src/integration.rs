//! DECA ↔ core integration options (§5, §9.3).
//!
//! Fig. 17 ablates four integration decisions, starting from a conservative
//! base design and progressively enabling the features the paper proposes:
//!
//! 1. where DECA reads compressed tiles from (LLC vs L2),
//! 2. which prefetcher covers the tile stream (none, the L2 stream
//!    prefetcher, or DECA's own prefetcher),
//! 3. where the decompressed tile is delivered (written back to the L2 vs
//!    held in TOut registers the core reads directly),
//! 4. how the core invokes DECA (memory-mapped stores + fences vs the TEPL
//!    instructions).

/// Where the DECA Loaders read compressed tiles from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ReadPath {
    /// Read from the LLC slice, bypassing the core's L2.
    Llc,
    /// Read through the core's L2 (enables the L2 prefetcher to help).
    L2,
}

/// Which prefetcher covers the compressed-tile stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TilePrefetcher {
    /// No prefetching.
    None,
    /// The stock L2 hardware stream prefetcher.
    L2Stream,
    /// DECA's integrated prefetcher (tracks the metadata stream, keeps L2
    /// MSHR occupancy high).
    Deca,
}

/// Where decompressed tiles are delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OutputPath {
    /// Written back to the L2; the core's TLoad reads them from there.
    L2,
    /// Held in DECA's TOut registers, read directly by the core.
    TOutRegisters,
}

/// How the core invokes DECA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum InvocationScheme {
    /// Memory-mapped stores to the Loader control registers plus a fence per
    /// iteration (Fig. 9): iterations serialize and the core↔DECA
    /// communication latency is exposed.
    StoreFence,
    /// The TEPL ISA extension (Fig. 10): out-of-order, speculative
    /// invocation that hides the communication latency.
    Tepl,
}

/// A complete integration configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct IntegrationConfig {
    /// Compressed-tile read path.
    pub read_path: ReadPath,
    /// Prefetcher covering the tile stream.
    pub prefetcher: TilePrefetcher,
    /// Decompressed-tile delivery path.
    pub output: OutputPath,
    /// Invocation scheme.
    pub invocation: InvocationScheme,
}

impl IntegrationConfig {
    /// The base configuration of Fig. 17: reads from the LLC, no
    /// prefetcher, writes decompressed tiles to the L2, store+fence
    /// invocation.
    #[must_use]
    pub fn base() -> Self {
        IntegrationConfig {
            read_path: ReadPath::Llc,
            prefetcher: TilePrefetcher::None,
            output: OutputPath::L2,
            invocation: InvocationScheme::StoreFence,
        }
    }

    /// `+Reads L2`: read compressed tiles through the L2 and let the L2
    /// stream prefetcher cover them.
    #[must_use]
    pub fn plus_reads_l2() -> Self {
        IntegrationConfig {
            read_path: ReadPath::L2,
            prefetcher: TilePrefetcher::L2Stream,
            ..IntegrationConfig::base()
        }
    }

    /// `+DECA prefetcher`: use DECA's own prefetcher instead of the L2 one.
    #[must_use]
    pub fn plus_deca_prefetcher() -> Self {
        IntegrationConfig {
            prefetcher: TilePrefetcher::Deca,
            ..IntegrationConfig::plus_reads_l2()
        }
    }

    /// `+TOut Regs`: deliver decompressed tiles through the TOut registers
    /// instead of the L2.
    #[must_use]
    pub fn plus_tout_regs() -> Self {
        IntegrationConfig {
            output: OutputPath::TOutRegisters,
            ..IntegrationConfig::plus_deca_prefetcher()
        }
    }

    /// `+TEPL`: the full DECA design with out-of-order invocation.
    #[must_use]
    pub fn plus_tepl() -> Self {
        IntegrationConfig {
            invocation: InvocationScheme::Tepl,
            ..IntegrationConfig::plus_tout_regs()
        }
    }

    /// The recommended (full) configuration — alias of [`Self::plus_tepl`].
    #[must_use]
    pub fn full() -> Self {
        IntegrationConfig::plus_tepl()
    }

    /// The Fig. 17 ladder, in order, with the paper's labels.
    #[must_use]
    pub fn ablation_ladder() -> Vec<(&'static str, IntegrationConfig)> {
        vec![
            ("Base", IntegrationConfig::base()),
            ("+Reads L2", IntegrationConfig::plus_reads_l2()),
            (
                "+DECA prefetcher",
                IntegrationConfig::plus_deca_prefetcher(),
            ),
            ("+TOut Regs", IntegrationConfig::plus_tout_regs()),
            ("+TEPL (DECA)", IntegrationConfig::plus_tepl()),
        ]
    }
}

impl Default for IntegrationConfig {
    fn default() -> Self {
        IntegrationConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let ladder = IntegrationConfig::ablation_ladder();
        assert_eq!(ladder.len(), 5);
        assert_eq!(ladder[0].1, IntegrationConfig::base());
        assert_eq!(ladder[4].1, IntegrationConfig::full());
        // Each step keeps every previously enabled feature.
        assert_eq!(ladder[1].1.read_path, ReadPath::L2);
        assert_eq!(ladder[2].1.read_path, ReadPath::L2);
        assert_eq!(ladder[2].1.prefetcher, TilePrefetcher::Deca);
        assert_eq!(ladder[3].1.prefetcher, TilePrefetcher::Deca);
        assert_eq!(ladder[3].1.output, OutputPath::TOutRegisters);
        assert_eq!(ladder[4].1.output, OutputPath::TOutRegisters);
        assert_eq!(ladder[4].1.invocation, InvocationScheme::Tepl);
    }

    #[test]
    fn base_is_the_most_conservative() {
        let base = IntegrationConfig::base();
        assert_eq!(base.read_path, ReadPath::Llc);
        assert_eq!(base.prefetcher, TilePrefetcher::None);
        assert_eq!(base.output, OutputPath::L2);
        assert_eq!(base.invocation, InvocationScheme::StoreFence);
    }

    #[test]
    fn default_is_the_full_design() {
        assert_eq!(IntegrationConfig::default(), IntegrationConfig::full());
        assert_eq!(IntegrationConfig::full(), IntegrationConfig::plus_tepl());
    }
}
