//! DECA PE sizing and structural parameters.

use deca_roofsurface::DecaVopModel;

/// The structural configuration of one DECA PE (§6.1, §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct DecaConfig {
    /// Output elements produced per vOp (pipeline width `W`).
    pub w: usize,
    /// Number of 256-entry "big" LUTs in the dequantization stage (`L`).
    pub l: usize,
    /// Number of Loaders (and, equally, TOut registers); the paper uses 2 so
    /// one tile can be fetched/decompressed while the previous one is
    /// consumed.
    pub loaders: usize,
    /// Entries in each Loader's load queue (outstanding cache lines).
    pub ldq_entries: usize,
    /// Capacity of the sparse quantized queue in bytes.
    pub sqq_bytes: usize,
    /// Capacity of the bitmask queue in bytes.
    pub bitmask_queue_bytes: usize,
    /// Capacity of the scale-factor queue in bytes.
    pub scale_queue_bytes: usize,
}

impl DecaConfig {
    /// The paper's baseline PE: `W=32`, `L=8`, 2 Loaders (§8).
    #[must_use]
    pub fn baseline() -> Self {
        DecaConfig {
            w: 32,
            l: 8,
            loaders: 2,
            ldq_entries: 16,
            sqq_bytes: 2048,
            bitmask_queue_bytes: 128,
            scale_queue_bytes: 64,
        }
    }

    /// The under-provisioned sizing of Fig. 16 (`W=8`, `L=4`).
    #[must_use]
    pub fn underprovisioned() -> Self {
        DecaConfig {
            w: 8,
            l: 4,
            ..DecaConfig::baseline()
        }
    }

    /// The over-provisioned sizing of Fig. 16 (`W=64`, `L=64`).
    #[must_use]
    pub fn overprovisioned() -> Self {
        DecaConfig {
            w: 64,
            l: 64,
            ..DecaConfig::baseline()
        }
    }

    /// Builds a configuration with a custom `{W, L}` sizing and baseline
    /// queue parameters.
    ///
    /// # Panics
    ///
    /// Panics if `w` does not divide the 512-element tile or either
    /// parameter is zero (delegated to [`DecaVopModel::new`]).
    #[must_use]
    pub fn with_sizing(w: usize, l: usize) -> Self {
        // Validate through the analytic model so the constraints stay in one
        // place.
        let _ = DecaVopModel::new(w, l);
        DecaConfig {
            w,
            l,
            ..DecaConfig::baseline()
        }
    }

    /// The analytic vOp model corresponding to this sizing.
    #[must_use]
    pub fn vop_model(&self) -> DecaVopModel {
        DecaVopModel::new(self.w, self.l)
    }

    /// vOps needed per 512-element tile.
    #[must_use]
    pub fn vops_per_tile(&self) -> usize {
        self.vop_model().vops_per_tile()
    }
}

impl Default for DecaConfig {
    fn default() -> Self {
        DecaConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_sizing() {
        let c = DecaConfig::baseline();
        assert_eq!(c.w, 32);
        assert_eq!(c.l, 8);
        assert_eq!(c.loaders, 2);
        assert_eq!(c.vops_per_tile(), 16);
        assert_eq!(DecaConfig::default(), c);
    }

    #[test]
    fn fig16_sizings() {
        assert_eq!(DecaConfig::underprovisioned().w, 8);
        assert_eq!(DecaConfig::underprovisioned().l, 4);
        assert_eq!(DecaConfig::overprovisioned().w, 64);
        assert_eq!(DecaConfig::overprovisioned().l, 64);
    }

    #[test]
    fn custom_sizing_keeps_queue_parameters() {
        let c = DecaConfig::with_sizing(16, 8);
        assert_eq!(c.w, 16);
        assert_eq!(c.vops_per_tile(), 32);
        assert_eq!(c.loaders, DecaConfig::baseline().loaders);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn invalid_w_is_rejected() {
        let _ = DecaConfig::with_sizing(24, 8);
    }
}
