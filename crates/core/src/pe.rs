//! The DECA processing element: Loaders + vector pipeline + TOut registers.

use deca_compress::{CompressedTile, DenseTile};
use deca_numerics::QuantFormat;

use crate::{
    pipeline::{PipelineTiming, VopPipeline},
    DecaConfig, DecaError, Loader, TileMetadata,
};

/// A decompressed tile together with the timing the PE reported for it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessedTile {
    /// The dense BF16 output tile (the content of a TOut register).
    pub tile: DenseTile,
    /// Pipeline timing for this tile.
    pub timing: PipelineTiming,
    /// Which TOut register the result was written to.
    pub tout_register: usize,
    /// Bytes the Loader fetched from memory for this tile.
    pub bytes_fetched: usize,
}

/// One DECA PE, as attached next to a CPU core (Fig. 7).
#[derive(Debug, Clone, PartialEq)]
pub struct DecaPe {
    config: DecaConfig,
    pipeline: VopPipeline,
    loaders: Vec<Loader>,
    tout: Vec<Option<DenseTile>>,
    next_loader: usize,
    tiles_processed: u64,
    total_cycles: u64,
    total_bubbles: u64,
}

impl DecaPe {
    /// Creates a PE with the given configuration. The LUT array starts
    /// unprogrammed; it is (re)programmed automatically on the first tile of
    /// each quantized format, mirroring the OS-trap reconfiguration path of
    /// §5.1.
    #[must_use]
    pub fn new(config: DecaConfig) -> Self {
        let loaders = (0..config.loaders)
            .map(|id| Loader::new(id, config.ldq_entries))
            .collect();
        DecaPe {
            pipeline: VopPipeline::new(&config),
            loaders,
            tout: vec![None; config.loaders],
            next_loader: 0,
            config,
            tiles_processed: 0,
            total_cycles: 0,
            total_bubbles: 0,
        }
    }

    /// The PE's configuration.
    #[must_use]
    pub fn config(&self) -> &DecaConfig {
        &self.config
    }

    /// Explicitly programs the dequantization LUTs for a format (privileged
    /// configuration stores).
    pub fn configure(&mut self, format: QuantFormat) {
        self.pipeline.configure(format);
    }

    /// The format the PE is currently configured for, if any.
    #[must_use]
    pub fn configured_format(&self) -> Option<QuantFormat> {
        self.pipeline.lut_array().programmed_format()
    }

    /// Processes one compressed tile end to end: Loader fetch bookkeeping,
    /// pipeline decompression, and TOut register write. Reconfigures the LUT
    /// array if the tile's format differs from the current configuration.
    ///
    /// # Errors
    ///
    /// Propagates tile-consistency errors from the pipeline.
    pub fn process_tile(&mut self, tile: &CompressedTile) -> Result<ProcessedTile, DecaError> {
        let format = tile.scheme().format();
        if format != QuantFormat::Bf16 && self.configured_format() != Some(format) {
            self.configure(format);
        }

        // Round-robin across the Loaders / TOut registers, as the double
        // buffering of Fig. 8 does.
        let loader_idx = self.next_loader;
        self.next_loader = (self.next_loader + 1) % self.config.loaders;
        let metadata = TileMetadata::for_tile(0, tile);
        let loader = &mut self.loaders[loader_idx];
        loader.release();
        loader.start_fetch(metadata);
        loader.fetch_complete();

        let (dense, timing) = self.pipeline.process(tile)?;
        self.tout[loader_idx] = Some(dense.clone());
        self.loaders[loader_idx].release();

        self.tiles_processed += 1;
        self.total_cycles += u64::from(timing.pipeline_cycles);
        self.total_bubbles += u64::from(timing.bubbles);

        Ok(ProcessedTile {
            tile: dense,
            timing,
            tout_register: loader_idx,
            bytes_fetched: tile.byte_size(),
        })
    }

    /// The tile currently held in a TOut register, if any (what a core
    /// `TLoad` from the register would observe).
    #[must_use]
    pub fn tout(&self, register: usize) -> Option<&DenseTile> {
        self.tout.get(register).and_then(Option::as_ref)
    }

    /// Tiles processed since construction.
    #[must_use]
    pub fn tiles_processed(&self) -> u64 {
        self.tiles_processed
    }

    /// Average pipeline cycles per processed tile.
    #[must_use]
    pub fn average_cycles_per_tile(&self) -> f64 {
        if self.tiles_processed == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.tiles_processed as f64
        }
    }

    /// Average bubbles per processed tile (measured, not modelled).
    #[must_use]
    pub fn average_bubbles_per_tile(&self) -> f64 {
        if self.tiles_processed == 0 {
            0.0
        } else {
            self.total_bubbles as f64 / self.tiles_processed as f64
        }
    }

    /// Resets the accumulated statistics (keeps configuration and LUTs).
    pub fn reset_stats(&mut self) {
        self.tiles_processed = 0;
        self.total_cycles = 0;
        self.total_bubbles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::{generator::WeightGenerator, CompressionScheme, Compressor};

    fn compressed(scheme: CompressionScheme, seed: u64) -> CompressedTile {
        let tile = WeightGenerator::new(seed).dense_matrix(16, 32).tile(0, 0);
        Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress")
    }

    #[test]
    fn processes_tiles_and_tracks_stats() {
        let mut pe = DecaPe::new(DecaConfig::baseline());
        let tile = compressed(CompressionScheme::bf8_sparse(0.3), 31);
        let out = pe.process_tile(&tile).expect("process");
        assert_eq!(out.bytes_fetched, tile.byte_size());
        assert_eq!(out.tout_register, 0);
        assert_eq!(pe.tiles_processed(), 1);
        assert!(pe.average_cycles_per_tile() >= 18.0);
        let out2 = pe.process_tile(&tile).expect("process");
        assert_eq!(out2.tout_register, 1, "loaders round-robin");
        assert!(pe.tout(0).is_some() && pe.tout(1).is_some());
        pe.reset_stats();
        assert_eq!(pe.tiles_processed(), 0);
    }

    #[test]
    fn auto_reconfigures_between_formats() {
        let mut pe = DecaPe::new(DecaConfig::baseline());
        let q8 = compressed(CompressionScheme::bf8_dense(), 32);
        let q4 = compressed(CompressionScheme::mxfp4(), 32);
        pe.process_tile(&q8).expect("q8");
        assert_eq!(pe.configured_format(), Some(QuantFormat::Bf8));
        pe.process_tile(&q4).expect("q4");
        assert_eq!(pe.configured_format(), Some(QuantFormat::Fp4));
        pe.process_tile(&q8).expect("q8 again");
        assert_eq!(pe.configured_format(), Some(QuantFormat::Bf8));
    }

    #[test]
    fn measured_bubbles_match_pipeline_expectation_for_dense_q8() {
        let mut pe = DecaPe::new(DecaConfig::baseline());
        let q8 = compressed(CompressionScheme::bf8_dense(), 33);
        pe.process_tile(&q8).expect("q8");
        assert_eq!(pe.average_bubbles_per_tile(), 48.0);
    }

    #[test]
    fn tout_register_holds_latest_result() {
        let mut pe = DecaPe::new(DecaConfig::baseline());
        let tile = compressed(CompressionScheme::bf16_sparse(0.2), 34);
        let out = pe.process_tile(&tile).expect("process");
        let held = pe.tout(out.tout_register).expect("TOut holds the tile");
        assert_eq!(held, &out.tile);
        assert!(pe.tout(5).is_none());
    }
}
