//! DECA area model (§8).
//!
//! The paper estimates the area of the baseline PE (`W=32`, `L=8`) with
//! CACTI for the memory structures, published numbers for the crossbar and
//! the BF16 multipliers, and technology scaling to 7 nm. The result: about
//! 2.51 mm² for 56 PEs, of which ~55 % is Loaders + input queues + TOut
//! registers, ~22 % the LUT array and ~23 % everything else; less than 0.2 %
//! of a ~1600 mm² SPR die. This module reproduces that accounting
//! parametrically so other `{W, L}` sizings can be compared.

use crate::DecaConfig;

/// Square millimetres of one baseline PE at 7 nm (56 PEs ≈ 2.51 mm²).
const BASELINE_PE_MM2: f64 = 2.51 / 56.0;
/// Fraction of the baseline PE taken by Loaders, input queues and TOut
/// registers.
const BASELINE_BUFFER_FRACTION: f64 = 0.55;
/// Fraction taken by the LUT array.
const BASELINE_LUT_FRACTION: f64 = 0.22;
/// Die area of a 56-core SPR in mm² (§8).
pub const SPR_DIE_MM2: f64 = 1600.0;

/// Area breakdown of one DECA PE.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AreaEstimate {
    /// Loaders, SQQ, bitmask queue, scale-factor queue and TOut registers.
    pub buffers_mm2: f64,
    /// The LUT array.
    pub lut_array_mm2: f64,
    /// Expansion crossbar, prefix-sum logic, BF16 multipliers and control.
    pub datapath_mm2: f64,
}

impl AreaEstimate {
    /// Estimates the area of one PE with the given configuration.
    ///
    /// The baseline configuration reproduces the paper's numbers exactly;
    /// other sizings scale each component with its dominant structural
    /// parameter (buffer bytes, LUT count, and `W·log₂W` for the crossbar-
    /// dominated datapath).
    #[must_use]
    pub fn for_config(config: &DecaConfig) -> Self {
        let baseline = DecaConfig::baseline();
        let buffer_bytes = |c: &DecaConfig| {
            (c.sqq_bytes + c.bitmask_queue_bytes + c.scale_queue_bytes) * c.loaders
                + c.loaders * 1024 // TOut registers hold one dense tile each
                + c.loaders * c.ldq_entries * 8
        };
        let crossbar_cost = |c: &DecaConfig| c.w as f64 * (c.w as f64).log2().max(1.0);

        let buffers_mm2 = BASELINE_PE_MM2 * BASELINE_BUFFER_FRACTION * buffer_bytes(config) as f64
            / buffer_bytes(&baseline) as f64;
        let lut_array_mm2 =
            BASELINE_PE_MM2 * BASELINE_LUT_FRACTION * config.l as f64 / baseline.l as f64;
        let datapath_mm2 = BASELINE_PE_MM2
            * (1.0 - BASELINE_BUFFER_FRACTION - BASELINE_LUT_FRACTION)
            * crossbar_cost(config)
            / crossbar_cost(&baseline);
        AreaEstimate {
            buffers_mm2,
            lut_array_mm2,
            datapath_mm2,
        }
    }

    /// Total area of one PE.
    #[must_use]
    pub fn per_pe_mm2(&self) -> f64 {
        self.buffers_mm2 + self.lut_array_mm2 + self.datapath_mm2
    }

    /// Total area of `cores` PEs.
    #[must_use]
    pub fn total_mm2(&self, cores: usize) -> f64 {
        self.per_pe_mm2() * cores as f64
    }

    /// Fraction of a die of `die_mm2` consumed by `cores` PEs.
    #[must_use]
    pub fn fraction_of_die(&self, cores: usize, die_mm2: f64) -> f64 {
        self.total_mm2(cores) / die_mm2
    }

    /// Fractional breakdown `(buffers, lut_array, datapath)`.
    #[must_use]
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.per_pe_mm2();
        (
            self.buffers_mm2 / total,
            self.lut_array_mm2 / total,
            self.datapath_mm2 / total,
        )
    }
}

impl std::fmt::Display for AreaEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (b, l, d) = self.breakdown();
        write!(
            f,
            "{:.4} mm²/PE (buffers {:.0}%, LUT array {:.0}%, datapath {:.0}%)",
            self.per_pe_mm2(),
            b * 100.0,
            l * 100.0,
            d * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_numbers() {
        let est = AreaEstimate::for_config(&DecaConfig::baseline());
        let total = est.total_mm2(56);
        assert!((total - 2.51).abs() < 0.01, "56 PEs: {total} mm²");
        let (buffers, lut, rest) = est.breakdown();
        assert!((buffers - 0.55).abs() < 0.01);
        assert!((lut - 0.22).abs() < 0.01);
        assert!((rest - 0.23).abs() < 0.01);
        // §8: the overhead is below 0.2 % of the 1600 mm² die.
        assert!(est.fraction_of_die(56, SPR_DIE_MM2) < 0.002);
    }

    #[test]
    fn overprovisioned_design_costs_substantially_more() {
        let base = AreaEstimate::for_config(&DecaConfig::baseline());
        let over = AreaEstimate::for_config(&DecaConfig::overprovisioned());
        // 8x the LUTs and 2x the crossbar width must show up in area.
        assert!(over.lut_array_mm2 > 7.5 * base.lut_array_mm2);
        assert!(over.per_pe_mm2() > 2.0 * base.per_pe_mm2());
    }

    #[test]
    fn underprovisioned_design_is_cheaper() {
        let base = AreaEstimate::for_config(&DecaConfig::baseline());
        let under = AreaEstimate::for_config(&DecaConfig::underprovisioned());
        assert!(under.per_pe_mm2() < base.per_pe_mm2());
    }

    #[test]
    fn display_shows_breakdown() {
        let text = AreaEstimate::for_config(&DecaConfig::baseline()).to_string();
        assert!(text.contains("mm²"));
        assert!(text.contains("LUT array"));
    }
}
