//! The dequantization LUT array (§6.1).
//!
//! The dequantization stage holds `L` "big" LUTs of 256 BF16 entries, each
//! split into four 64-entry sub-LUTs with one read port apiece. Programming
//! the array with a format's [`DequantTable`] configures DECA for that
//! format; the number of parallel lookups per cycle follows from the code
//! bit-width (`L` for 8-bit, `2L` for 7-bit, `4L` for ≤6-bit codes).

use deca_numerics::{Bf16, DequantTable, QuantFormat};

/// The programmable LUT array of one DECA PE.
#[derive(Debug, Clone, PartialEq)]
pub struct LutArray {
    l: usize,
    table: Option<DequantTable>,
}

impl LutArray {
    /// Creates an array of `l` big LUTs, initially unprogrammed.
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero.
    #[must_use]
    pub fn new(l: usize) -> Self {
        assert!(l > 0, "the LUT array needs at least one LUT");
        LutArray { l, table: None }
    }

    /// Number of big LUTs.
    #[must_use]
    pub fn lut_count(&self) -> usize {
        self.l
    }

    /// Programs every LUT with the dequantization table of `format`
    /// (a privileged-store sequence from the core in real hardware).
    pub fn program(&mut self, format: QuantFormat) {
        if format == QuantFormat::Bf16 {
            // BF16 payloads bypass the LUTs entirely.
            self.table = None;
        } else {
            self.table = Some(DequantTable::for_format(format));
        }
    }

    /// The format the array is currently programmed for, if any.
    #[must_use]
    pub fn programmed_format(&self) -> Option<QuantFormat> {
        self.table.as_ref().map(DequantTable::format)
    }

    /// Maximum dequantizations per cycle for the programmed format
    /// (`Lq` in §6.2). Returns `None` when unprogrammed (BF16 passthrough).
    #[must_use]
    pub fn lookups_per_cycle(&self) -> Option<usize> {
        self.table
            .as_ref()
            .map(|t| self.l * t.lookups_per_lut_per_cycle())
    }

    /// Dequantizes a batch of codes, returning the BF16 values and the
    /// number of cycles the dequantization stage is occupied
    /// (`ceil(len / Lq)`, minimum 1).
    ///
    /// For an unprogrammed array (BF16 passthrough) the codes are
    /// reinterpreted as raw BF16 bit patterns and take a single cycle.
    #[must_use]
    pub fn dequantize(&self, codes: &[u16]) -> (Vec<Bf16>, u32) {
        match &self.table {
            None => (codes.iter().map(|&c| Bf16::from_bits(c)).collect(), 1),
            Some(table) => {
                let lq = self.l * table.lookups_per_lut_per_cycle();
                let cycles = codes.len().div_ceil(lq).max(1) as u32;
                let values = codes.iter().map(|&c| table.lookup(c as u8)).collect();
                (values, cycles)
            }
        }
    }

    /// Storage footprint of the array in bytes (for the area model):
    /// `L × 256 entries × 2 B`.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.l * DequantTable::ENTRIES * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_numerics::Minifloat;

    #[test]
    fn programming_selects_format() {
        let mut arr = LutArray::new(8);
        assert_eq!(arr.programmed_format(), None);
        arr.program(QuantFormat::Bf8);
        assert_eq!(arr.programmed_format(), Some(QuantFormat::Bf8));
        arr.program(QuantFormat::Bf16);
        assert_eq!(arr.programmed_format(), None);
    }

    #[test]
    fn lookups_per_cycle_follow_bit_width() {
        let mut arr = LutArray::new(8);
        arr.program(QuantFormat::Bf8);
        assert_eq!(arr.lookups_per_cycle(), Some(8));
        arr.program(QuantFormat::Fp4);
        assert_eq!(arr.lookups_per_cycle(), Some(32));
        arr.program(QuantFormat::Custom {
            exp_bits: 4,
            man_bits: 2,
        }); // 7-bit
        assert_eq!(arr.lookups_per_cycle(), Some(16));
    }

    #[test]
    fn dequantize_counts_occupancy_cycles() {
        let mut arr = LutArray::new(8);
        arr.program(QuantFormat::Bf8);
        let codes: Vec<u16> = (0..32).collect();
        let (values, cycles) = arr.dequantize(&codes);
        assert_eq!(values.len(), 32);
        assert_eq!(cycles, 4); // 32 codes / 8 lookups per cycle
        let (_, cycles) = arr.dequantize(&codes[..8]);
        assert_eq!(cycles, 1);
        let (_, cycles) = arr.dequantize(&[]);
        assert_eq!(cycles, 1, "an empty window still occupies one cycle");
    }

    #[test]
    fn dequantize_values_match_codec() {
        let mut arr = LutArray::new(4);
        arr.program(QuantFormat::Bf8);
        let mf = Minifloat::bf8();
        let codes: Vec<u16> = vec![0x3C, 0x40, 0x00, 0xBC];
        let (values, _) = arr.dequantize(&codes);
        for (code, value) in codes.iter().zip(&values) {
            assert_eq!(value.to_f32(), mf.decode(*code as u8));
        }
    }

    #[test]
    fn bf16_passthrough_reinterprets_bits() {
        let arr = LutArray::new(8);
        let one = Bf16::from_f32(1.0).to_bits();
        let (values, cycles) = arr.dequantize(&[one]);
        assert_eq!(values[0].to_f32(), 1.0);
        assert_eq!(cycles, 1);
    }

    #[test]
    fn storage_footprint() {
        assert_eq!(LutArray::new(8).storage_bytes(), 8 * 512);
        assert_eq!(LutArray::new(64).storage_bytes(), 64 * 512);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_luts_rejected() {
        let _ = LutArray::new(0);
    }
}
