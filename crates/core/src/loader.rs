//! DECA Loaders (§5.2, §6.1).
//!
//! A Loader receives tile *metadata* from the core (base addresses and
//! lengths of the nonzero array, the bitmask and the scale factors), issues
//! the corresponding memory reads through its load queue (LDQ), and fills
//! the PE's input queues. A PE has two Loaders so that one tile can be
//! fetched while the pipeline processes the other.

use deca_compress::{CompressedTile, DecompressEngine, DecompressScratch, DenseTile};

use crate::DecaError;

/// The metadata the core passes when invoking DECA for one tile: the three
/// memory structures to fetch (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TileMetadata {
    /// Base address of the packed nonzero array.
    pub data_addr: u64,
    /// Length of the nonzero array in bytes.
    pub data_len: u32,
    /// Base address of the bitmask (0 when the tile is dense).
    pub bitmask_addr: u64,
    /// Length of the bitmask in bytes (0 when dense).
    pub bitmask_len: u32,
    /// Base address of the scale factors (0 when not group-quantized).
    pub scale_addr: u64,
    /// Length of the scale factors in bytes (0 when not group-quantized).
    pub scale_len: u32,
}

impl TileMetadata {
    /// Builds metadata describing a compressed tile laid out contiguously at
    /// `base` (nonzeros, then bitmask, then scales).
    #[must_use]
    pub fn for_tile(base: u64, tile: &CompressedTile) -> Self {
        let data_len = tile.payload_bytes() as u32;
        let bitmask_len = tile.bitmask().map_or(0, deca_compress::Bitmask::byte_size) as u32;
        let scale_len = tile.scales().len() as u32;
        TileMetadata {
            data_addr: base,
            data_len,
            bitmask_addr: if bitmask_len > 0 {
                base + u64::from(data_len)
            } else {
                0
            },
            bitmask_len,
            scale_addr: if scale_len > 0 {
                base + u64::from(data_len) + u64::from(bitmask_len)
            } else {
                0
            },
            scale_len,
        }
    }

    /// Total bytes this tile occupies in memory.
    #[must_use]
    pub fn total_bytes(&self) -> u32 {
        self.data_len + self.bitmask_len + self.scale_len
    }

    /// 64-byte cache lines the Loader must fetch for this tile (each of the
    /// three structures starts on its own line).
    #[must_use]
    pub fn cache_lines(&self) -> u32 {
        let lines = |len: u32| len.div_ceil(64);
        lines(self.data_len) + lines(self.bitmask_len) + lines(self.scale_len)
    }
}

/// The state of one Loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LoaderState {
    /// No tile assigned.
    Idle,
    /// Fetching the tile described by the held metadata.
    Fetching,
    /// All data has arrived in the input queues; the pipeline may consume.
    Ready,
}

/// One of the PE's Loaders: LDQ bookkeeping plus fetch statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Loader {
    id: usize,
    ldq_entries: usize,
    state: LoaderState,
    current: Option<TileMetadata>,
    tiles_fetched: u64,
    bytes_fetched: u64,
    prefetches_issued: u64,
}

impl Loader {
    /// Creates loader `id` with `ldq_entries` outstanding-line slots.
    ///
    /// # Panics
    ///
    /// Panics if `ldq_entries` is zero.
    #[must_use]
    pub fn new(id: usize, ldq_entries: usize) -> Self {
        assert!(ldq_entries > 0, "the LDQ needs at least one entry");
        Loader {
            id,
            ldq_entries,
            state: LoaderState::Idle,
            current: None,
            tiles_fetched: 0,
            bytes_fetched: 0,
            prefetches_issued: 0,
        }
    }

    /// This loader's index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> LoaderState {
        self.state
    }

    /// Whether the loader can accept a new tile.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.state == LoaderState::Idle
    }

    /// Accepts tile metadata and starts fetching. Returns the number of
    /// LDQ "waves" required (cache lines divided by LDQ capacity), a lower
    /// bound on how many round trips the fetch needs.
    ///
    /// # Panics
    ///
    /// Panics if the loader is not idle (the structural hazard the TEPL
    /// queue is supposed to prevent).
    pub fn start_fetch(&mut self, metadata: TileMetadata) -> u32 {
        assert!(
            self.is_idle(),
            "loader {} asked to fetch while busy — TEPL/store sequencing bug",
            self.id
        );
        self.state = LoaderState::Fetching;
        self.current = Some(metadata);
        self.tiles_fetched += 1;
        self.bytes_fetched += u64::from(metadata.total_bytes());
        metadata
            .cache_lines()
            .div_ceil(self.ldq_entries as u32)
            .max(1)
    }

    /// Records prefetch requests issued on behalf of future tiles.
    pub fn record_prefetches(&mut self, lines: u64) {
        self.prefetches_issued += lines;
    }

    /// Marks the fetch as complete (data resides in the input queues).
    pub fn fetch_complete(&mut self) {
        if self.state == LoaderState::Fetching {
            self.state = LoaderState::Ready;
        }
    }

    /// Marks the fetch as complete after validating the arrived tile
    /// against the metadata this loader was programmed with and against an
    /// injected decompression engine: the engine streams the tile through
    /// its zero-copy path, which rejects any tile whose memory structures
    /// disagree — the model-level equivalent of DECA faulting on a
    /// corrupted weight stream instead of feeding garbage to the TMUL.
    ///
    /// # Errors
    ///
    /// Returns [`DecaError::Compress`] if the tile's size disagrees with
    /// the programmed metadata or the engine rejects the tile. The loader
    /// stays in the `Fetching` state on error.
    pub fn fetch_complete_validated(
        &mut self,
        tile: &CompressedTile,
        engine: &dyn DecompressEngine,
    ) -> Result<(), DecaError> {
        let Some(metadata) = self.current else {
            return Err(DecaError::Compress(
                deca_compress::CompressError::CorruptTile {
                    reason: "loader has no tile metadata to validate against".to_string(),
                },
            ));
        };
        if metadata.total_bytes() as usize != tile.byte_size() {
            return Err(DecaError::Compress(
                deca_compress::CompressError::CorruptTile {
                    reason: format!(
                        "fetched tile occupies {} bytes but the metadata describes {}",
                        tile.byte_size(),
                        metadata.total_bytes()
                    ),
                },
            ));
        }
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        engine.decompress_tile_into(tile, &mut scratch, &mut out)?;
        self.fetch_complete();
        Ok(())
    }

    /// Releases the loader once the pipeline has drained its tile.
    pub fn release(&mut self) {
        self.state = LoaderState::Idle;
        self.current = None;
    }

    /// Metadata of the tile currently held, if any.
    #[must_use]
    pub fn current(&self) -> Option<&TileMetadata> {
        self.current.as_ref()
    }

    /// Tiles fetched so far.
    #[must_use]
    pub fn tiles_fetched(&self) -> u64 {
        self.tiles_fetched
    }

    /// Bytes fetched so far.
    #[must_use]
    pub fn bytes_fetched(&self) -> u64 {
        self.bytes_fetched
    }

    /// Prefetch requests issued so far.
    #[must_use]
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::{generator::WeightGenerator, CompressionScheme, Compressor};

    fn sample_tile(scheme: CompressionScheme) -> CompressedTile {
        let tile = WeightGenerator::new(3).dense_matrix(16, 32).tile(0, 0);
        Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress")
    }

    #[test]
    fn metadata_layout_is_contiguous() {
        let tile = sample_tile(CompressionScheme::bf8_sparse(0.5));
        let md = TileMetadata::for_tile(0x1000, &tile);
        assert_eq!(md.data_addr, 0x1000);
        assert_eq!(md.data_len, 256);
        assert_eq!(md.bitmask_addr, 0x1100);
        assert_eq!(md.bitmask_len, 64);
        assert_eq!(md.scale_len, 0);
        assert_eq!(md.total_bytes() as usize, tile.byte_size());
    }

    #[test]
    fn metadata_for_dense_and_mx_tiles() {
        let dense = sample_tile(CompressionScheme::bf8_dense());
        let md = TileMetadata::for_tile(0, &dense);
        assert_eq!(md.bitmask_len, 0);
        assert_eq!(md.bitmask_addr, 0);
        let mx = sample_tile(CompressionScheme::mxfp4());
        let md = TileMetadata::for_tile(0, &mx);
        assert_eq!(md.scale_len, 16);
        assert_eq!(md.total_bytes(), 272);
    }

    #[test]
    fn cache_line_accounting_rounds_per_structure() {
        let tile = sample_tile(CompressionScheme::bf8_sparse(0.05));
        let md = TileMetadata::for_tile(0, &tile);
        // ~26 payload bytes -> 1 line, 64 bitmask bytes -> 1 line.
        assert_eq!(md.cache_lines(), 2);
        let dense = sample_tile(CompressionScheme::bf16_dense());
        let md = TileMetadata::for_tile(0, &dense);
        assert_eq!(md.cache_lines(), 16);
    }

    #[test]
    fn loader_lifecycle() {
        let tile = sample_tile(CompressionScheme::bf8_dense());
        let md = TileMetadata::for_tile(0, &tile);
        let mut loader = Loader::new(0, 16);
        assert!(loader.is_idle());
        let waves = loader.start_fetch(md);
        assert_eq!(waves, 1);
        assert_eq!(loader.state(), LoaderState::Fetching);
        assert_eq!(loader.current(), Some(&md));
        loader.fetch_complete();
        assert_eq!(loader.state(), LoaderState::Ready);
        loader.release();
        assert!(loader.is_idle());
        assert_eq!(loader.tiles_fetched(), 1);
        assert_eq!(loader.bytes_fetched(), 512);
    }

    #[test]
    fn small_ldq_needs_multiple_waves() {
        let tile = sample_tile(CompressionScheme::bf16_dense());
        let md = TileMetadata::for_tile(0, &tile);
        let mut loader = Loader::new(1, 4);
        let waves = loader.start_fetch(md);
        assert_eq!(waves, 4); // 16 lines / 4 LDQ entries
    }

    #[test]
    fn validated_fetch_accepts_consistent_tiles() {
        let tile = sample_tile(CompressionScheme::bf8_sparse(0.3));
        let md = TileMetadata::for_tile(0x2000, &tile);
        let engine = deca_compress::WordParallelEngine::new();
        let mut loader = Loader::new(0, 16);
        loader.start_fetch(md);
        loader
            .fetch_complete_validated(&tile, &engine)
            .expect("consistent tile must validate");
        assert_eq!(loader.state(), LoaderState::Ready);
    }

    #[test]
    fn validated_fetch_rejects_mismatched_metadata() {
        let tile = sample_tile(CompressionScheme::bf8_sparse(0.3));
        let other = sample_tile(CompressionScheme::bf16_dense());
        let engine = deca_compress::ScalarEngine::new();
        let mut loader = Loader::new(0, 16);
        loader.start_fetch(TileMetadata::for_tile(0, &other));
        let err = loader
            .fetch_complete_validated(&tile, &engine)
            .expect_err("metadata mismatch must be rejected");
        assert!(matches!(err, DecaError::Compress(_)));
        assert_eq!(loader.state(), LoaderState::Fetching);
        // An idle loader has nothing to validate against.
        let mut idle = Loader::new(1, 16);
        assert!(idle.fetch_complete_validated(&tile, &engine).is_err());
    }

    #[test]
    #[should_panic(expected = "while busy")]
    fn double_assignment_panics() {
        let tile = sample_tile(CompressionScheme::bf8_dense());
        let md = TileMetadata::for_tile(0, &tile);
        let mut loader = Loader::new(0, 16);
        loader.start_fetch(md);
        loader.start_fetch(md);
    }

    #[test]
    fn prefetch_accounting() {
        let mut loader = Loader::new(0, 16);
        loader.record_prefetches(10);
        loader.record_prefetches(5);
        assert_eq!(loader.prefetches_issued(), 15);
    }
}
