//! DECA: a near-core ML-model decompression accelerator (paper §5–§6).
//!
//! DECA sits next to each CPU core, reads compressed weight tiles from the
//! memory system, de-sparsifies and dequantizes them in a three-stage vector
//! pipeline, and hands dense BF16 tiles to the core's TMUL through dedicated
//! TOut registers. A new ISA extension, *Tile External Preprocess and Load*
//! (TEPL), lets the core invoke DECA speculatively and out-of-order so the
//! core–accelerator communication latency is hidden.
//!
//! This crate models DECA both *functionally* — the PE pipeline produces
//! bit-exact decompressed tiles, validated against the reference
//! decompressor — and *temporally* — per-vOp cycle counts with bubbles
//! measured from the actual bitmask, which feed the `deca-sim` tile
//! executor.
//!
//! Main types:
//!
//! * [`DecaConfig`] — the PE sizing (`W`, `L`, loaders, queue depths),
//! * [`LutArray`], [`pipeline::VopPipeline`] — the dequantize / expand /
//!   scale pipeline,
//! * [`DecaPe`] — a full PE with Loaders and TOut registers,
//! * [`TeplQueue`] — the core-side TEPL queue and ports (§5.3),
//! * [`IntegrationConfig`] — the integration/invocation options ablated in
//!   Fig. 17,
//! * [`timing`] — glue that turns a scheme + configuration into a
//!   [`deca_sim::TileExecModel`],
//! * [`area`] — the §8 area model.
//!
//! # Example
//!
//! ```
//! use deca::{DecaConfig, DecaPe};
//! use deca_compress::{generator::WeightGenerator, CompressionScheme, Compressor};
//!
//! let tile = WeightGenerator::new(1).dense_matrix(16, 32).tile(0, 0);
//! let compressed = Compressor::new(CompressionScheme::bf8_sparse(0.2)).compress_tile(&tile)?;
//! let mut pe = DecaPe::new(DecaConfig::baseline());
//! let out = pe.process_tile(&compressed)?;
//! assert_eq!(out.tile.nonzero_count(), compressed.nonzero_count());
//! # Ok::<(), deca::DecaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod config;
mod error;
mod integration;
mod loader;
mod lut_array;
mod pe;
pub mod pipeline;
mod tepl;
pub mod timing;

pub use config::DecaConfig;
pub use error::DecaError;
pub use integration::{IntegrationConfig, InvocationScheme, OutputPath, ReadPath, TilePrefetcher};
pub use loader::{Loader, TileMetadata};
pub use lut_array::LutArray;
pub use pe::{DecaPe, ProcessedTile};
pub use tepl::{TeplQueue, TeplSlotState};

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::{
        generator::WeightGenerator, CompressionScheme, Compressor, Decompressor, SchemeSet,
    };

    /// The full PE functional path must agree exactly with the reference
    /// scalar decompressor for every evaluated scheme.
    #[test]
    fn pe_matches_reference_decompressor_for_all_schemes() {
        let generator = WeightGenerator::new(99);
        let matrix = generator.dense_matrix(16, 32);
        let tile = matrix.tile(0, 0);
        let reference = Decompressor::new();
        for scheme in SchemeSet::paper_evaluation() {
            let compressed = Compressor::new(scheme)
                .compress_tile(&tile)
                .expect("compress");
            let expected = reference.decompress_tile(&compressed).expect("reference");
            let mut pe = DecaPe::new(DecaConfig::baseline());
            let produced = pe.process_tile(&compressed).expect("pe");
            assert_eq!(produced.tile, expected, "scheme {scheme}");
        }
    }

    /// Measured bubbles from real bitmasks track the analytic binomial model
    /// within a few percent of a cycle per vOp.
    #[test]
    fn measured_bubbles_track_binomial_model() {
        use deca_roofsurface::DecaVopModel;
        let generator = WeightGenerator::new(7);
        let matrix = generator.dense_matrix(64, 128);
        for density in [0.5, 0.2, 0.05] {
            let scheme = CompressionScheme::bf8_sparse(density);
            let compressor = Compressor::new(scheme);
            let analytic = DecaVopModel::BASELINE.cycles_per_tile(&scheme);
            let mut pe = DecaPe::new(DecaConfig::baseline());
            let mut total_cycles = 0.0;
            let mut tiles = 0.0;
            for tr in 0..matrix.tile_rows() {
                for tc in 0..matrix.tile_cols() {
                    let compressed = compressor
                        .compress_tile(&matrix.tile(tr, tc))
                        .expect("compress");
                    let out = pe.process_tile(&compressed).expect("pe");
                    // Compare steady-state vOp cycles (the analytic model
                    // excludes the 2-cycle pipeline fill each tile pays once).
                    total_cycles += f64::from(out.timing.vops + out.timing.bubbles);
                    tiles += 1.0;
                }
            }
            let measured = total_cycles / tiles;
            let rel = (measured - analytic).abs() / analytic;
            assert!(
                rel < 0.10,
                "density {density}: measured {measured:.2} vs analytic {analytic:.2}"
            );
        }
    }
}
