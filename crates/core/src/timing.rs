//! Glue from DECA configurations to the `deca-sim` tile executor.
//!
//! A DECA-accelerated compressed-GeMM kernel is, from the simulator's point
//! of view, a [`TileExecModel`]: compressed bytes per tile, DECA pipeline
//! cycles per tile, a handful of core instructions per iteration, the TMUL's
//! 16 cycles, the communication latencies implied by the integration
//! options, and the invocation scheme's overlap behaviour. This module
//! builds those models, either analytically (binomial bubble expectation)
//! or from bubbles measured on actual compressed tiles.

use deca_compress::{CompressedTile, CompressionScheme};
use deca_sim::{CacheConfig, InvocationModel, PrefetchConfig, TileExecModel};

use crate::{
    pipeline::VopPipeline, DecaConfig, DecaError, IntegrationConfig, InvocationScheme, OutputPath,
    ReadPath, TilePrefetcher,
};

/// Core issue-slot cycles per iteration of the TEPL-based kernel
/// (Fig. 10: TEPL + TComp + loop bookkeeping on a 6-wide core).
pub const TEPL_CORE_CYCLES_PER_TILE: f64 = 2.0;
/// Core issue-slot cycles per iteration of the store+fence kernel
/// (Fig. 9: two stores, a fence, TLoad, TComp and loop bookkeeping).
pub const STORE_FENCE_CORE_CYCLES_PER_TILE: f64 = 3.0;
/// Serialized per-iteration overhead of the store+fence scheme: the store
/// must reach the head of the ROB, the fence drains, and the MMIO write to
/// the Loader control register completes before the next iteration proceeds.
pub const STORE_FENCE_OVERHEAD_CYCLES: f64 = 36.0;
/// Latency of the core reading a decompressed tile from the TOut registers
/// over the short core↔DECA link.
pub const TOUT_READ_LATENCY: f64 = 6.0;
/// TMUL occupancy per tile operation (§2.3).
pub const TMUL_CYCLES_PER_TILE: f64 = 16.0;
/// Prefetch run-ahead (in tiles) of the stock L2 stream prefetcher.
pub const L2_PREFETCH_DISTANCE: usize = 8;
/// Prefetch run-ahead (in tiles) of DECA's integrated prefetcher.
pub const DECA_PREFETCH_DISTANCE: usize = 16;

/// Builds the execution model of a DECA-accelerated kernel for `scheme`
/// using the *analytic* bubble expectation (§6.2).
#[must_use]
pub fn tile_exec_model(
    scheme: &CompressionScheme,
    deca: &DecaConfig,
    integration: &IntegrationConfig,
    cache: &CacheConfig,
) -> TileExecModel {
    let decompress_cycles = deca.vop_model().cycles_per_tile(scheme);
    build_model(scheme, *integration, cache, decompress_cycles)
}

/// Builds the execution model using bubbles *measured* on a sample of
/// actual compressed tiles (more faithful for correlated sparsity
/// patterns).
///
/// # Errors
///
/// Propagates pipeline errors if a sample tile is inconsistent.
///
/// # Panics
///
/// Panics if `sample_tiles` is empty.
pub fn tile_exec_model_measured(
    sample_tiles: &[CompressedTile],
    deca: &DecaConfig,
    integration: &IntegrationConfig,
    cache: &CacheConfig,
) -> Result<TileExecModel, DecaError> {
    assert!(!sample_tiles.is_empty(), "need at least one sample tile");
    let scheme = *sample_tiles[0].scheme();
    let mut pipeline = VopPipeline::new(deca);
    pipeline.configure(scheme.format());
    let mut total_cycles = 0.0;
    let mut total_bytes = 0.0;
    for tile in sample_tiles {
        let (_, timing) = pipeline.process(tile)?;
        total_cycles += f64::from(timing.vops + timing.bubbles);
        total_bytes += tile.byte_size() as f64;
    }
    let decompress_cycles = total_cycles / sample_tiles.len() as f64;
    let mut model = build_model(&scheme, *integration, cache, decompress_cycles);
    model.bytes_per_tile = total_bytes / sample_tiles.len() as f64;
    Ok(model)
}

fn build_model(
    scheme: &CompressionScheme,
    integration: IntegrationConfig,
    cache: &CacheConfig,
    decompress_cycles: f64,
) -> TileExecModel {
    let prefetch = match integration.prefetcher {
        TilePrefetcher::None => PrefetchConfig::none(),
        // The stock L2 stream prefetcher tracks DECA's three interleaved,
        // variable-length tile structures less well than a regular strided
        // stream, so its coverage is lower than for the software kernel.
        TilePrefetcher::L2Stream => {
            PrefetchConfig::stream_with_coverage(L2_PREFETCH_DISTANCE, 0.75)
        }
        TilePrefetcher::Deca => PrefetchConfig::deca(DECA_PREFETCH_DISTANCE),
    };
    let exposed_pre_latency = match integration.read_path {
        // Reading from the LLC slice adds the NoC hop and the LLC-vs-L2
        // latency difference to every demand access.
        ReadPath::Llc => cache.llc_read_latency() - cache.l2_hit_latency(),
        ReadPath::L2 => 0.0,
    };
    let exposed_post_latency = match integration.output {
        OutputPath::L2 => cache.l2_roundtrip_latency() + cache.noc_hop_latency,
        OutputPath::TOutRegisters => TOUT_READ_LATENCY,
    };
    let (invocation, core_cycles) = match integration.invocation {
        InvocationScheme::StoreFence => (
            InvocationModel::Serialized {
                overhead_cycles: STORE_FENCE_OVERHEAD_CYCLES,
            },
            STORE_FENCE_CORE_CYCLES_PER_TILE,
        ),
        InvocationScheme::Tepl => (InvocationModel::Overlapped, TEPL_CORE_CYCLES_PER_TILE),
    };
    TileExecModel {
        bytes_per_tile: scheme.expected_tile_bytes(),
        decompress_cycles_per_tile: decompress_cycles,
        core_cycles_per_tile: core_cycles,
        tmul_cycles_per_tile: TMUL_CYCLES_PER_TILE,
        exposed_pre_latency,
        exposed_post_latency,
        invocation,
        buffering_depth: 2,
        prefetch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::{generator::WeightGenerator, Compressor};
    use deca_roofsurface::MachineConfig;
    use deca_sim::GemmSimulation;

    #[test]
    fn full_integration_model_parameters() {
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let model = tile_exec_model(
            &scheme,
            &DecaConfig::baseline(),
            &IntegrationConfig::full(),
            &CacheConfig::spr(),
        );
        assert!((model.bytes_per_tile - 166.4).abs() < 1e-9);
        assert_eq!(model.tmul_cycles_per_tile, 16.0);
        assert_eq!(model.exposed_pre_latency, 0.0);
        assert_eq!(model.exposed_post_latency, TOUT_READ_LATENCY);
        assert!(matches!(model.invocation, InvocationModel::Overlapped));
        assert!(model.decompress_cycles_per_tile >= 16.0);
        assert!(model.decompress_cycles_per_tile < 24.0);
    }

    #[test]
    fn base_integration_exposes_latency_and_serializes() {
        let scheme = CompressionScheme::bf8_dense();
        let model = tile_exec_model(
            &scheme,
            &DecaConfig::baseline(),
            &IntegrationConfig::base(),
            &CacheConfig::spr(),
        );
        assert!(model.exposed_pre_latency > 0.0);
        assert!(model.exposed_post_latency > TOUT_READ_LATENCY);
        assert!(matches!(
            model.invocation,
            InvocationModel::Serialized { .. }
        ));
        assert!(!model.prefetch.is_enabled());
    }

    #[test]
    fn ablation_ladder_is_monotonically_faster() {
        // Fig. 17: every integration step improves (or at least does not
        // hurt) performance, for every density.
        let machine = MachineConfig::spr_hbm();
        let sim = GemmSimulation::new(machine.clone(), CacheConfig::spr());
        for density in [1.0, 0.5, 0.2, 0.05] {
            let scheme = if density < 1.0 {
                CompressionScheme::bf8_sparse(density)
            } else {
                CompressionScheme::bf8_dense()
            };
            let mut previous = 0.0;
            for (name, integration) in IntegrationConfig::ablation_ladder() {
                let model = tile_exec_model(
                    &scheme,
                    &DecaConfig::baseline(),
                    &integration,
                    &CacheConfig::spr(),
                );
                let tflops = sim.run(&model, 3000).tflops(&machine, 4);
                assert!(
                    tflops >= previous * 0.999,
                    "{name} at density {density}: {tflops} < {previous}"
                );
                previous = tflops;
            }
        }
    }

    #[test]
    fn tepl_benefit_grows_as_density_shrinks() {
        // §9.3: "for 5 % density, TEPLs double the performance".
        let machine = MachineConfig::spr_hbm();
        let sim = GemmSimulation::new(machine.clone(), CacheConfig::spr());
        let speedup_from_tepl = |scheme: &CompressionScheme| {
            let without = tile_exec_model(
                scheme,
                &DecaConfig::baseline(),
                &IntegrationConfig::plus_tout_regs(),
                &CacheConfig::spr(),
            );
            let with = tile_exec_model(
                scheme,
                &DecaConfig::baseline(),
                &IntegrationConfig::plus_tepl(),
                &CacheConfig::spr(),
            );
            sim.run(&with, 3000).tflops(&machine, 4) / sim.run(&without, 3000).tflops(&machine, 4)
        };
        let dense = speedup_from_tepl(&CompressionScheme::bf8_dense());
        let sparse = speedup_from_tepl(&CompressionScheme::bf8_sparse(0.05));
        assert!(sparse > dense, "sparse {sparse} dense {dense}");
        assert!(
            sparse > 1.5,
            "TEPL should give a large boost at 5 % density, got {sparse}"
        );
    }

    #[test]
    fn measured_model_agrees_with_analytic_model() {
        let scheme = CompressionScheme::bf8_sparse(0.3);
        let generator = WeightGenerator::new(5);
        let matrix = generator.dense_matrix(64, 64);
        let compressor = Compressor::new(scheme);
        let tiles: Vec<_> = (0..matrix.tile_rows())
            .flat_map(|tr| {
                let compressor = compressor.clone();
                let matrix = &matrix;
                (0..matrix.tile_cols()).map(move |tc| {
                    compressor
                        .compress_tile(&matrix.tile(tr, tc))
                        .expect("compress")
                })
            })
            .collect();
        let analytic = tile_exec_model(
            &scheme,
            &DecaConfig::baseline(),
            &IntegrationConfig::full(),
            &CacheConfig::spr(),
        );
        let measured = tile_exec_model_measured(
            &tiles,
            &DecaConfig::baseline(),
            &IntegrationConfig::full(),
            &CacheConfig::spr(),
        )
        .expect("measured model");
        let rel = (measured.decompress_cycles_per_tile - analytic.decompress_cycles_per_tile).abs()
            / analytic.decompress_cycles_per_tile;
        assert!(rel < 0.10, "measured {measured:?} analytic {analytic:?}");
        // Measured bytes come from real tiles and should track the scheme's
        // expectation.
        assert!((measured.bytes_per_tile - analytic.bytes_per_tile).abs() < 4.0);
    }
}
