//! Error type for the DECA model.

use deca_compress::CompressError;

/// Errors raised by the DECA accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub enum DecaError {
    /// The PE was asked to process a tile whose format it is not currently
    /// configured for (LUT array mismatch).
    NotConfiguredFor {
        /// The format found in the tile.
        found: String,
    },
    /// The compressed tile itself is inconsistent.
    Compress(CompressError),
    /// A TEPL instruction could not be issued (structural hazard mis-use).
    TeplHazard {
        /// Explanation of the hazard.
        reason: &'static str,
    },
    /// The pipeline's functional output disagrees with the injected
    /// reference decompression engine — a modeling bug, caught by
    /// validation.
    EngineMismatch {
        /// Name of the engine the output was validated against.
        engine: &'static str,
    },
}

impl std::fmt::Display for DecaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecaError::NotConfiguredFor { found } => {
                write!(f, "DECA PE is not configured for format {found}")
            }
            DecaError::Compress(e) => write!(f, "compressed tile error: {e}"),
            DecaError::TeplHazard { reason } => write!(f, "TEPL structural hazard: {reason}"),
            DecaError::EngineMismatch { engine } => {
                write!(
                    f,
                    "pipeline output disagrees with the {engine} decompression engine"
                )
            }
        }
    }
}

impl std::error::Error for DecaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecaError::Compress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompressError> for DecaError {
    fn from(e: CompressError) -> Self {
        DecaError::Compress(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = DecaError::NotConfiguredFor {
            found: "Q4".to_string(),
        };
        assert!(e.to_string().contains("Q4"));
        let e: DecaError = CompressError::InvalidDensity(2.0).into();
        assert!(matches!(e, DecaError::Compress(_)));
        let e = DecaError::TeplHazard {
            reason: "no free loader",
        };
        assert!(e.to_string().contains("hazard"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<DecaError>();
    }
}
