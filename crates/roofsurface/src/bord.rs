//! The 2D Bounding Region Diagram (BORD), §4.2.
//!
//! The BORD is the projection of the Roof-Surface onto the `(AIX_M, AIX_V)`
//! plane. It drops the FLOPS information but identifies which factor bounds
//! each kernel. The three regions are separated by:
//!
//! * `AIX_V = (MBW / VOS) · AIX_M` — the MEM/VEC boundary,
//! * `AIX_M = MOS / MBW` — the MEM/MTX boundary,
//! * `AIX_V = MOS / VOS` — the VEC/MTX boundary.

use crate::{BoundingFactor, KernelSignature, RoofSurface};

/// Region labels of the BORD (aliases of [`BoundingFactor`] for readability
/// in plotting code).
pub type Region = BoundingFactor;

/// A kernel placed on the BORD.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BordPoint {
    /// Kernel label.
    pub label: String,
    /// x coordinate (`AIX_M`).
    pub aix_m: f64,
    /// y coordinate (`AIX_V`).
    pub aix_v: f64,
    /// The region the kernel falls in.
    pub region: Region,
}

/// The 2D Bounding Region Diagram of a Roof-Surface.
#[derive(Debug, Clone, PartialEq)]
pub struct Bord {
    surface: RoofSurface,
}

impl Bord {
    /// Builds the BORD for a Roof-Surface.
    #[must_use]
    pub fn new(surface: RoofSurface) -> Self {
        Bord { surface }
    }

    /// The underlying Roof-Surface.
    #[must_use]
    pub fn surface(&self) -> &RoofSurface {
        &self.surface
    }

    /// Slope of the MEM/VEC boundary line `AIX_V = slope · AIX_M`.
    #[must_use]
    pub fn mem_vec_slope(&self) -> f64 {
        self.surface.mbw() / self.surface.vos()
    }

    /// The vertical MEM/MTX boundary `AIX_M = MOS / MBW`.
    #[must_use]
    pub fn mem_mtx_boundary(&self) -> f64 {
        self.surface.mos() / self.surface.mbw()
    }

    /// The horizontal VEC/MTX boundary `AIX_V = MOS / VOS`.
    #[must_use]
    pub fn vec_mtx_boundary(&self) -> f64 {
        self.surface.mos() / self.surface.vos()
    }

    /// Classifies a kernel into its bounding region.
    #[must_use]
    pub fn classify(&self, sig: &KernelSignature) -> Region {
        self.surface.bounding_factor(sig)
    }

    /// Places a kernel on the diagram.
    #[must_use]
    pub fn place(&self, sig: &KernelSignature) -> BordPoint {
        BordPoint {
            label: sig.label.clone(),
            aix_m: sig.aix_m,
            aix_v: sig.aix_v,
            region: self.classify(sig),
        }
    }

    /// Places a whole set of kernels.
    #[must_use]
    pub fn place_all(&self, sigs: &[KernelSignature]) -> Vec<BordPoint> {
        sigs.iter().map(|s| self.place(s)).collect()
    }

    /// True if the MTX region is visible within the plotted `AIX_M` range —
    /// on DDR the MEM region swallows it for the ranges of interest
    /// (Fig. 5b).
    #[must_use]
    pub fn mtx_region_visible(&self, aix_m_max: f64) -> bool {
        self.mem_mtx_boundary() < aix_m_max
    }

    /// Fraction of kernels from `sigs` that are vector-bound (the quantity
    /// DECA tries to drive to zero).
    #[must_use]
    pub fn vec_bound_fraction(&self, sigs: &[KernelSignature]) -> f64 {
        if sigs.is_empty() {
            return 0.0;
        }
        let vec_bound = sigs
            .iter()
            .filter(|s| self.classify(s) == Region::Vector)
            .count();
        vec_bound as f64 / sigs.len() as f64
    }

    /// Renders the diagram as a small ASCII plot (log-log axes), mostly for
    /// the experiment binaries' textual output.
    #[must_use]
    pub fn render_ascii(&self, points: &[BordPoint], width: usize, height: usize) -> String {
        assert!(width >= 16 && height >= 8, "plot too small to be readable");
        let (x_min, x_max) = (1e-4f64, 0.05f64);
        let (y_min, y_max) = (1e-4f64, 0.2f64);
        let mut grid = vec![vec![' '; width]; height];
        // Region background: sample each cell centre.
        for (row, line) in grid.iter_mut().enumerate() {
            for (col, cell) in line.iter_mut().enumerate() {
                let tx = col as f64 / (width - 1) as f64;
                let ty = 1.0 - row as f64 / (height - 1) as f64;
                let x = x_min * (x_max / x_min).powf(tx);
                let y = y_min * (y_max / y_min).powf(ty);
                let sig = KernelSignature::new("cell", x, y);
                *cell = match self.classify(&sig) {
                    Region::Memory => '.',
                    Region::Vector => 'v',
                    Region::Matrix => 'm',
                };
            }
        }
        // Overlay kernels.
        for p in points {
            let tx = ((p.aix_m / x_min).ln() / (x_max / x_min).ln()).clamp(0.0, 1.0);
            let ty = ((p.aix_v / y_min).ln() / (y_max / y_min).ln()).clamp(0.0, 1.0);
            let col = (tx * (width - 1) as f64).round() as usize;
            let row = ((1.0 - ty) * (height - 1) as f64).round() as usize;
            grid[row][col] = '*';
        }
        let mut out = String::new();
        for line in grid {
            out.push_str(&line.into_iter().collect::<String>());
            out.push('\n');
        }
        out.push_str("x: AIX_M (log)  y: AIX_V (log)  '.'=MEM 'v'=VEC 'm'=MTX '*'=kernel\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;
    use deca_compress::{CompressionScheme, SchemeSet};

    fn software_signatures() -> Vec<KernelSignature> {
        // The software AVX op budgets documented in deca-kernels.
        SchemeSet::paper_evaluation()
            .into_iter()
            .map(|s| {
                let vops = if !s.is_quantized() {
                    96.0
                } else if s.format().bits() == 4 {
                    192.0
                } else if s.is_sparse() {
                    144.0
                } else {
                    80.0
                };
                KernelSignature::from_scheme_and_vops(&s, vops)
            })
            .collect()
    }

    #[test]
    fn hbm_bord_boundaries_match_machine_rates() {
        let machine = MachineConfig::spr_hbm();
        let bord = Bord::new(RoofSurface::for_cpu(&machine));
        // MEM/MTX boundary: MOS/MBW = 8.75e9/850e9 ≈ 0.0103.
        assert!((bord.mem_mtx_boundary() - 0.0103).abs() < 3e-4);
        // VEC/MTX boundary: MOS/VOS = 8.75e9/280e9 = 0.03125.
        assert!((bord.vec_mtx_boundary() - 0.03125).abs() < 1e-6);
        // MEM/VEC slope: MBW/VOS = 850/280 ≈ 3.04.
        assert!((bord.mem_vec_slope() - 3.036).abs() < 0.01);
    }

    #[test]
    fn most_kernels_are_vec_bound_on_hbm() {
        // §4.2: "the vast majority of kernels are VEC-bound" on HBM SPR.
        let bord = Bord::new(RoofSurface::for_cpu(&MachineConfig::spr_hbm()));
        let frac = bord.vec_bound_fraction(&software_signatures());
        assert!(frac >= 0.75, "VEC-bound fraction {frac}");
    }

    #[test]
    fn most_kernels_are_mem_bound_on_ddr() {
        // §4.2/Fig. 5b: on DDR all kernels except Q8 at <=20 % density are in
        // or near the MEM region.
        let bord = Bord::new(RoofSurface::for_cpu(&MachineConfig::spr_ddr()));
        let sigs = software_signatures();
        let frac = bord.vec_bound_fraction(&sigs);
        assert!(frac <= 0.4, "VEC-bound fraction on DDR {frac}");
        // Specifically Q8_5% stays VEC-bound even on DDR.
        let q8_5 = sigs
            .iter()
            .find(|s| s.label == "Q8_5%")
            .expect("Q8_5% present");
        assert_eq!(bord.classify(q8_5), Region::Vector);
    }

    #[test]
    fn mtx_region_hidden_on_ddr_for_plotted_range() {
        // Fig. 5b: the MTX region is not visible for the plotted AIX_M range
        // on DDR (its boundary moves right as MBW shrinks).
        let hbm = Bord::new(RoofSurface::for_cpu(&MachineConfig::spr_hbm()));
        let ddr = Bord::new(RoofSurface::for_cpu(&MachineConfig::spr_ddr()));
        let plotted_max = 0.0125; // the paper's BORD x-range
        assert!(hbm.mtx_region_visible(plotted_max));
        assert!(!ddr.mtx_region_visible(plotted_max));
    }

    #[test]
    fn quadrupling_vos_shrinks_but_does_not_empty_vec_region() {
        // Fig. 6: 4x VOS still leaves some kernels VEC-bound.
        let machine = MachineConfig::spr_hbm().with_vector_scaling(4);
        let bord = Bord::new(RoofSurface::for_cpu(&machine));
        let sigs = software_signatures();
        let frac = bord.vec_bound_fraction(&sigs);
        let base =
            Bord::new(RoofSurface::for_cpu(&MachineConfig::spr_hbm())).vec_bound_fraction(&sigs);
        assert!(frac < base, "4x VOS must reduce the VEC-bound fraction");
        assert!(frac > 0.0, "4x VOS is still not enough for all kernels");
    }

    #[test]
    fn place_reports_coordinates_and_region() {
        let bord = Bord::new(RoofSurface::for_cpu(&MachineConfig::spr_hbm()));
        let sig = KernelSignature::from_scheme_and_vops(&CompressionScheme::mxfp4(), 192.0);
        let p = bord.place(&sig);
        assert_eq!(p.label, "Q4");
        assert!((p.aix_m - 1.0 / 272.0).abs() < 1e-9);
        assert_eq!(p.region, Region::Vector);
        let all = bord.place_all(&software_signatures());
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn ascii_rendering_contains_all_regions_and_points() {
        let bord = Bord::new(RoofSurface::for_cpu(&MachineConfig::spr_hbm()));
        let points = bord.place_all(&software_signatures());
        let plot = bord.render_ascii(&points, 60, 20);
        assert!(plot.contains('*'));
        assert!(plot.contains('v'));
        assert!(plot.contains('.'));
        assert!(plot.lines().count() >= 20);
    }
}
