//! The Roof-Surface analytical performance model (paper §4 and §6.2).
//!
//! Compressed GeMMs on a CPU with an in-core matrix engine involve three
//! interacting resources: memory (streams compressed tiles), vector hardware
//! (decompresses tiles) and matrix hardware (multiplies tiles). The slowest
//! of the three bounds performance:
//!
//! ```text
//! TPS   = min( MBW · AIX_M ,  VOS · AIX_V ,  MOS )
//! FLOPS = 512 · N · TPS
//! ```
//!
//! where `AIX_M` (matrix ops per byte) and `AIX_V` (matrix ops per vector
//! op) are the kernel's signature, and `MBW`, `VOS`, `MOS` are machine
//! parameters. This crate provides:
//!
//! * [`MachineConfig`] — SPR-like machine descriptions (DDR5 / HBM variants),
//! * [`KernelSignature`] — the `(AIX_M, AIX_V)` pair of a kernel,
//! * [`RoofSurface`] — the 3D model, bound classification and surface
//!   sampling for Fig. 4a,
//! * [`Bord`] — the 2D Bounding Region Diagram projection of Fig. 5/6/16,
//! * [`Roofline`] — the traditional 2D roofline of Fig. 3 for comparison,
//! * [`bubbles`] — the binomial bubble model that turns a DECA `{W, L}`
//!   configuration into an `AIX_V` (§6.2),
//! * [`dse`] — the analytical design-space exploration over `{W, L}` (§9.2).
//!
//! # Example
//!
//! ```
//! use deca_roofsurface::{MachineConfig, RoofSurface, KernelSignature};
//! use deca_compress::CompressionScheme;
//!
//! let machine = MachineConfig::spr_hbm();
//! let surface = RoofSurface::for_cpu(&machine);
//! // The libxsmm BF8 5%-density kernel needs ~144 AVX ops per tile.
//! let sig = KernelSignature::from_scheme_and_vops(
//!     &CompressionScheme::bf8_sparse(0.05), 144.0);
//! let tflops = surface.flops(&sig, 4) / 1e12;
//! assert!(tflops > 3.0 && tflops < 5.0); // VEC-bound around 4 TFLOPS
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bord;
pub mod bubbles;
pub mod dse;
mod kernel;
mod machine;
mod roofline;
mod surface;

pub use bord::{Bord, BordPoint, Region};
pub use bubbles::DecaVopModel;
pub use dse::{DesignPoint, DesignSpaceExploration, DseOutcome};
pub use kernel::KernelSignature;
pub use machine::MachineConfig;
pub use roofline::{Roofline, RooflinePoint};
pub use surface::{BoundingFactor, RoofSurface, SurfaceSample};

/// FMAs performed by one TMUL tile operation per unit of batch size N
/// (§2.3: `512·N` FMAs per tile op).
pub const FLOPS_PER_TILE_OP_PER_N: f64 = 512.0;

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::CompressionScheme;

    /// Reproduces the Roof-Surface column (R-S) of Fig. 4b for the HBM SPR
    /// machine at N=4 using the documented software AVX op budgets
    /// (96 ops/tile for sparse Q16, 144 for sparse Q8, 80 for dense Q8,
    /// 192 for MXFP4). Values must land within 10 % of the paper's table.
    #[test]
    fn figure_4b_roof_surface_predictions() {
        let machine = MachineConfig::spr_hbm();
        let surface = RoofSurface::for_cpu(&machine);
        let n = 4;
        let cases: Vec<(CompressionScheme, f64, f64)> = vec![
            // (scheme, vops/tile, paper R-S TFLOPS)
            (CompressionScheme::mxfp4(), 192.0, 2.9),
            (CompressionScheme::bf8_dense(), 80.0, 3.3),
            (CompressionScheme::bf8_sparse(0.5), 144.0, 4.0),
            (CompressionScheme::bf8_sparse(0.3), 144.0, 4.0),
            (CompressionScheme::bf8_sparse(0.2), 144.0, 4.0),
            (CompressionScheme::bf8_sparse(0.1), 144.0, 4.0),
            (CompressionScheme::bf8_sparse(0.05), 144.0, 4.0),
            (CompressionScheme::bf16_sparse(0.5), 96.0, 3.0),
            (CompressionScheme::bf16_sparse(0.3), 96.0, 4.6),
            (CompressionScheme::bf16_sparse(0.2), 96.0, 5.7),
            (CompressionScheme::bf16_sparse(0.1), 96.0, 5.8),
            (CompressionScheme::bf16_sparse(0.05), 96.0, 5.8),
        ];
        for (scheme, vops, paper_tflops) in cases {
            let sig = KernelSignature::from_scheme_and_vops(&scheme, vops);
            let tflops = surface.flops(&sig, n) / 1e12;
            let rel = (tflops - paper_tflops).abs() / paper_tflops;
            assert!(
                rel < 0.10,
                "{scheme}: predicted {tflops:.2} TFLOPS, paper reports {paper_tflops}"
            );
        }
    }

    /// The roofline (R-L) column of Fig. 4b: the traditional model ignores
    /// the vector bound and therefore over-predicts VEC-bound kernels.
    #[test]
    fn figure_4b_roofline_predictions() {
        let machine = MachineConfig::spr_hbm();
        let roofline = Roofline::new(&machine);
        let n = 4;
        let cases: Vec<(CompressionScheme, f64)> = vec![
            (CompressionScheme::mxfp4(), 6.3),
            (CompressionScheme::bf8_dense(), 3.3),
            (CompressionScheme::bf8_sparse(0.5), 5.3),
            (CompressionScheme::bf8_sparse(0.3), 7.8),
            (CompressionScheme::bf8_sparse(0.2), 10.2),
            (CompressionScheme::bf8_sparse(0.1), 14.8),
            (CompressionScheme::bf8_sparse(0.05), 17.5),
            (CompressionScheme::bf16_sparse(0.5), 3.0),
            (CompressionScheme::bf16_sparse(0.3), 4.6),
            (CompressionScheme::bf16_sparse(0.2), 6.3),
            (CompressionScheme::bf16_sparse(0.1), 10.2),
            (CompressionScheme::bf16_sparse(0.05), 14.8),
        ];
        for (scheme, paper_tflops) in cases {
            let tflops = roofline.attainable_flops(scheme.flops_per_byte(n), n) / 1e12;
            let rel = (tflops - paper_tflops).abs() / paper_tflops;
            assert!(
                rel < 0.10,
                "{scheme}: roofline predicts {tflops:.2} TFLOPS, paper reports {paper_tflops}"
            );
        }
    }
}
