//! Machine descriptions (SPR-like server parameters, §8).

/// Parameters of a CPU server with in-core matrix engines, as used by both
/// the analytical models and (via `deca-sim`) the simulator configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MachineConfig {
    /// Human-readable name (e.g. "SPR-HBM").
    pub name: String,
    /// Core (and DECA PE) clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Number of cores (each with one TMUL and, optionally, one DECA PE).
    pub cores: usize,
    /// SIMD AVX units per core that can execute decompression vector ops.
    pub simd_units_per_core: usize,
    /// Achievable memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Cycles one TMUL tile operation occupies the matrix unit (§2.3: 16).
    pub tmul_cycles_per_op: u32,
    /// Loaded memory latency in nanoseconds (used by the simulator, not by
    /// the analytic model).
    pub memory_latency_ns: f64,
}

impl MachineConfig {
    /// The paper's HBM-equipped 56-core SPR configuration (§8): 2.5 GHz,
    /// 2 AVX-512 FMA ports per core, ~850 GB/s.
    #[must_use]
    pub fn spr_hbm() -> Self {
        MachineConfig {
            name: "SPR-HBM".to_string(),
            frequency_ghz: 2.5,
            cores: 56,
            simd_units_per_core: 2,
            memory_bandwidth_gbps: 850.0,
            tmul_cycles_per_op: 16,
            memory_latency_ns: 130.0,
        }
    }

    /// The paper's DDR5-based 56-core SPR configuration (§8): ~260 GB/s.
    #[must_use]
    pub fn spr_ddr() -> Self {
        MachineConfig {
            name: "SPR-DDR".to_string(),
            memory_bandwidth_gbps: 260.0,
            memory_latency_ns: 110.0,
            ..MachineConfig::spr_hbm()
        }
    }

    /// Returns a copy with a different number of active cores (memory
    /// bandwidth is unchanged — it is a socket-level resource).
    #[must_use]
    pub fn with_cores(&self, cores: usize) -> Self {
        MachineConfig {
            name: format!("{}-{}c", self.name, cores),
            cores,
            ..self.clone()
        }
    }

    /// Returns a copy with the per-core vector throughput scaled by
    /// `factor` (e.g. 4× more AVX units, Fig. 6 / Fig. 15).
    #[must_use]
    pub fn with_vector_scaling(&self, factor: usize) -> Self {
        MachineConfig {
            name: format!("{}-{}xVOS", self.name, factor),
            simd_units_per_core: self.simd_units_per_core * factor,
            ..self.clone()
        }
    }

    /// Core clock frequency in Hz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_ghz * 1e9
    }

    /// Memory bandwidth in bytes per second (`MBW`).
    #[must_use]
    pub fn memory_bandwidth_bytes_per_sec(&self) -> f64 {
        self.memory_bandwidth_gbps * 1e9
    }

    /// Matrix throughput `MOS` in tile operations per second:
    /// `f · cores / tmul_cycles_per_op` (§4.1).
    #[must_use]
    pub fn mos(&self) -> f64 {
        self.frequency_hz() * self.cores as f64 / f64::from(self.tmul_cycles_per_op)
    }

    /// CPU vector throughput `VOS` in vector operations per second:
    /// `f · cores · simd_units_per_core` (§4.1).
    #[must_use]
    pub fn cpu_vos(&self) -> f64 {
        self.frequency_hz() * self.cores as f64 * self.simd_units_per_core as f64
    }

    /// DECA vector throughput: one vOp per cycle per PE, one PE per core
    /// (§6.2): `f · cores`.
    #[must_use]
    pub fn deca_vos(&self) -> f64 {
        self.frequency_hz() * self.cores as f64
    }

    /// Peak GeMM FLOPS (FMAs/s) for batch size `n`, saturating at the
    /// TMUL's N=16 limit (§2.3).
    #[must_use]
    pub fn peak_flops(&self, n: usize) -> f64 {
        crate::FLOPS_PER_TILE_OP_PER_N * effective_batch(n) as f64 * self.mos()
    }
}

/// The TMUL performs `512·N` FMAs per tile op but saturates at N=16 because
/// an activation tile holds at most 16 rows (§2.3).
#[must_use]
pub(crate) fn effective_batch(n: usize) -> usize {
    n.min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spr_hbm_derived_rates_match_paper() {
        let m = MachineConfig::spr_hbm();
        // MOS = 2.5 GHz * 56 / 16 = 8.75e9 tile ops/s.
        assert!((m.mos() - 8.75e9).abs() < 1e6);
        // CPU VOS = 2.5 GHz * 56 * 2 = 280e9 vops/s.
        assert!((m.cpu_vos() - 280e9).abs() < 1e6);
        // DECA VOS = 2.5 GHz * 56 = 140e9 vops/s.
        assert!((m.deca_vos() - 140e9).abs() < 1e6);
        // Peak FLOPS at N=1: 512 * 8.75e9 = 4.48 TFLOPS.
        assert!((m.peak_flops(1) - 4.48e12).abs() < 1e10);
        // Peak saturates at N=16.
        assert_eq!(m.peak_flops(16), m.peak_flops(64));
        assert!((m.peak_flops(16) - 71.68e12).abs() < 1e10);
    }

    #[test]
    fn ddr_variant_differs_only_in_memory() {
        let hbm = MachineConfig::spr_hbm();
        let ddr = MachineConfig::spr_ddr();
        assert_eq!(ddr.cores, hbm.cores);
        assert_eq!(ddr.mos(), hbm.mos());
        assert!(ddr.memory_bandwidth_gbps < hbm.memory_bandwidth_gbps);
        assert!((ddr.memory_bandwidth_bytes_per_sec() - 260e9).abs() < 1.0);
    }

    #[test]
    fn with_cores_scales_compute_not_memory() {
        let m = MachineConfig::spr_hbm().with_cores(16);
        assert_eq!(m.cores, 16);
        assert!((m.mos() - 2.5e9).abs() < 1e6);
        assert_eq!(m.memory_bandwidth_gbps, 850.0);
        assert!(m.name.contains("16c"));
    }

    #[test]
    fn vector_scaling_multiplies_vos() {
        let base = MachineConfig::spr_hbm();
        let scaled = base.with_vector_scaling(4);
        assert!((scaled.cpu_vos() - 4.0 * base.cpu_vos()).abs() < 1.0);
        assert_eq!(scaled.mos(), base.mos());
    }

    #[test]
    fn effective_batch_saturates_at_16() {
        assert_eq!(effective_batch(1), 1);
        assert_eq!(effective_batch(16), 16);
        assert_eq!(effective_batch(17), 16);
    }
}
