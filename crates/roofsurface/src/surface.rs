//! The 3D Roof-Surface model (§4.1, Fig. 4a).

use crate::{machine::effective_batch, KernelSignature, MachineConfig};

/// Which of the three rates bounds a kernel's performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BoundingFactor {
    /// Memory bandwidth (`MBW · AIX_M` is the minimum).
    Memory,
    /// Vector/decompression throughput (`VOS · AIX_V` is the minimum).
    Vector,
    /// Matrix throughput (`MOS` is the minimum).
    Matrix,
}

impl std::fmt::Display for BoundingFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BoundingFactor::Memory => "MEM",
            BoundingFactor::Vector => "VEC",
            BoundingFactor::Matrix => "MTX",
        };
        write!(f, "{s}")
    }
}

/// One sample of the roof surface, for 3D plotting.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SurfaceSample {
    /// matriX-to-Memory arithmetic intensity (x axis).
    pub aix_m: f64,
    /// matriX-to-Vector arithmetic intensity (y axis).
    pub aix_v: f64,
    /// Attainable FLOPS at this point (z axis).
    pub flops: f64,
    /// Which sub-surface this sample belongs to.
    pub bound: BoundingFactor,
}

/// The Roof-Surface model: `TPS = min(MBW·AIX_M, VOS·AIX_V, MOS)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RoofSurface {
    /// Memory bandwidth in bytes/s.
    mbw: f64,
    /// Vector throughput in vOps/s.
    vos: f64,
    /// Matrix throughput in tile ops/s.
    mos: f64,
}

impl RoofSurface {
    /// Builds a Roof-Surface from explicit machine rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is not strictly positive.
    #[must_use]
    pub fn new(mbw: f64, vos: f64, mos: f64) -> Self {
        assert!(
            mbw > 0.0 && vos > 0.0 && mos > 0.0,
            "machine rates must be positive"
        );
        RoofSurface { mbw, vos, mos }
    }

    /// The Roof-Surface of a machine whose decompression runs on the CPU's
    /// AVX SIMD units (the software/libxsmm configuration).
    #[must_use]
    pub fn for_cpu(machine: &MachineConfig) -> Self {
        RoofSurface::new(
            machine.memory_bandwidth_bytes_per_sec(),
            machine.cpu_vos(),
            machine.mos(),
        )
    }

    /// The Roof-Surface of a machine whose decompression runs on per-core
    /// DECA PEs (one vOp per cycle per core).
    #[must_use]
    pub fn for_deca(machine: &MachineConfig) -> Self {
        RoofSurface::new(
            machine.memory_bandwidth_bytes_per_sec(),
            machine.deca_vos(),
            machine.mos(),
        )
    }

    /// Memory bandwidth (bytes/s).
    #[must_use]
    pub fn mbw(&self) -> f64 {
        self.mbw
    }

    /// Vector throughput (vOps/s).
    #[must_use]
    pub fn vos(&self) -> f64 {
        self.vos
    }

    /// Matrix throughput (tile ops/s).
    #[must_use]
    pub fn mos(&self) -> f64 {
        self.mos
    }

    /// The rate at which memory can supply compressed tiles for this kernel
    /// (tiles/s).
    #[must_use]
    pub fn memory_rate(&self, sig: &KernelSignature) -> f64 {
        self.mbw * sig.aix_m
    }

    /// The rate at which the vector hardware can decompress tiles (tiles/s).
    #[must_use]
    pub fn vector_rate(&self, sig: &KernelSignature) -> f64 {
        self.vos * sig.aix_v
    }

    /// The rate at which the matrix hardware can multiply tiles (tiles/s).
    #[must_use]
    pub fn matrix_rate(&self) -> f64 {
        self.mos
    }

    /// Tiles per second attainable by this kernel — the Roof-Surface
    /// equation (Eq. 1).
    #[must_use]
    pub fn tiles_per_second(&self, sig: &KernelSignature) -> f64 {
        self.memory_rate(sig)
            .min(self.vector_rate(sig))
            .min(self.matrix_rate())
    }

    /// Attainable FLOPS for batch size `n` (Eq. 2).
    #[must_use]
    pub fn flops(&self, sig: &KernelSignature, n: usize) -> f64 {
        crate::FLOPS_PER_TILE_OP_PER_N * effective_batch(n) as f64 * self.tiles_per_second(sig)
    }

    /// Which factor bounds this kernel. Ties are resolved in the order
    /// Memory, Vector, Matrix (a tie means the kernel sits exactly on a
    /// region boundary).
    #[must_use]
    pub fn bounding_factor(&self, sig: &KernelSignature) -> BoundingFactor {
        let mem = self.memory_rate(sig);
        let vec = self.vector_rate(sig);
        let mtx = self.matrix_rate();
        if mem <= vec && mem <= mtx {
            BoundingFactor::Memory
        } else if vec <= mem && vec <= mtx {
            BoundingFactor::Vector
        } else {
            BoundingFactor::Matrix
        }
    }

    /// How much the vector throughput would need to scale (multiplicatively)
    /// for this kernel to stop being vector-bound. Returns 1.0 if it is not
    /// vector-bound.
    #[must_use]
    pub fn required_vos_scaling(&self, sig: &KernelSignature) -> f64 {
        let vec = self.vector_rate(sig);
        let other = self.memory_rate(sig).min(self.matrix_rate());
        (other / vec).max(1.0)
    }

    /// Samples the surface on a log-spaced `resolution × resolution` grid of
    /// `(AIX_M, AIX_V)` for the 3D plot of Fig. 4a.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are not positive and increasing or
    /// `resolution < 2`.
    #[must_use]
    pub fn sample_grid(
        &self,
        aix_m_range: (f64, f64),
        aix_v_range: (f64, f64),
        resolution: usize,
        n: usize,
    ) -> Vec<SurfaceSample> {
        assert!(resolution >= 2, "resolution must be at least 2");
        assert!(
            aix_m_range.0 > 0.0 && aix_m_range.1 > aix_m_range.0,
            "invalid AIX_M range"
        );
        assert!(
            aix_v_range.0 > 0.0 && aix_v_range.1 > aix_v_range.0,
            "invalid AIX_V range"
        );
        let mut samples = Vec::with_capacity(resolution * resolution);
        for i in 0..resolution {
            for j in 0..resolution {
                let tx = i as f64 / (resolution - 1) as f64;
                let ty = j as f64 / (resolution - 1) as f64;
                let aix_m = aix_m_range.0 * (aix_m_range.1 / aix_m_range.0).powf(tx);
                let aix_v = aix_v_range.0 * (aix_v_range.1 / aix_v_range.0).powf(ty);
                let sig = KernelSignature::new("grid", aix_m, aix_v);
                samples.push(SurfaceSample {
                    aix_m,
                    aix_v,
                    flops: self.flops(&sig, n),
                    bound: self.bounding_factor(&sig),
                });
            }
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::CompressionScheme;

    fn hbm_cpu() -> RoofSurface {
        RoofSurface::for_cpu(&MachineConfig::spr_hbm())
    }

    #[test]
    fn rates_match_machine_parameters() {
        let s = hbm_cpu();
        assert!((s.mbw() - 850e9).abs() < 1.0);
        assert!((s.vos() - 280e9).abs() < 1.0);
        assert!((s.mos() - 8.75e9).abs() < 1.0);
        assert_eq!(s.matrix_rate(), s.mos());
    }

    #[test]
    fn min_of_three_rates_selects_the_bound() {
        let s = hbm_cpu();
        // BF8 5 % with the software op budget (144 vops/tile) is VEC-bound on
        // HBM (§3.3).
        let sw = KernelSignature::from_scheme_and_vops(&CompressionScheme::bf8_sparse(0.05), 144.0);
        assert_eq!(s.bounding_factor(&sw), BoundingFactor::Vector);
        assert!(s.tiles_per_second(&sw) <= s.memory_rate(&sw));
        // Uncompressed BF16 needs no decompression work to speak of: give it
        // a tiny op count and it becomes memory-bound.
        let bf16 = KernelSignature::from_scheme_and_vops(&CompressionScheme::bf16_dense(), 16.0);
        assert_eq!(s.bounding_factor(&bf16), BoundingFactor::Memory);
        // An extremely compressed kernel with almost no vector work is
        // matrix-bound.
        let mtx = KernelSignature::new("tiny", 1.0, 1.0);
        assert_eq!(s.bounding_factor(&mtx), BoundingFactor::Matrix);
        assert_eq!(s.tiles_per_second(&mtx), s.mos());
    }

    #[test]
    fn flops_scale_with_batch_and_saturate() {
        let s = hbm_cpu();
        let sig = KernelSignature::new("x", 0.002, 0.01);
        assert!((s.flops(&sig, 4) - 4.0 * s.flops(&sig, 1)).abs() < 1e-3);
        assert_eq!(s.flops(&sig, 16), s.flops(&sig, 32));
    }

    #[test]
    fn roof_surface_never_exceeds_roofline() {
        // The Roof-Surface adds a constraint, so it can only lower the bound.
        let machine = MachineConfig::spr_hbm();
        let surface = RoofSurface::for_cpu(&machine);
        let roofline = crate::Roofline::new(&machine);
        for scheme in deca_compress::SchemeSet::paper_evaluation() {
            let sig = KernelSignature::from_scheme_and_vops(&scheme, 144.0);
            let rs = surface.flops(&sig, 4);
            let rl = roofline.attainable_flops(scheme.flops_per_byte(4), 4);
            assert!(rs <= rl + 1e-3, "{scheme}: RS {rs} > RL {rl}");
        }
    }

    #[test]
    fn deca_surface_has_lower_vos_but_unchanged_mem_and_mtx() {
        let machine = MachineConfig::spr_hbm();
        let cpu = RoofSurface::for_cpu(&machine);
        let deca = RoofSurface::for_deca(&machine);
        assert!(deca.vos() < cpu.vos());
        assert_eq!(deca.mbw(), cpu.mbw());
        assert_eq!(deca.mos(), cpu.mos());
    }

    #[test]
    fn required_vos_scaling_exceeds_4x_for_some_kernels() {
        // §4.2/§7: even 4x VOS is not enough to make all kernels escape the
        // VEC-bound region.
        let s = hbm_cpu();
        let worst =
            KernelSignature::from_scheme_and_vops(&CompressionScheme::bf8_sparse(0.05), 144.0);
        assert!(s.required_vos_scaling(&worst) > 4.0);
        let mem_bound =
            KernelSignature::from_scheme_and_vops(&CompressionScheme::bf16_sparse(0.5), 96.0);
        assert_eq!(s.required_vos_scaling(&mem_bound), 1.0);
    }

    #[test]
    fn sample_grid_covers_all_three_regions() {
        let s = hbm_cpu();
        let samples = s.sample_grid((0.001, 0.02), (0.001, 0.2), 32, 4);
        assert_eq!(samples.len(), 32 * 32);
        let mem = samples
            .iter()
            .filter(|p| p.bound == BoundingFactor::Memory)
            .count();
        let vec = samples
            .iter()
            .filter(|p| p.bound == BoundingFactor::Vector)
            .count();
        let mtx = samples
            .iter()
            .filter(|p| p.bound == BoundingFactor::Matrix)
            .count();
        assert!(
            mem > 0 && vec > 0 && mtx > 0,
            "mem={mem} vec={vec} mtx={mtx}"
        );
        // FLOPS on the surface never exceed the compute roof.
        let peak = crate::FLOPS_PER_TILE_OP_PER_N * 4.0 * s.mos();
        assert!(samples.iter().all(|p| p.flops <= peak + 1e-3));
    }

    #[test]
    fn bounding_factor_display() {
        assert_eq!(BoundingFactor::Memory.to_string(), "MEM");
        assert_eq!(BoundingFactor::Vector.to_string(), "VEC");
        assert_eq!(BoundingFactor::Matrix.to_string(), "MTX");
    }
}
