//! The DECA bubble model (§6.2).
//!
//! A DECA vOp produces `W` output elements per cycle, but its dequantization
//! stage can only look up `Lq` codes per cycle (`Lq = L` for 8-bit codes,
//! `2L` for 7-bit, `4L` for ≤6-bit). When a vOp's window contains more than
//! `Lq` nonzeros the vOp occupies the dequantization stage for multiple
//! cycles, injecting pipeline bubbles. With unstructured sparsity of density
//! `d`, the number of nonzeros in a `W`-element window follows a binomial
//! distribution `B(W, d)`, so the *expected* bubbles per vOp are:
//!
//! ```text
//! bpv = Σ_{k=0}^{W/Lq − 1}  k · [ F((k+1)·Lq; W, d) − F(k·Lq; W, d) ]
//! ```
//!
//! where `F` is the binomial CDF. The resulting matriX-to-Vector intensity is
//! `AIX_V = 1 / (#vOps · (1 + bpv))` with `#vOps = 512 / W`.

use deca_compress::{CompressionScheme, TILE_ELEMS};
use deca_numerics::lut::lookups_per_lut_per_cycle;

use crate::KernelSignature;

/// Binomial cumulative distribution function `P(X ≤ k)` for `X ~ B(n, p)`.
///
/// Computed with a numerically stable multiplicative recurrence — exact
/// enough for the `n ≤ 64` window sizes DECA uses.
#[must_use]
pub fn binomial_cdf(k: usize, n: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    if k >= n {
        return 1.0;
    }
    // The [0, 1] bounds are asserted above, so the boundary cases compare
    // exactly (no arithmetic has touched `p` yet).
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        // k < n here: with certain success, fewer than n successes never
        // happens.
        return 0.0;
    }
    let q = 1.0 - p;
    // pmf(0) = q^n, then pmf(i) = pmf(i-1) * (n-i+1)/i * p/q.
    let mut pmf = q.powi(i32::try_from(n).expect("window size fits in i32"));
    let mut cdf = pmf;
    for i in 1..=k {
        pmf *= (n - i + 1) as f64 / i as f64 * (p / q);
        cdf += pmf;
    }
    cdf.min(1.0)
}

/// The analytical model of a DECA PE's vOp pipeline for a `{W, L}` sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct DecaVopModel {
    /// Output elements produced per vOp (pipeline width).
    pub w: usize,
    /// Number of "big" 256-entry LUTs in the dequantization stage.
    pub l: usize,
}

impl DecaVopModel {
    /// The paper's chosen baseline sizing, `{W=32, L=8}` (§8).
    pub const BASELINE: DecaVopModel = DecaVopModel { w: 32, l: 8 };
    /// The under-provisioned sizing of Fig. 16, `{W=8, L=4}`.
    pub const UNDERPROVISIONED: DecaVopModel = DecaVopModel { w: 8, l: 4 };
    /// The over-provisioned sizing of Fig. 16, `{W=64, L=64}`.
    pub const OVERPROVISIONED: DecaVopModel = DecaVopModel { w: 64, l: 64 };

    /// Creates a sizing.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is zero or `w` does not divide the 512-element
    /// tile evenly.
    #[must_use]
    pub fn new(w: usize, l: usize) -> Self {
        assert!(w > 0 && l > 0, "W and L must be positive");
        assert!(
            TILE_ELEMS.is_multiple_of(w),
            "W={w} must divide the {TILE_ELEMS}-element tile"
        );
        DecaVopModel { w, l }
    }

    /// vOps needed per tile: `512 / W`.
    #[must_use]
    pub fn vops_per_tile(&self) -> usize {
        TILE_ELEMS / self.w
    }

    /// Maximum elements the dequantization stage can handle per cycle for a
    /// given code bit-width (`Lq`).
    #[must_use]
    pub fn lq(&self, bits: u8) -> usize {
        self.l * lookups_per_lut_per_cycle(bits)
    }

    /// Expected bubbles per vOp for a compression scheme, using the binomial
    /// model of §6.2 (deterministic `ceil(W/Lq) − 1` for dense schemes, 0
    /// for schemes that skip dequantization entirely).
    #[must_use]
    pub fn bubbles_per_vop(&self, scheme: &CompressionScheme) -> f64 {
        if !scheme.is_quantized() {
            // BF16 payloads bypass the LUT array: the dequantization stage is
            // skipped, so it cannot inject bubbles.
            return 0.0;
        }
        let lq = self.lq(scheme.format().bits());
        if lq >= self.w {
            return 0.0;
        }
        let d = scheme.density();
        if (d - 1.0).abs() < f64::EPSILON {
            return (self.w.div_ceil(lq) - 1) as f64;
        }
        let max_k = self.w.div_ceil(lq) - 1;
        let mut expected = 0.0;
        for k in 0..=max_k {
            let upper = binomial_cdf(((k + 1) * lq).min(self.w), self.w, d);
            let lower = binomial_cdf(k * lq, self.w, d);
            expected += k as f64 * (upper - lower);
        }
        expected
    }

    /// Expected cycles per vOp (`1 + bubbles`).
    #[must_use]
    pub fn cycles_per_vop(&self, scheme: &CompressionScheme) -> f64 {
        1.0 + self.bubbles_per_vop(scheme)
    }

    /// Expected cycles to decompress one full tile.
    #[must_use]
    pub fn cycles_per_tile(&self, scheme: &CompressionScheme) -> f64 {
        self.vops_per_tile() as f64 * self.cycles_per_vop(scheme)
    }

    /// The matriX-to-Vector intensity of this DECA sizing for a scheme:
    /// `1 / (#vOps · (1 + bpv))`.
    #[must_use]
    pub fn aix_v(&self, scheme: &CompressionScheme) -> f64 {
        1.0 / self.cycles_per_tile(scheme)
    }

    /// The full kernel signature of a scheme decompressed by this DECA
    /// sizing.
    #[must_use]
    pub fn signature(&self, scheme: &CompressionScheme) -> KernelSignature {
        KernelSignature::new(scheme.label(), scheme.aix_m(), self.aix_v(scheme))
    }

    /// A relative hardware-cost proxy in bytes of storage: the LUT array
    /// (`L` big LUTs × 256 BF16 entries) plus `W`-wide pipeline registers
    /// across the three stages plus the expansion crossbar's port cost.
    #[must_use]
    pub fn cost_proxy_bytes(&self) -> usize {
        let lut_bytes = self.l * 256 * 2;
        let pipeline_bytes = self.w * 2 * 3; // SD, DD, TOut registers
        let crossbar_cost = self.w * 58; // grows linearly with port count
        lut_bytes + pipeline_bytes + crossbar_cost
    }
}

impl std::fmt::Display for DecaVopModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{W={}, L={}}}", self.w, self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_cdf_reference_values() {
        // B(4, 0.5): P(X<=2) = (1+4+6)/16 = 0.6875.
        assert!((binomial_cdf(2, 4, 0.5) - 0.6875).abs() < 1e-12);
        assert_eq!(binomial_cdf(4, 4, 0.5), 1.0);
        assert_eq!(binomial_cdf(0, 10, 0.0), 1.0);
        assert_eq!(binomial_cdf(3, 10, 1.0), 0.0);
        assert_eq!(binomial_cdf(10, 10, 1.0), 1.0);
        // Monotone in k.
        for k in 0..32 {
            assert!(binomial_cdf(k, 32, 0.3) <= binomial_cdf(k + 1, 32, 0.3) + 1e-15);
        }
    }

    #[test]
    fn dense_8bit_bubbles_are_deterministic() {
        // §6.1: a dense 8-bit scheme always needs W/L cycles in the dequant
        // stage, i.e. W/L − 1 bubbles.
        let model = DecaVopModel::BASELINE;
        let q8 = CompressionScheme::bf8_dense();
        assert_eq!(model.bubbles_per_vop(&q8), 3.0);
        assert_eq!(model.cycles_per_tile(&q8), 64.0);
    }

    #[test]
    fn mxfp4_has_no_bubbles_at_baseline() {
        // 4-bit codes allow 4 lookups per LUT per cycle: Lq = 32 = W.
        let model = DecaVopModel::BASELINE;
        let q4 = CompressionScheme::mxfp4();
        assert_eq!(model.lq(4), 32);
        assert_eq!(model.bubbles_per_vop(&q4), 0.0);
        assert_eq!(model.cycles_per_tile(&q4), 16.0);
    }

    #[test]
    fn bf16_schemes_skip_the_dequant_stage() {
        let model = DecaVopModel::UNDERPROVISIONED;
        let q16 = CompressionScheme::bf16_sparse(0.5);
        assert_eq!(model.bubbles_per_vop(&q16), 0.0);
    }

    #[test]
    fn sparser_schemes_have_fewer_bubbles() {
        // §6.1: "the probability that the Wnd of a vOp is larger than L
        // decreases with sparsity ... naturally achieving higher throughput".
        let model = DecaVopModel::BASELINE;
        let densities = [1.0, 0.5, 0.3, 0.2, 0.1, 0.05];
        let mut previous = f64::INFINITY;
        for d in densities {
            let scheme = if d < 1.0 {
                CompressionScheme::bf8_sparse(d)
            } else {
                CompressionScheme::bf8_dense()
            };
            let bpv = model.bubbles_per_vop(&scheme);
            assert!(
                bpv <= previous + 1e-12,
                "density {d}: bpv {bpv} > {previous}"
            );
            previous = bpv;
        }
        // At 5 % density bubbles are essentially gone.
        assert!(model.bubbles_per_vop(&CompressionScheme::bf8_sparse(0.05)) < 0.01);
    }

    #[test]
    fn expected_bubbles_match_direct_monte_carlo_expectation() {
        // Cross-check the closed-form expectation against the definition
        // E[ceil(X/Lq) - 1] computed by direct summation over the pmf.
        let model = DecaVopModel::new(32, 8);
        let scheme = CompressionScheme::bf8_sparse(0.5);
        let lq = model.lq(8);
        let w = model.w;
        let d = 0.5;
        let mut direct = 0.0;
        for x in 0..=w {
            let pmf = binomial_cdf(x, w, d)
                - if x == 0 {
                    0.0
                } else {
                    binomial_cdf(x - 1, w, d)
                };
            let cycles = if x == 0 { 1 } else { x.div_ceil(lq) };
            direct += pmf * (cycles - 1) as f64;
        }
        let model_bpv = model.bubbles_per_vop(&scheme);
        assert!(
            (model_bpv - direct).abs() < 1e-9,
            "model {model_bpv} direct {direct}"
        );
    }

    #[test]
    fn aix_v_improves_with_larger_sizing() {
        let q8_50 = CompressionScheme::bf8_sparse(0.5);
        let small = DecaVopModel::UNDERPROVISIONED.aix_v(&q8_50);
        let base = DecaVopModel::BASELINE.aix_v(&q8_50);
        let big = DecaVopModel::OVERPROVISIONED.aix_v(&q8_50);
        assert!(small < base && base < big);
    }

    #[test]
    fn signature_combines_scheme_bytes_and_deca_vops() {
        let model = DecaVopModel::BASELINE;
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let sig = model.signature(&scheme);
        assert_eq!(sig.label, "Q8_20%");
        assert!((sig.bytes_per_tile() - 166.4).abs() < 1e-9);
        assert!(sig.vops_per_tile() >= 16.0);
    }

    #[test]
    fn cost_proxy_orders_the_fig16_sizings() {
        let under = DecaVopModel::UNDERPROVISIONED.cost_proxy_bytes();
        let base = DecaVopModel::BASELINE.cost_proxy_bytes();
        let over = DecaVopModel::OVERPROVISIONED.cost_proxy_bytes();
        assert!(under < base && base < over);
        // §9.2: the best sizing has 8x fewer LUTs and half the W of the
        // overprovisioned one.
        assert_eq!(
            DecaVopModel::OVERPROVISIONED.l / DecaVopModel::BASELINE.l,
            8
        );
        assert_eq!(
            DecaVopModel::OVERPROVISIONED.w / DecaVopModel::BASELINE.w,
            2
        );
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn w_must_divide_tile() {
        let _ = DecaVopModel::new(48, 8);
    }
}
