//! Analytical design-space exploration over DECA's `{W, L}` sizing (§9.2).
//!
//! The paper dimensions DECA by picking the *smallest* `{W, L}` pair for
//! which the Roof-Surface model predicts that no evaluated kernel remains
//! vector-bound. This module reproduces that procedure.

use deca_compress::CompressionScheme;

use crate::{Bord, BoundingFactor, DecaVopModel, MachineConfig, RoofSurface};

/// A candidate DECA sizing together with its cost proxy.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DesignPoint {
    /// The `{W, L}` sizing.
    pub model: DecaVopModel,
    /// Relative hardware cost (bytes of storage-equivalent area).
    pub cost: usize,
}

/// Result of evaluating one design point against a kernel set.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DseOutcome {
    /// The evaluated sizing.
    pub point: DesignPoint,
    /// Kernels that remain vector-bound under this sizing.
    pub vec_bound_kernels: Vec<String>,
    /// Whether every kernel escaped the VEC region (within tolerance).
    pub all_escape_vec: bool,
    /// The minimum predicted TFLOPS across the kernel set (the worst kernel).
    pub min_tflops: f64,
    /// The geometric-mean predicted TFLOPS across the kernel set.
    pub geomean_tflops: f64,
}

/// The analytical DSE driver.
#[derive(Debug, Clone)]
pub struct DesignSpaceExploration {
    machine: MachineConfig,
    schemes: Vec<CompressionScheme>,
    batch: usize,
    /// A kernel counts as having escaped the VEC region if its vector rate
    /// is within this relative tolerance of the binding memory/matrix rate
    /// (avoids knife-edge classifications when VEC and MTX rates coincide).
    tolerance: f64,
}

impl DesignSpaceExploration {
    /// Creates a DSE over the given machine, kernel set and batch size.
    #[must_use]
    pub fn new(machine: MachineConfig, schemes: Vec<CompressionScheme>, batch: usize) -> Self {
        DesignSpaceExploration {
            machine,
            schemes,
            batch,
            tolerance: 0.02,
        }
    }

    /// Overrides the escape tolerance (default 2 %).
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The kernel set being evaluated.
    #[must_use]
    pub fn schemes(&self) -> &[CompressionScheme] {
        &self.schemes
    }

    /// Evaluates a single `{W, L}` candidate.
    #[must_use]
    pub fn evaluate(&self, model: DecaVopModel) -> DseOutcome {
        let surface = RoofSurface::for_deca(&self.machine);
        let mut vec_bound = Vec::new();
        let mut min_tflops = f64::INFINITY;
        let mut log_sum = 0.0;
        for scheme in &self.schemes {
            let sig = model.signature(scheme);
            let vec_rate = surface.vector_rate(&sig);
            let other = surface.memory_rate(&sig).min(surface.matrix_rate());
            let escapes = vec_rate >= other * (1.0 - self.tolerance);
            if !escapes {
                vec_bound.push(scheme.label());
            }
            let tflops = surface.flops(&sig, self.batch) / 1e12;
            min_tflops = min_tflops.min(tflops);
            log_sum += tflops.ln();
        }
        let geomean = (log_sum / self.schemes.len().max(1) as f64).exp();
        DseOutcome {
            point: DesignPoint {
                model,
                cost: model.cost_proxy_bytes(),
            },
            all_escape_vec: vec_bound.is_empty(),
            vec_bound_kernels: vec_bound,
            min_tflops,
            geomean_tflops: geomean,
        }
    }

    /// Evaluates a list of candidates.
    #[must_use]
    pub fn sweep(&self, candidates: &[DecaVopModel]) -> Vec<DseOutcome> {
        candidates.iter().map(|m| self.evaluate(*m)).collect()
    }

    /// The default candidate grid: `W ∈ {8, 16, 32, 64}` ×
    /// `L ∈ {4, 8, 16, 32, 64}`.
    #[must_use]
    pub fn default_grid() -> Vec<DecaVopModel> {
        let mut grid = Vec::new();
        for w in [8usize, 16, 32, 64] {
            for l in [4usize, 8, 16, 32, 64] {
                grid.push(DecaVopModel::new(w, l));
            }
        }
        grid
    }

    /// Picks the cheapest candidate (by cost proxy) for which every kernel
    /// escapes the VEC region, breaking cost ties by the smaller `W`.
    /// Returns `None` if no candidate qualifies.
    #[must_use]
    pub fn recommend(&self, candidates: &[DecaVopModel]) -> Option<DseOutcome> {
        self.sweep(candidates)
            .into_iter()
            .filter(|o| o.all_escape_vec)
            .min_by(|a, b| (a.point.cost, a.point.model.w).cmp(&(b.point.cost, b.point.model.w)))
    }

    /// The classification of every kernel on the BORD for one sizing — the
    /// data behind Fig. 16b.
    #[must_use]
    pub fn bord_regions(&self, model: DecaVopModel) -> Vec<(String, BoundingFactor)> {
        let bord = Bord::new(RoofSurface::for_deca(&self.machine));
        self.schemes
            .iter()
            .map(|s| (s.label(), bord.classify(&model.signature(s))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::SchemeSet;

    fn hbm_dse() -> DesignSpaceExploration {
        DesignSpaceExploration::new(MachineConfig::spr_hbm(), SchemeSet::paper_evaluation(), 4)
    }

    #[test]
    fn baseline_sizing_escapes_vec_for_all_kernels() {
        // §9.2: {W=32, L=8} is the smallest pair for which predicted
        // performance saturates.
        let outcome = hbm_dse().evaluate(DecaVopModel::BASELINE);
        assert!(
            outcome.all_escape_vec,
            "still VEC-bound: {:?}",
            outcome.vec_bound_kernels
        );
    }

    #[test]
    fn underprovisioned_sizing_fails() {
        let outcome = hbm_dse().evaluate(DecaVopModel::UNDERPROVISIONED);
        assert!(!outcome.all_escape_vec);
        assert!(!outcome.vec_bound_kernels.is_empty());
        // The failure includes high-compression kernels such as Q8_5%.
        assert!(outcome.vec_bound_kernels.iter().any(|k| k == "Q8_5%"));
    }

    #[test]
    fn overprovisioned_sizing_passes_but_costs_more() {
        let dse = hbm_dse();
        let best = dse.evaluate(DecaVopModel::BASELINE);
        let over = dse.evaluate(DecaVopModel::OVERPROVISIONED);
        assert!(over.all_escape_vec);
        assert!(over.point.cost > best.point.cost);
        // §9.2: the overprovisioned design is less than 3 % faster.
        assert!(over.geomean_tflops <= best.geomean_tflops * 1.03);
    }

    #[test]
    fn recommendation_is_the_papers_baseline() {
        let dse = hbm_dse();
        let pick = dse
            .recommend(&DesignSpaceExploration::default_grid())
            .expect("some design must qualify");
        assert_eq!(
            pick.point.model,
            DecaVopModel::BASELINE,
            "picked {}",
            pick.point.model
        );
    }

    #[test]
    fn smaller_candidates_in_the_grid_all_fail() {
        let dse = hbm_dse();
        let best_cost = DecaVopModel::BASELINE.cost_proxy_bytes();
        for outcome in dse.sweep(&DesignSpaceExploration::default_grid()) {
            if outcome.point.cost < best_cost {
                assert!(
                    !outcome.all_escape_vec,
                    "{} is cheaper than the baseline yet passes",
                    outcome.point.model
                );
            }
        }
    }

    #[test]
    fn bord_regions_move_out_of_vec_with_larger_sizing() {
        let dse = hbm_dse();
        let count_vec = |model| {
            dse.bord_regions(model)
                .into_iter()
                .filter(|(_, r)| *r == BoundingFactor::Vector)
                .count()
        };
        let under = count_vec(DecaVopModel::UNDERPROVISIONED);
        let base = count_vec(DecaVopModel::BASELINE);
        assert!(under > base);
    }

    #[test]
    fn min_and_geomean_are_consistent() {
        let outcome = hbm_dse().evaluate(DecaVopModel::BASELINE);
        assert!(outcome.min_tflops > 0.0);
        assert!(outcome.geomean_tflops >= outcome.min_tflops);
    }

    #[test]
    fn ddr_machine_needs_a_smaller_design() {
        // On DDR the memory roof is lower, so even a small DECA suffices for
        // more kernels than on HBM.
        let ddr =
            DesignSpaceExploration::new(MachineConfig::spr_ddr(), SchemeSet::paper_evaluation(), 4);
        let hbm = hbm_dse();
        let small = DecaVopModel::new(16, 8);
        let ddr_fail = ddr.evaluate(small).vec_bound_kernels.len();
        let hbm_fail = hbm.evaluate(small).vec_bound_kernels.len();
        assert!(ddr_fail <= hbm_fail);
    }
}
