//! Kernel signatures: the `(AIX_M, AIX_V)` pair.
//!
//! In the Roof-Surface model a kernel is fully characterized (for a fixed
//! machine) by two numbers: how many matrix operations it can execute per
//! byte loaded from memory (`AIX_M`) and per vector operation executed
//! (`AIX_V`), §4.1. Two kernels with the same signature have the same
//! projected performance.

use deca_compress::CompressionScheme;

/// The `(AIX_M, AIX_V)` signature of a compressed-GeMM kernel.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelSignature {
    /// Display label (usually the compression-scheme label, e.g. `Q8_20%`).
    pub label: String,
    /// matriX-to-Memory arithmetic intensity: matrix ops per byte.
    pub aix_m: f64,
    /// matriX-to-Vector arithmetic intensity: matrix ops per vector op.
    pub aix_v: f64,
}

impl KernelSignature {
    /// Creates a signature from raw intensities.
    ///
    /// # Panics
    ///
    /// Panics if either intensity is not strictly positive and finite.
    #[must_use]
    pub fn new(label: impl Into<String>, aix_m: f64, aix_v: f64) -> Self {
        assert!(
            aix_m > 0.0 && aix_m.is_finite() && aix_v > 0.0 && aix_v.is_finite(),
            "arithmetic intensities must be positive and finite"
        );
        KernelSignature {
            label: label.into(),
            aix_m,
            aix_v,
        }
    }

    /// Builds the signature of a kernel that decompresses tiles of `scheme`
    /// using `vops_per_tile` vector operations per weight tile.
    ///
    /// `AIX_M` comes from the scheme's byte accounting; `AIX_V` is simply
    /// `1 / vops_per_tile`.
    ///
    /// # Panics
    ///
    /// Panics if `vops_per_tile` is not strictly positive.
    #[must_use]
    pub fn from_scheme_and_vops(scheme: &CompressionScheme, vops_per_tile: f64) -> Self {
        assert!(vops_per_tile > 0.0, "vops_per_tile must be positive");
        KernelSignature {
            label: scheme.label(),
            aix_m: scheme.aix_m(),
            aix_v: 1.0 / vops_per_tile,
        }
    }

    /// Vector operations needed per tile (`1 / AIX_V`).
    #[must_use]
    pub fn vops_per_tile(&self) -> f64 {
        1.0 / self.aix_v
    }

    /// Bytes fetched from memory per tile (`1 / AIX_M`).
    #[must_use]
    pub fn bytes_per_tile(&self) -> f64 {
        1.0 / self.aix_m
    }

    /// Returns a copy with a new label.
    #[must_use]
    pub fn relabeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl std::fmt::Display for KernelSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (AIX_M={:.5}, AIX_V={:.5})",
            self.label, self.aix_m, self.aix_v
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_from_scheme_uses_byte_accounting() {
        let scheme = CompressionScheme::bf8_sparse(0.2);
        let sig = KernelSignature::from_scheme_and_vops(&scheme, 144.0);
        assert_eq!(sig.label, "Q8_20%");
        assert!((sig.bytes_per_tile() - 166.4).abs() < 1e-9);
        assert!((sig.vops_per_tile() - 144.0).abs() < 1e-9);
    }

    #[test]
    fn reciprocal_relationships_hold() {
        let sig = KernelSignature::new("x", 0.004, 0.01);
        assert!((sig.bytes_per_tile() - 250.0).abs() < 1e-9);
        assert!((sig.vops_per_tile() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_intensity_is_rejected() {
        let _ = KernelSignature::new("bad", 0.0, 0.1);
    }

    #[test]
    fn display_and_relabel() {
        let sig = KernelSignature::new("Q4", 0.003, 0.05).relabeled("Q4-deca");
        assert_eq!(sig.label, "Q4-deca");
        assert!(sig.to_string().contains("Q4-deca"));
    }
}
