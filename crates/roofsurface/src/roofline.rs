//! The traditional 2D roofline model (Fig. 3).
//!
//! Attainable FLOPS are bounded by `min(MBW · AI, peak_flops)` where `AI` is
//! the FLOP-per-byte arithmetic intensity. The paper uses this model as the
//! baseline that *fails* to explain the observed degradation of compressed
//! GeMMs on HBM — the comparison against the Roof-Surface model is the point
//! of Fig. 3/4.

use crate::{machine::effective_batch, MachineConfig};

/// A traditional roofline for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Roofline {
    memory_bandwidth: f64,
    mos: f64,
}

/// One kernel plotted on the roofline: its arithmetic intensity, its optimal
/// (roofline) performance and, when available, an observed performance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RooflinePoint {
    /// Kernel label.
    pub label: String,
    /// FLOP-per-byte arithmetic intensity.
    pub arithmetic_intensity: f64,
    /// Roofline-optimal FLOPS at this intensity.
    pub optimal_flops: f64,
    /// Observed FLOPS (e.g. from simulation), if any.
    pub observed_flops: Option<f64>,
}

impl RooflinePoint {
    /// Ratio `optimal / observed`; `None` when there is no observation.
    #[must_use]
    pub fn optimality_gap(&self) -> Option<f64> {
        self.observed_flops.map(|o| self.optimal_flops / o)
    }
}

impl Roofline {
    /// Builds the roofline of a machine.
    #[must_use]
    pub fn new(machine: &MachineConfig) -> Self {
        Roofline {
            memory_bandwidth: machine.memory_bandwidth_bytes_per_sec(),
            mos: machine.mos(),
        }
    }

    /// Peak compute FLOPS for batch size `n` (the flat roof).
    #[must_use]
    pub fn peak_flops(&self, n: usize) -> f64 {
        crate::FLOPS_PER_TILE_OP_PER_N * effective_batch(n) as f64 * self.mos
    }

    /// Attainable FLOPS at arithmetic intensity `ai` (FLOPs per byte) and
    /// batch size `n`.
    #[must_use]
    pub fn attainable_flops(&self, ai: f64, n: usize) -> f64 {
        (self.memory_bandwidth * ai).min(self.peak_flops(n))
    }

    /// The arithmetic intensity at which the kernel transitions from
    /// memory-bound to compute-bound (the roofline "ridge point").
    #[must_use]
    pub fn ridge_point(&self, n: usize) -> f64 {
        self.peak_flops(n) / self.memory_bandwidth
    }

    /// True if a kernel with intensity `ai` is memory-bandwidth bound.
    #[must_use]
    pub fn is_memory_bound(&self, ai: f64, n: usize) -> bool {
        ai < self.ridge_point(n)
    }

    /// Builds a plotted point for a kernel.
    #[must_use]
    pub fn point(
        &self,
        label: impl Into<String>,
        ai: f64,
        n: usize,
        observed_flops: Option<f64>,
    ) -> RooflinePoint {
        RooflinePoint {
            label: label.into(),
            arithmetic_intensity: ai,
            optimal_flops: self.attainable_flops(ai, n),
            observed_flops,
        }
    }

    /// Samples the roofline curve over a range of arithmetic intensities
    /// (log-spaced), for plotting.
    #[must_use]
    pub fn curve(&self, ai_min: f64, ai_max: f64, samples: usize, n: usize) -> Vec<(f64, f64)> {
        assert!(samples >= 2 && ai_min > 0.0 && ai_max > ai_min);
        let log_min = ai_min.ln();
        let log_max = ai_max.ln();
        (0..samples)
            .map(|i| {
                let t = i as f64 / (samples - 1) as f64;
                let ai = (log_min + t * (log_max - log_min)).exp();
                (ai, self.attainable_flops(ai, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deca_compress::CompressionScheme;

    #[test]
    fn uncompressed_bf16_is_memory_bound_on_both_machines() {
        let bf16 = CompressionScheme::bf16_dense();
        for machine in [MachineConfig::spr_hbm(), MachineConfig::spr_ddr()] {
            let roofline = Roofline::new(&machine);
            let ai = bf16.flops_per_byte(4);
            assert!(roofline.is_memory_bound(ai, 4), "{}", machine.name);
            // HBM: 850 GB/s / 1024 B per tile * 2048 FLOPs = 1.7 TFLOPS.
            let flops = roofline.attainable_flops(ai, 4);
            assert!(flops < roofline.peak_flops(4));
        }
    }

    #[test]
    fn hbm_bf16_baseline_throughput() {
        let roofline = Roofline::new(&MachineConfig::spr_hbm());
        let ai = CompressionScheme::bf16_dense().flops_per_byte(1);
        // 850e9/1024 tiles/s * 512 FLOPs = 0.425 TFLOPS at N=1.
        let flops = roofline.attainable_flops(ai, 1);
        assert!((flops - 0.425e12).abs() / 0.425e12 < 0.01);
    }

    #[test]
    fn high_compression_becomes_compute_bound() {
        let roofline = Roofline::new(&MachineConfig::spr_hbm());
        let q8_5 = CompressionScheme::bf8_sparse(0.05);
        let ai = q8_5.flops_per_byte(4);
        // 2048/89.6 = 22.9 FLOPs/byte > ridge point 17.92e12/850e9 = 21.1.
        assert!(!roofline.is_memory_bound(ai, 4));
        assert_eq!(roofline.attainable_flops(ai, 4), roofline.peak_flops(4));
    }

    #[test]
    fn ridge_point_moves_with_bandwidth() {
        let hbm = Roofline::new(&MachineConfig::spr_hbm());
        let ddr = Roofline::new(&MachineConfig::spr_ddr());
        assert!(ddr.ridge_point(4) > hbm.ridge_point(4));
    }

    #[test]
    fn curve_is_monotonic_nondecreasing() {
        let roofline = Roofline::new(&MachineConfig::spr_hbm());
        let curve = roofline.curve(0.1, 100.0, 64, 4);
        assert_eq!(curve.len(), 64);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-6);
        }
        // The last samples sit on the flat compute roof.
        assert_eq!(curve.last().expect("nonempty").1, roofline.peak_flops(4));
    }

    #[test]
    fn optimality_gap_reports_ratio() {
        let roofline = Roofline::new(&MachineConfig::spr_hbm());
        let p = roofline.point("Q8_5%", 22.9, 4, Some(3.6e12));
        let gap = p.optimality_gap().expect("observation present");
        assert!(gap > 4.0 && gap < 5.5, "gap {gap}"); // paper reports 4.94x
        let p2 = roofline.point("Q8", 4.0, 4, None);
        assert!(p2.optimality_gap().is_none());
    }
}
