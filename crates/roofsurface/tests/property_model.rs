//! Property-based tests of the Roof-Surface model and the bubble model.

use deca_compress::CompressionScheme;
use deca_roofsurface::{
    bubbles::binomial_cdf, Bord, DecaVopModel, KernelSignature, MachineConfig, RoofSurface,
};
use proptest::prelude::*;

fn arbitrary_signature() -> impl Strategy<Value = KernelSignature> {
    (1e-5f64..0.1, 1e-5f64..0.5)
        .prop_map(|(aix_m, aix_v)| KernelSignature::new("prop", aix_m, aix_v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Roof-Surface throughput is exactly the minimum of the three
    /// component rates, and the bounding factor always names a rate equal to
    /// that minimum.
    #[test]
    fn tps_is_the_minimum_rate(sig in arbitrary_signature()) {
        let surface = RoofSurface::for_cpu(&MachineConfig::spr_hbm());
        let tps = surface.tiles_per_second(&sig);
        let mem = surface.memory_rate(&sig);
        let vec = surface.vector_rate(&sig);
        let mtx = surface.matrix_rate();
        prop_assert!((tps - mem.min(vec).min(mtx)).abs() < 1e-6);
        let named = match surface.bounding_factor(&sig) {
            deca_roofsurface::BoundingFactor::Memory => mem,
            deca_roofsurface::BoundingFactor::Vector => vec,
            deca_roofsurface::BoundingFactor::Matrix => mtx,
        };
        prop_assert!((named - tps).abs() < 1e-6);
    }

    /// Performance is monotone: improving either arithmetic intensity never
    /// reduces the attainable FLOPS, and never exceeds the compute roof.
    #[test]
    fn flops_monotone_in_intensities(
        aix_m in 1e-5f64..0.05,
        aix_v in 1e-5f64..0.2,
        scale in 1.0f64..8.0,
        n in 1usize..=32,
    ) {
        let surface = RoofSurface::for_cpu(&MachineConfig::spr_hbm());
        let base = surface.flops(&KernelSignature::new("a", aix_m, aix_v), n);
        let better_m = surface.flops(&KernelSignature::new("b", aix_m * scale, aix_v), n);
        let better_v = surface.flops(&KernelSignature::new("c", aix_m, aix_v * scale), n);
        prop_assert!(better_m >= base - 1e-6);
        prop_assert!(better_v >= base - 1e-6);
        let peak = MachineConfig::spr_hbm().peak_flops(n);
        prop_assert!(base <= peak + 1e-6);
    }

    /// The Roof-Surface prediction never exceeds the traditional roofline for
    /// the same kernel (the surface only adds a constraint).
    #[test]
    fn roof_surface_below_roofline(density_pct in 5u32..=100, vops in 16.0f64..512.0, n in 1usize..=16) {
        let scheme = if density_pct == 100 {
            CompressionScheme::bf8_dense()
        } else {
            CompressionScheme::bf8_sparse(f64::from(density_pct) / 100.0)
        };
        let machine = MachineConfig::spr_hbm();
        let surface = RoofSurface::for_cpu(&machine);
        let roofline = deca_roofsurface::Roofline::new(&machine);
        let sig = KernelSignature::from_scheme_and_vops(&scheme, vops);
        let rs = surface.flops(&sig, n);
        let rl = roofline.attainable_flops(scheme.flops_per_byte(n), n);
        // Allow for floating-point association differences between the two
        // formulas (they multiply the same factors in a different order).
        prop_assert!(rs <= rl * (1.0 + 1e-9));
    }

    /// The binomial CDF is a proper CDF: within [0, 1] and monotone in k.
    #[test]
    fn binomial_cdf_is_a_cdf(n in 1usize..=64, p in 0.0f64..=1.0) {
        let mut previous = 0.0;
        for k in 0..=n {
            let value = binomial_cdf(k, n, p);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&value));
            prop_assert!(value + 1e-12 >= previous);
            previous = value;
        }
        prop_assert!((binomial_cdf(n, n, p) - 1.0).abs() < 1e-9);
    }

    /// Expected bubbles per vOp are bounded by the deterministic worst case
    /// and decrease (weakly) as density decreases.
    #[test]
    fn bubbles_bounded_and_monotone(w_exp in 0u32..=3, l_exp in 0u32..=3, density_pct in 1u32..=100) {
        let w = 8usize << w_exp; // 8, 16, 32, 64
        let l = 4usize << l_exp; // 4, 8, 16, 32
        let model = DecaVopModel::new(w, l);
        let density = f64::from(density_pct) / 100.0;
        let scheme = if density_pct == 100 {
            CompressionScheme::bf8_dense()
        } else {
            CompressionScheme::bf8_sparse(density)
        };
        let bpv = model.bubbles_per_vop(&scheme);
        let worst = (w.div_ceil(model.lq(8)) - 1) as f64;
        prop_assert!(bpv >= -1e-12 && bpv <= worst + 1e-12);
        // Lower density never increases bubbles.
        if density_pct > 1 {
            let sparser = CompressionScheme::bf8_sparse((f64::from(density_pct) - 1.0) / 100.0);
            prop_assert!(model.bubbles_per_vop(&sparser) <= bpv + 1e-9);
        }
        // More LUTs never increase bubbles.
        let bigger = DecaVopModel::new(w, l * 2);
        prop_assert!(bigger.bubbles_per_vop(&scheme) <= bpv + 1e-12);
    }

    /// BORD classification is consistent with the Roof-Surface bounding
    /// factor and with the analytic boundary lines.
    #[test]
    fn bord_classification_matches_boundaries(sig in arbitrary_signature()) {
        let surface = RoofSurface::for_cpu(&MachineConfig::spr_hbm());
        let bord = Bord::new(surface.clone());
        let region = bord.classify(&sig);
        prop_assert_eq!(region, surface.bounding_factor(&sig));
        match region {
            deca_roofsurface::BoundingFactor::Memory => {
                // Below (or on) the MEM/VEC line and left of the MEM/MTX line.
                prop_assert!(sig.aix_v >= bord.mem_vec_slope() * sig.aix_m - 1e-12
                    || sig.aix_m <= bord.mem_mtx_boundary() + 1e-12);
            }
            deca_roofsurface::BoundingFactor::Vector => {
                prop_assert!(sig.aix_v <= bord.vec_mtx_boundary() + 1e-12);
            }
            deca_roofsurface::BoundingFactor::Matrix => {
                prop_assert!(sig.aix_m >= bord.mem_mtx_boundary() - 1e-12);
                prop_assert!(sig.aix_v >= bord.vec_mtx_boundary() - 1e-12);
            }
        }
    }
}
