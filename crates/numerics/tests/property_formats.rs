//! Property-based tests for the numeric formats.

use deca_numerics::{mx::MxCodec, Bf16, DequantTable, Minifloat, QuantFormat};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// BF16 conversion never increases magnitude error beyond half a ULP
    /// (2^-8 relative) for normal values.
    #[test]
    fn bf16_roundtrip_error_bound(v in -1.0e30f32..1.0e30) {
        prop_assume!(v.is_finite() && v != 0.0 && v.abs() > 1.0e-30);
        let r = Bf16::from_f32(v).to_f32();
        let rel = ((r - v) / v).abs();
        prop_assert!(rel <= 2f32.powi(-8), "{} -> {} rel {}", v, r, rel);
    }

    /// BF16 conversion is idempotent.
    #[test]
    fn bf16_idempotent(bits in any::<u16>()) {
        let x = Bf16::from_bits(bits);
        prop_assume!(!x.is_nan());
        let y = Bf16::from_f32(x.to_f32());
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }

    /// Minifloat encode always returns the representable value nearest to
    /// the input (validated against exhaustive search).
    #[test]
    fn minifloat_encode_is_nearest(v in -70000.0f32..70000.0, exp_bits in 2u8..=5, man_bits in 0u8..=3) {
        prop_assume!(1 + exp_bits + man_bits <= 8);
        let fmt = Minifloat::new(exp_bits, man_bits).unwrap();
        let clamped = v.clamp(-fmt.max_value(), fmt.max_value());
        let encoded = fmt.decode(fmt.encode(v));
        let best = fmt
            .finite_codes()
            .map(|(val, _)| val)
            .min_by(|a, b| {
                (a - clamped).abs().partial_cmp(&(b - clamped).abs()).unwrap()
            })
            .unwrap();
        prop_assert_eq!((encoded - clamped).abs(), (best - clamped).abs(),
            "encode({}) = {} but nearest is {}", v, encoded, best);
    }

    /// Quantization through any minifloat is idempotent.
    #[test]
    fn minifloat_quantize_idempotent(v in -1000.0f32..1000.0, man_bits in 0u8..=2) {
        let fmt = Minifloat::new(4, man_bits).unwrap();
        let q = fmt.quantize_value(v);
        prop_assert_eq!(fmt.quantize_value(q), q);
    }

    /// The dequant LUT agrees with the codec for every format and code.
    #[test]
    fn lut_matches_codec(code in any::<u8>()) {
        for format in [QuantFormat::Bf8, QuantFormat::E4m3, QuantFormat::Fp4] {
            let lut = DequantTable::for_format(format);
            let mf = format.minifloat().unwrap();
            let native = 1u16 << mf.bits();
            let wrapped = (u16::from(code) % native) as u8;
            let direct = mf.decode(wrapped);
            let via = lut.lookup(code).to_f32();
            if direct.is_nan() {
                prop_assert!(via.is_nan());
            } else {
                prop_assert_eq!(via, direct);
            }
        }
    }

    /// MXFP4 group quantization keeps the absolute error of every element
    /// below a quarter of the group maximum and never flips a sign to the
    /// opposite nonzero sign.
    #[test]
    fn mx_error_bound(values in proptest::collection::vec(-100.0f32..100.0, 32)) {
        let mx = MxCodec::mxfp4();
        let groups = mx.quantize(&values);
        let back = mx.dequantize_all(&groups);
        let max_abs = values.iter().fold(0f32, |m, v| m.max(v.abs()));
        for (v, b) in values.iter().zip(&back) {
            prop_assert!((v - b).abs() <= 0.26 * max_abs + 1e-6,
                "{} -> {} (group max {})", v, b, max_abs);
            if *b != 0.0 {
                prop_assert!(v.signum() == b.signum(), "sign flip: {} -> {}", v, b);
            }
        }
    }

    /// Every finite code of every supported format decodes to a value that
    /// re-encodes to an equivalent code (value-level round trip).
    #[test]
    fn code_value_roundtrip(code in any::<u8>()) {
        for fmt in [Minifloat::bf8(), Minifloat::e4m3(), Minifloat::e2m1()] {
            let v = fmt.decode(code);
            prop_assume!(v.is_finite());
            let re = fmt.decode(fmt.encode(v));
            prop_assert_eq!(re, v);
        }
    }
}
