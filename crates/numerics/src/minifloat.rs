//! Generic ≤8-bit floating point codec ("minifloat").
//!
//! DECA dequantizes arbitrary quantized formats of at most 8 bits by looking
//! the code word up in a programmable 256-entry LUT. That flexibility is
//! mirrored here: a [`Minifloat`] describes an arbitrary 1-sign / E-exponent /
//! M-mantissa split and provides exact decode plus round-to-nearest encode.
//!
//! Encoding is implemented by nearest-value search over the (small) code
//! space, pre-sorted at construction time. This is exactly correct for every
//! geometry, including ones without IEEE semantics, and is fast enough for
//! offline compression of synthetic evaluation weights.

use crate::{Bf16, FormatError};

/// Rounding mode used when a value falls between two representable codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundingMode {
    /// Round to the nearest representable value; ties go to the code with an
    /// even integer index (the hardware-friendly default).
    #[default]
    NearestEven,
    /// Round toward zero (truncate).
    TowardZero,
}

/// A floating point format with 1 sign bit, `exp_bits` exponent bits and
/// `man_bits` mantissa bits, totalling at most 8 bits.
///
/// Subnormals are supported; the maximum exponent is treated as a *normal*
/// value range (no Inf/NaN codes) for formats of 4 bits or fewer — matching
/// OCP MX FP4 — and as Inf/NaN for 8-bit formats, matching E5M2/E4M3 usage in
/// ML stacks (E4M3 reserves only the all-ones mantissa for NaN).
///
/// ```
/// use deca_numerics::Minifloat;
/// let fp4 = Minifloat::e2m1();
/// assert_eq!(fp4.decode(fp4.encode(6.0)), 6.0);   // FP4 max normal
/// assert_eq!(fp4.decode(fp4.encode(100.0)), 6.0); // saturates
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Minifloat {
    exp_bits: u8,
    man_bits: u8,
    bias: i32,
    has_inf_nan: bool,
    /// (value, code) pairs sorted by value, excluding NaN codes, used for
    /// nearest-value encoding.
    sorted: Vec<(f32, u8)>,
}

impl Minifloat {
    /// Creates a new minifloat geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidGeometry`] when the total width is not
    /// in `2..=8` bits or there are no exponent bits.
    pub fn new(exp_bits: u8, man_bits: u8) -> Result<Self, FormatError> {
        let total = 1 + exp_bits + man_bits;
        if exp_bits == 0 || !(2..=8).contains(&total) {
            return Err(FormatError::InvalidGeometry { exp_bits, man_bits });
        }
        let bias = (1 << (exp_bits - 1)) - 1;
        // E5M2 follows IEEE-style Inf/NaN at the top exponent. E4M3 (ML
        // convention) and everything of <=6 bits use the whole top binade as
        // finite values, except E4M3 which reserves mantissa=all-ones as NaN.
        let has_inf_nan = exp_bits == 5 && man_bits == 2;
        let mut mf = Minifloat {
            exp_bits,
            man_bits,
            bias,
            has_inf_nan,
            sorted: Vec::new(),
        };
        let n_codes = 1u16 << total;
        let mut sorted: Vec<(f32, u8)> = (0..n_codes)
            .map(|c| (mf.decode_raw(c as u8), c as u8))
            .filter(|(v, _)| v.is_finite())
            .collect();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        mf.sorted = sorted;
        Ok(mf)
    }

    /// BF8: 8-bit brain floating point, E5M2 (the paper's "Q8").
    #[must_use]
    pub fn bf8() -> Self {
        Minifloat::new(5, 2).expect("E5M2 is a valid geometry")
    }

    /// E4M3, the higher-precision 8-bit float used by some ML stacks.
    #[must_use]
    pub fn e4m3() -> Self {
        Minifloat::new(4, 3).expect("E4M3 is a valid geometry")
    }

    /// E2M1: the 4-bit element format of MXFP4 (the paper's "Q4").
    #[must_use]
    pub fn e2m1() -> Self {
        Minifloat::new(2, 1).expect("E2M1 is a valid geometry")
    }

    /// Total storage bits (1 + exponent + mantissa).
    #[must_use]
    pub fn bits(&self) -> u8 {
        1 + self.exp_bits + self.man_bits
    }

    /// Number of exponent bits.
    #[must_use]
    pub fn exp_bits(&self) -> u8 {
        self.exp_bits
    }

    /// Number of mantissa bits.
    #[must_use]
    pub fn man_bits(&self) -> u8 {
        self.man_bits
    }

    /// Exponent bias.
    #[must_use]
    pub fn bias(&self) -> i32 {
        self.bias
    }

    /// The largest finite magnitude representable in this format.
    #[must_use]
    pub fn max_value(&self) -> f32 {
        self.sorted
            .last()
            .map(|(v, _)| *v)
            .expect("format has at least one finite code")
    }

    /// The smallest positive normal magnitude.
    #[must_use]
    pub fn min_normal(&self) -> f32 {
        2f32.powi(1 - self.bias)
    }

    /// The smallest positive subnormal magnitude (the format's absolute
    /// resolution): values below half of this flush to zero under
    /// round-to-nearest encoding.
    #[must_use]
    pub fn min_subnormal(&self) -> f32 {
        self.min_normal() * 2f32.powi(-i32::from(self.man_bits))
    }

    /// Decodes a code word to its `f32` value.
    ///
    /// Code bits above the format width are ignored (masked off), mirroring
    /// hardware LUT addressing where narrow codes index a sub-LUT.
    #[must_use]
    pub fn decode(&self, code: u8) -> f32 {
        let mask = if self.bits() >= 8 {
            0xFF
        } else {
            (1u16 << self.bits()) as u8 - 1
        };
        self.decode_raw(code & mask)
    }

    fn decode_raw(&self, code: u8) -> f32 {
        let total = self.bits();
        let sign = (code >> (total - 1)) & 1;
        let exp_mask = (1u32 << self.exp_bits) - 1;
        let exp = (u32::from(code) >> self.man_bits) & exp_mask;
        let man_mask = (1u32 << self.man_bits) - 1;
        let man = u32::from(code) & man_mask;
        let sign_f = if sign == 1 { -1.0f32 } else { 1.0f32 };
        let man_scale = f64::from(1u32 << self.man_bits);

        let magnitude = if exp == 0 {
            // Subnormal: (man / 2^mb) * 2^(1 - bias)
            (f64::from(man) / man_scale) * 2f64.powi(1 - self.bias)
        } else if exp == exp_mask && self.has_inf_nan {
            if man == 0 {
                f64::INFINITY
            } else {
                f64::NAN
            }
        } else if exp == exp_mask && self.exp_bits == 4 && self.man_bits == 3 && man == man_mask {
            // E4M3 ML convention: only S.1111.111 is NaN.
            f64::NAN
        } else {
            (1.0 + f64::from(man) / man_scale) * 2f64.powi(exp.cast_signed() - self.bias)
        };
        sign_f * magnitude as f32
    }

    /// Encodes an `f32` into the nearest representable code
    /// (round-to-nearest, ties-to-even-code), saturating at the format's
    /// maximum finite magnitude.
    #[must_use]
    pub fn encode(&self, value: f32) -> u8 {
        self.encode_with(value, RoundingMode::NearestEven)
    }

    /// Encodes with an explicit rounding mode.
    #[must_use]
    pub fn encode_with(&self, value: f32, mode: RoundingMode) -> u8 {
        if value.is_nan() {
            // Any NaN encoding; formats without NaN store the max code.
            return if self.has_inf_nan {
                // E5M2 NaN: exponent all ones, mantissa nonzero.
                let exp_all = ((1u16 << self.exp_bits) - 1) as u8;
                (exp_all << self.man_bits) | 1
            } else {
                self.sorted.last().expect("nonempty").1
            };
        }
        let v = value.clamp(-self.max_value(), self.max_value());
        // Binary search for insertion point in the sorted finite values.
        let idx = self.sorted.partition_point(|(cand, _)| *cand < v);
        let lower = idx.checked_sub(1).map(|i| self.sorted[i]);
        let upper = self.sorted.get(idx).copied();
        match (lower, upper) {
            (Some(lo), Some(hi)) => {
                let dl = (v - lo.0).abs();
                let dh = (hi.0 - v).abs();
                match mode {
                    RoundingMode::TowardZero => {
                        if v >= 0.0 {
                            lo.1
                        } else {
                            hi.1
                        }
                    }
                    RoundingMode::NearestEven => {
                        if dl < dh {
                            lo.1
                        } else if dh < dl {
                            hi.1
                        } else if lo.1 % 2 == 0 {
                            lo.1
                        } else {
                            hi.1
                        }
                    }
                }
            }
            (Some(lo), None) => lo.1,
            (None, Some(hi)) => hi.1,
            (None, None) => 0,
        }
    }

    /// Iterates over all finite `(value, code)` pairs in ascending value
    /// order. Useful for building dequantization LUT content.
    pub fn finite_codes(&self) -> impl Iterator<Item = (f32, u8)> + '_ {
        self.sorted.iter().copied()
    }

    /// Quantizes a value and returns the dequantized result, i.e. the value
    /// the rest of the pipeline will actually see.
    #[must_use]
    pub fn quantize_value(&self, value: f32) -> f32 {
        self.decode(self.encode(value))
    }

    /// Decodes a code directly to [`Bf16`], as DECA's LUT array stores BF16
    /// entries.
    #[must_use]
    pub fn decode_bf16(&self, code: u8) -> Bf16 {
        Bf16::from_f32(self.decode(code))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_geometries_are_rejected() {
        assert!(Minifloat::new(0, 3).is_err());
        assert!(Minifloat::new(6, 2).is_err()); // 9 bits
        assert!(Minifloat::new(5, 3).is_err()); // 9 bits
        assert!(Minifloat::new(1, 0).is_ok()); // 2-bit float is allowed
    }

    #[test]
    fn e5m2_basic_values() {
        let f = Minifloat::bf8();
        assert_eq!(f.bits(), 8);
        assert_eq!(f.bias(), 15);
        // 1.0 = exponent 15, mantissa 0 -> 0x3C
        assert_eq!(f.decode(0x3C), 1.0);
        assert_eq!(f.encode(1.0), 0x3C);
        // Max finite E5M2 value is 57344.
        assert_eq!(f.max_value(), 57344.0);
        assert_eq!(f.decode(f.encode(1e9)), 57344.0, "saturating encode");
    }

    #[test]
    fn e5m2_has_inf_and_nan_codes() {
        let f = Minifloat::bf8();
        // Exponent all ones, mantissa zero => +inf
        assert!(f.decode(0b0_11111_00).is_infinite());
        assert!(f.decode(0b0_11111_01).is_nan());
        assert!(f.decode(f.encode(f32::NAN)).is_nan());
    }

    #[test]
    fn e4m3_max_value_matches_ml_convention() {
        let f = Minifloat::e4m3();
        // ML E4M3: max finite = 448 (S.1111.110), S.1111.111 is NaN.
        assert_eq!(f.max_value(), 448.0);
        assert!(f.decode(0b0_1111_111).is_nan());
    }

    #[test]
    fn e2m1_value_set_matches_mx_spec() {
        let f = Minifloat::e2m1();
        // OCP MX FP4 (E2M1) represents {0, 0.5, 1, 1.5, 2, 3, 4, 6} and their
        // negatives.
        let mut values: Vec<f32> = f.finite_codes().map(|(v, _)| v).collect();
        values.dedup();
        let positives: Vec<f32> = values.iter().copied().filter(|v| *v > 0.0).collect();
        assert_eq!(positives, vec![0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]);
        assert_eq!(f.max_value(), 6.0);
    }

    #[test]
    fn subnormals_decode_correctly() {
        let f = Minifloat::bf8();
        // Smallest positive subnormal of E5M2: (1/4) * 2^(1-15) = 2^-16.
        let smallest = f.decode(0x01);
        assert_eq!(smallest, 2f32.powi(-16));
        assert!(smallest > 0.0);
    }

    #[test]
    fn encode_decode_roundtrip_is_idempotent() {
        for fmt in [Minifloat::bf8(), Minifloat::e4m3(), Minifloat::e2m1()] {
            for (v, _) in fmt.finite_codes() {
                let q = fmt.quantize_value(v);
                assert_eq!(q, v, "representable values survive quantization");
                // Quantization is idempotent.
                assert_eq!(fmt.quantize_value(q), q);
            }
        }
    }

    #[test]
    fn encode_picks_nearest_value() {
        let f = Minifloat::e2m1();
        assert_eq!(f.decode(f.encode(0.9)), 1.0);
        assert_eq!(f.decode(f.encode(2.4)), 2.0);
        assert_eq!(f.decode(f.encode(2.6)), 3.0);
        assert_eq!(f.decode(f.encode(-5.9)), -6.0);
    }

    #[test]
    fn toward_zero_rounding_truncates() {
        let f = Minifloat::e2m1();
        assert_eq!(f.decode(f.encode_with(2.9, RoundingMode::TowardZero)), 2.0);
        assert_eq!(
            f.decode(f.encode_with(-2.9, RoundingMode::TowardZero)),
            -2.0
        );
    }

    #[test]
    fn zero_encodes_to_zero() {
        for fmt in [Minifloat::bf8(), Minifloat::e4m3(), Minifloat::e2m1()] {
            assert_eq!(fmt.decode(fmt.encode(0.0)), 0.0);
            assert_eq!(fmt.decode(fmt.encode(-0.0)), 0.0);
        }
    }

    #[test]
    fn decode_bf16_matches_decode() {
        let f = Minifloat::bf8();
        for code in 0..=255u8 {
            let direct = f.decode(code);
            let via_bf16 = f.decode_bf16(code).to_f32();
            if direct.is_nan() {
                assert!(via_bf16.is_nan());
            } else {
                // BF16 has more precision than any 8-bit float, so the
                // conversion must be exact.
                assert_eq!(via_bf16, direct, "code {code:#x}");
            }
        }
    }

    #[test]
    fn narrow_codes_are_masked() {
        let f = Minifloat::e2m1();
        // Upper 4 bits must be ignored for a 4-bit format.
        assert_eq!(f.decode(0xF3), f.decode(0x03));
    }
}
