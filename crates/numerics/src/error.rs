//! Error type for format construction and codec misuse.

/// Errors produced when constructing or using a numeric format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The requested minifloat geometry does not fit in 8 bits or has no
    /// exponent bits.
    InvalidGeometry {
        /// Requested exponent bits.
        exp_bits: u8,
        /// Requested mantissa bits.
        man_bits: u8,
    },
    /// A code word was outside the representable range of the format.
    CodeOutOfRange {
        /// The offending code.
        code: u16,
        /// Total bits of the format.
        bits: u8,
    },
    /// A group size of zero (or otherwise unusable) was requested.
    InvalidGroupSize(usize),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::InvalidGeometry { exp_bits, man_bits } => write!(
                f,
                "invalid minifloat geometry: 1 sign + {exp_bits} exponent + {man_bits} mantissa bits must total 2..=8 with at least one exponent bit"
            ),
            FormatError::CodeOutOfRange { code, bits } => {
                write!(f, "code {code:#x} does not fit in {bits} bits")
            }
            FormatError::InvalidGroupSize(size) => {
                write!(f, "invalid quantization group size {size}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FormatError::InvalidGeometry {
            exp_bits: 7,
            man_bits: 5,
        };
        assert!(e.to_string().contains("exponent"));
        let e = FormatError::CodeOutOfRange { code: 300, bits: 8 };
        assert!(e.to_string().contains("8 bits"));
        let e = FormatError::InvalidGroupSize(0);
        assert!(e.to_string().contains('0'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FormatError>();
    }
}
