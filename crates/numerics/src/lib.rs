//! Low-bit numeric formats used by compressed LLM weight tiles.
//!
//! The DECA paper (MICRO 2025) evaluates weight matrices stored as BF16, BF8
//! (8-bit brain floating point) and MXFP4 (4-bit floating point with a shared
//! per-32-element scale). The accelerator itself is format-agnostic: it
//! dequantizes *any* format of 8 bits or fewer through a 256-entry lookup
//! table. This crate provides:
//!
//! * [`Bf16`] — the 16-bit brain floating point output format of the
//!   decompression pipeline,
//! * [`Minifloat`] — a generic ≤8-bit floating point codec covering E5M2
//!   ("BF8"), E4M3, E2M1 (the FP4 element type of MXFP4) and any custom
//!   sign/exponent/mantissa split,
//! * [`IntCodec`] — symmetric integer quantization (INT8/INT4),
//! * [`mx`] — Microscaling (MX) group quantization with a shared 8-bit
//!   power-of-two scale per group,
//! * [`DequantTable`] — the 256-entry dequantization LUT content that DECA's
//!   LUT array is programmed with.
//!
//! # Example
//!
//! ```
//! use deca_numerics::{Minifloat, Bf16};
//!
//! let bf8 = Minifloat::bf8();
//! let code = bf8.encode(1.5);
//! assert_eq!(bf8.decode(code), 1.5);
//!
//! let x = Bf16::from_f32(3.1415927);
//! assert!((x.to_f32() - 3.1415927).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
mod error;
mod intq;
pub mod lut;
mod minifloat;
pub mod mx;

pub use bf16::Bf16;
pub use error::FormatError;
pub use intq::IntCodec;
pub use lut::DequantTable;
pub use minifloat::{Minifloat, RoundingMode};

/// The quantized storage formats understood by the compression pipeline and
/// by DECA's dequantization stage.
///
/// Every variant occupies at most 8 bits per element, the maximum DECA
/// supports (§6.1 of the paper). The element bit-width determines how many
/// parallel lookups a single "big" LUT can serve per cycle (`L` for 8-bit,
/// `2L` for 7-bit, `4L` for ≤6-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum QuantFormat {
    /// Uncompressed 16-bit brain floating point (no dequantization needed).
    Bf16,
    /// 8-bit brain floating point, E5M2. The paper's "BF8" / "Q8".
    Bf8,
    /// 8-bit floating point, E4M3 (higher precision, smaller range).
    E4m3,
    /// 4-bit floating point element, E2M1, as used inside MXFP4.
    Fp4,
    /// Signed 8-bit integer with an external scale.
    Int8,
    /// Signed 4-bit integer with an external scale (AWQ-style).
    Int4,
    /// An arbitrary minifloat with the given exponent and mantissa widths.
    Custom {
        /// Number of exponent bits (1..=5).
        exp_bits: u8,
        /// Number of mantissa bits (0..=6).
        man_bits: u8,
    },
}

impl QuantFormat {
    /// Bits of storage per quantized element.
    #[must_use]
    pub fn bits(self) -> u8 {
        match self {
            QuantFormat::Bf16 => 16,
            QuantFormat::Bf8 | QuantFormat::E4m3 | QuantFormat::Int8 => 8,
            QuantFormat::Fp4 | QuantFormat::Int4 => 4,
            QuantFormat::Custom { exp_bits, man_bits } => 1 + exp_bits + man_bits,
        }
    }

    /// Whether elements of this format are floating point (vs integer) codes.
    #[must_use]
    pub fn is_float(self) -> bool {
        !matches!(self, QuantFormat::Int8 | QuantFormat::Int4)
    }

    /// Whether the format needs a per-group scale factor to be useful
    /// (MX-style group quantization).
    #[must_use]
    pub fn uses_group_scale(self) -> bool {
        matches!(
            self,
            QuantFormat::Fp4 | QuantFormat::Int4 | QuantFormat::Int8
        )
    }

    /// The minifloat codec for floating-point formats.
    ///
    /// Returns `None` for [`QuantFormat::Bf16`] (which is not re-encoded) and
    /// for the integer formats.
    #[must_use]
    pub fn minifloat(self) -> Option<Minifloat> {
        match self {
            QuantFormat::Bf8 => Some(Minifloat::bf8()),
            QuantFormat::E4m3 => Some(Minifloat::e4m3()),
            QuantFormat::Fp4 => Some(Minifloat::e2m1()),
            QuantFormat::Custom { exp_bits, man_bits } => Minifloat::new(exp_bits, man_bits).ok(),
            QuantFormat::Bf16 | QuantFormat::Int8 | QuantFormat::Int4 => None,
        }
    }

    /// A short human-readable name matching the paper's labels
    /// (`Q16`, `Q8`, `Q4`, ...).
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            QuantFormat::Bf16 => "Q16",
            QuantFormat::Bf8 => "Q8",
            QuantFormat::E4m3 => "E4M3",
            QuantFormat::Fp4 => "Q4",
            QuantFormat::Int8 => "I8",
            QuantFormat::Int4 => "I4",
            QuantFormat::Custom { .. } => "QX",
        }
    }
}

impl std::fmt::Display for QuantFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantFormat::Custom { exp_bits, man_bits } => {
                write!(f, "E{exp_bits}M{man_bits}")
            }
            other => write!(f, "{}", other.short_name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bit_widths() {
        assert_eq!(QuantFormat::Bf16.bits(), 16);
        assert_eq!(QuantFormat::Bf8.bits(), 8);
        assert_eq!(QuantFormat::E4m3.bits(), 8);
        assert_eq!(QuantFormat::Fp4.bits(), 4);
        assert_eq!(QuantFormat::Int4.bits(), 4);
        assert_eq!(
            QuantFormat::Custom {
                exp_bits: 3,
                man_bits: 2
            }
            .bits(),
            6
        );
    }

    #[test]
    fn format_short_names() {
        assert_eq!(QuantFormat::Bf16.short_name(), "Q16");
        assert_eq!(QuantFormat::Bf8.short_name(), "Q8");
        assert_eq!(QuantFormat::Fp4.short_name(), "Q4");
    }

    #[test]
    fn format_display_custom() {
        let f = QuantFormat::Custom {
            exp_bits: 3,
            man_bits: 2,
        };
        assert_eq!(f.to_string(), "E3M2");
        assert_eq!(QuantFormat::Bf8.to_string(), "Q8");
    }

    #[test]
    fn minifloat_available_for_float_formats() {
        assert!(QuantFormat::Bf8.minifloat().is_some());
        assert!(QuantFormat::E4m3.minifloat().is_some());
        assert!(QuantFormat::Fp4.minifloat().is_some());
        assert!(QuantFormat::Bf16.minifloat().is_none());
        assert!(QuantFormat::Int8.minifloat().is_none());
    }

    #[test]
    fn group_scale_usage() {
        assert!(QuantFormat::Fp4.uses_group_scale());
        assert!(QuantFormat::Int4.uses_group_scale());
        assert!(!QuantFormat::Bf8.uses_group_scale());
        assert!(!QuantFormat::Bf16.uses_group_scale());
    }
}
