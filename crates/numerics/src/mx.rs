//! Microscaling (MX) group quantization.
//!
//! MXFP4 stores every weight as a 4-bit E2M1 element plus one shared 8-bit
//! power-of-two scale (E8M0) for each group of 32 consecutive weights
//! (OCP MX specification, referenced by the paper). The decompression
//! pipeline dequantizes the element through the LUT and multiplies by the
//! group scale in the scaling stage.

use crate::{Bf16, FormatError, Minifloat, QuantFormat};

/// The MX default group size (weights per shared scale).
pub const MX_GROUP_SIZE: usize = 32;

/// An 8-bit shared power-of-two scale (E8M0): value is `2^(code - 127)`;
/// code 255 is reserved for NaN in the OCP spec and is not produced here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ScaleE8M0(u8);

impl ScaleE8M0 {
    /// Scale of 1.0 (code 127).
    pub const ONE: ScaleE8M0 = ScaleE8M0(127);

    /// Creates a scale from its raw 8-bit code.
    #[must_use]
    pub const fn from_code(code: u8) -> Self {
        ScaleE8M0(code)
    }

    /// The raw 8-bit code.
    #[must_use]
    pub const fn code(self) -> u8 {
        self.0
    }

    /// The scale value `2^(code-127)`.
    #[must_use]
    pub fn value(self) -> f32 {
        2f32.powi(i32::from(self.0) - 127)
    }

    /// The scale as BF16 (exactly representable: it is a power of two within
    /// BF16's exponent range).
    #[must_use]
    pub fn to_bf16(self) -> Bf16 {
        Bf16::from_f32(self.value())
    }

    /// Picks the scale for a group: `2^(floor(log2(max_abs)) - emax_elem)`,
    /// clamped to the representable exponent range, where `emax_elem` is the
    /// exponent of the element format's largest power of two.
    #[must_use]
    pub fn for_group(max_abs: f32, element_emax: i32) -> Self {
        if max_abs == 0.0 || !max_abs.is_finite() {
            return ScaleE8M0::ONE;
        }
        let shared_exp = max_abs.log2().floor() as i32 - element_emax;
        let code = (shared_exp + 127).clamp(0, 254);
        ScaleE8M0(code as u8)
    }
}

/// A group-quantized block: `group_size` element codes plus one shared scale.
#[derive(Debug, Clone, PartialEq)]
pub struct MxGroup {
    /// Quantized element codes (one per weight, zeros included).
    pub codes: Vec<u8>,
    /// Shared power-of-two scale.
    pub scale: ScaleE8M0,
}

/// Encoder/decoder for MX-style group quantization over any minifloat
/// element format.
#[derive(Debug, Clone)]
pub struct MxCodec {
    element: Minifloat,
    group_size: usize,
    element_emax: i32,
}

impl MxCodec {
    /// Creates an MX codec for the given element format and group size.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidGroupSize`] if `group_size` is zero and
    /// [`FormatError::InvalidGeometry`] if the format has no minifloat codec
    /// (BF16 or integer formats).
    pub fn new(element: QuantFormat, group_size: usize) -> Result<Self, FormatError> {
        if group_size == 0 {
            return Err(FormatError::InvalidGroupSize(group_size));
        }
        let mf = element.minifloat().ok_or(FormatError::InvalidGeometry {
            exp_bits: 0,
            man_bits: element.bits(),
        })?;
        // Largest power of two representable by the element format.
        let element_emax = mf.max_value().log2().floor() as i32;
        Ok(MxCodec {
            element: mf,
            group_size,
            element_emax,
        })
    }

    /// The standard MXFP4 codec: E2M1 elements, groups of 32.
    #[must_use]
    pub fn mxfp4() -> Self {
        MxCodec::new(QuantFormat::Fp4, MX_GROUP_SIZE).expect("MXFP4 is a valid MX configuration")
    }

    /// Weights per shared scale.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The element minifloat codec.
    #[must_use]
    pub fn element(&self) -> &Minifloat {
        &self.element
    }

    /// Quantizes one group of values (length ≤ `group_size`; a short tail
    /// group is allowed).
    #[must_use]
    pub fn quantize_group(&self, values: &[f32]) -> MxGroup {
        let max_abs = values.iter().fold(0f32, |m, v| m.max(v.abs()));
        let scale = ScaleE8M0::for_group(max_abs, self.element_emax);
        let s = scale.value();
        let codes = values.iter().map(|v| self.element.encode(v / s)).collect();
        MxGroup { codes, scale }
    }

    /// Dequantizes a single element code under a group scale, returning BF16
    /// exactly as DECA's scaling stage produces it.
    #[must_use]
    pub fn dequantize(&self, code: u8, scale: ScaleE8M0) -> Bf16 {
        let element = self.element.decode(code);
        Bf16::from_f32(element * scale.value())
    }

    /// Quantizes a full slice, splitting it into groups of `group_size`, and
    /// returns the per-group results in order.
    #[must_use]
    pub fn quantize(&self, values: &[f32]) -> Vec<MxGroup> {
        values
            .chunks(self.group_size)
            .map(|chunk| self.quantize_group(chunk))
            .collect()
    }

    /// Dequantizes a sequence of groups back to f32 values.
    #[must_use]
    pub fn dequantize_all(&self, groups: &[MxGroup]) -> Vec<f32> {
        groups
            .iter()
            .flat_map(|g| {
                g.codes
                    .iter()
                    .map(move |&c| self.dequantize(c, g.scale).to_f32())
            })
            .collect()
    }

    /// The worst-case relative quantization error of the element format
    /// (half a ULP at the top of a binade), used by tests to bound end-to-end
    /// error.
    #[must_use]
    pub fn relative_error_bound(&self) -> f32 {
        // One mantissa step relative error at the bottom of a binade is
        // 2^-man_bits; round-to-nearest halves it, plus scale granularity.
        2f32.powi(-(i32::from(self.element.man_bits()))) * 0.75
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_codes_and_values() {
        assert_eq!(ScaleE8M0::ONE.value(), 1.0);
        assert_eq!(ScaleE8M0::from_code(128).value(), 2.0);
        assert_eq!(ScaleE8M0::from_code(126).value(), 0.5);
        assert_eq!(ScaleE8M0::from_code(130).code(), 130);
        assert_eq!(ScaleE8M0::from_code(128).to_bf16().to_f32(), 2.0);
    }

    #[test]
    fn scale_for_group_targets_element_range() {
        // FP4 emax is 2 (largest power of two = 4). A group max of 48 should
        // give shared exp floor(log2(48)) - 2 = 5 - 2 = 3 -> scale 8, so
        // 48/8 = 6 lands exactly on FP4's max value.
        let s = ScaleE8M0::for_group(48.0, 2);
        assert_eq!(s.value(), 8.0);
        // Zero group falls back to scale 1.
        assert_eq!(ScaleE8M0::for_group(0.0, 2).value(), 1.0);
    }

    #[test]
    fn mxfp4_codec_parameters() {
        let mx = MxCodec::mxfp4();
        assert_eq!(mx.group_size(), 32);
        assert_eq!(mx.element().bits(), 4);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            MxCodec::new(QuantFormat::Fp4, 0),
            Err(FormatError::InvalidGroupSize(0))
        ));
        assert!(MxCodec::new(QuantFormat::Bf16, 32).is_err());
        assert!(MxCodec::new(QuantFormat::Int4, 32).is_err());
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let mx = MxCodec::mxfp4();
        // Values spanning several binades within one group.
        let values: Vec<f32> = (0..32).map(|i| ((i as f32) - 16.0) * 0.37 + 0.01).collect();
        let groups = mx.quantize(&values);
        assert_eq!(groups.len(), 1);
        let back = mx.dequantize_all(&groups);
        let max_abs = values.iter().fold(0f32, |m, v| m.max(v.abs()));
        for (v, b) in values.iter().zip(&back) {
            // MX error bound: relative to the group max because small values
            // in a group with a large max lose precision.
            let tol = max_abs * 0.26 + 1e-6;
            assert!((v - b).abs() <= tol, "{v} -> {b}");
        }
    }

    #[test]
    fn exact_values_survive_roundtrip() {
        let mx = MxCodec::mxfp4();
        // Powers of two and small multiples representable in FP4 after
        // scaling by the group scale.
        let values = vec![6.0f32, 4.0, 3.0, 2.0, 1.5, 1.0, 0.5, 0.0];
        let groups = mx.quantize(&values);
        let back = mx.dequantize_all(&groups);
        assert_eq!(values, back);
    }

    #[test]
    fn zeros_stay_zero() {
        let mx = MxCodec::mxfp4();
        let values = vec![0.0f32; 64];
        let back = mx.dequantize_all(&mx.quantize(&values));
        assert!(back.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn groups_are_split_correctly() {
        let mx = MxCodec::mxfp4();
        let values = vec![1.0f32; 80]; // 2 full groups + 16 tail
        let groups = mx.quantize(&values);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].codes.len(), 32);
        assert_eq!(groups[2].codes.len(), 16);
        assert_eq!(mx.dequantize_all(&groups).len(), 80);
    }

    #[test]
    fn per_group_scales_are_independent() {
        let mx = MxCodec::mxfp4();
        let mut values = vec![0.001f32; 32];
        values.extend(vec![1000.0f32; 32]);
        let groups = mx.quantize(&values);
        assert!(groups[0].scale.value() < groups[1].scale.value());
        let back = mx.dequantize_all(&groups);
        // The small group must not be flattened to zero by the large group's
        // scale.
        assert!(back[..32].iter().all(|v| *v > 0.0));
    }

    #[test]
    fn bf8_groups_also_work() {
        let mx = MxCodec::new(QuantFormat::Bf8, 32).expect("valid");
        let values: Vec<f32> = (0..32).map(|i| i as f32 * 0.25).collect();
        let back = mx.dequantize_all(&mx.quantize(&values));
        for (v, b) in values.iter().zip(&back) {
            // E5M2 has 2 mantissa bits: worst-case round-to-nearest relative
            // error is 2^-3 = 12.5 % (half a ULP at the bottom of a binade).
            assert!((v - b).abs() <= 0.126 * v.abs().max(0.1), "{v} -> {b}");
        }
    }
}
