//! 16-bit brain floating point (BF16).
//!
//! BF16 keeps the 8-bit exponent of IEEE-754 binary32 and truncates the
//! mantissa to 7 bits, so conversion to/from `f32` is a simple bit shift with
//! round-to-nearest-even on the dropped bits. BF16 is the *output* format of
//! the DECA decompression pipeline: every decompressed tile holds 512 BF16
//! elements ready for the TMUL.

/// A 16-bit brain floating point number.
///
/// ```
/// use deca_numerics::Bf16;
/// let x = Bf16::from_f32(0.15625);
/// assert_eq!(x.to_f32(), 0.15625); // exactly representable
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// The value 1.0.
    pub const ONE: Bf16 = Bf16(0x3F80);

    /// Creates a BF16 from its raw bit pattern.
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to BF16 with round-to-nearest-even.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Preserve a quiet NaN with the sign bit.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even: add 0x7FFF plus the LSB of the retained part.
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7FFF + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Converts this BF16 to an `f32` exactly (BF16 ⊂ f32).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// True if this value is a NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7F80) == 0x7F80 && (self.0 & 0x007F) != 0
    }

    /// True if the value is positive or negative zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.abs().0 == 0
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Self {
        Bf16(self.0 & 0x7FFF)
    }
}

/// Multiplies two BF16 values, rounding the result back to BF16.
///
/// This mirrors what DECA's scaling stage does when applying a group scale
/// factor to a dequantized element.
impl std::ops::Mul for Bf16 {
    type Output = Bf16;

    fn mul(self, other: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * other.to_f32())
    }
}

impl From<f32> for Bf16 {
    fn from(value: f32) -> Self {
        Bf16::from_f32(value)
    }
}

impl From<Bf16> for f32 {
    fn from(value: Bf16) -> Self {
        value.to_f32()
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_constants() {
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert!(Bf16::ZERO.is_zero());
        assert!(!Bf16::ONE.is_zero());
    }

    #[test]
    fn exact_roundtrip_for_representable_values() {
        for v in [0.0_f32, 1.0, -1.0, 0.5, 2.0, -3.5, 0.15625, 65280.0] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn rounding_is_nearest() {
        // 1.0 + 2^-8 is not representable; it must round to 1.0.
        let v = 1.0 + 2f32.powi(-9);
        assert_eq!(Bf16::from_f32(v).to_f32(), 1.0);
        // Halfway cases round to even mantissa.
        let one_ulp = 2f32.powi(-7);
        let halfway = 1.0 + one_ulp / 2.0;
        let rounded = Bf16::from_f32(halfway).to_f32();
        assert_eq!(rounded, 1.0, "ties-to-even keeps the even mantissa");
    }

    #[test]
    fn relative_error_is_bounded() {
        // BF16 has 8 bits of significand (1 implicit + 7 stored): relative
        // error of round-to-nearest is at most 2^-8.
        let mut v = 1.000001_f32;
        for _ in 0..200 {
            let r = Bf16::from_f32(v).to_f32();
            let rel = ((r - v) / v).abs();
            assert!(rel <= 2f32.powi(-8), "v={v} r={r} rel={rel}");
            v *= 1.37;
            if !v.is_finite() {
                break;
            }
        }
    }

    #[test]
    fn nan_is_preserved() {
        let nan = Bf16::from_f32(f32::NAN);
        assert!(nan.is_nan());
        assert!(nan.to_f32().is_nan());
    }

    #[test]
    fn negative_zero_is_zero() {
        let nz = Bf16::from_f32(-0.0);
        assert!(nz.is_zero());
    }

    #[test]
    fn infinity_roundtrip() {
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // Values above BF16 max (~3.39e38) round to infinity.
        let v = 3.4e38_f32;
        let r = Bf16::from_f32(v).to_f32();
        assert!(r.is_infinite() || r > 3.3e38);
    }

    #[test]
    fn mul_applies_scale() {
        let a = Bf16::from_f32(1.5);
        let s = Bf16::from_f32(4.0);
        assert_eq!((a * s).to_f32(), 6.0);
    }

    #[test]
    fn abs_clears_sign() {
        assert_eq!(Bf16::from_f32(-2.5).abs().to_f32(), 2.5);
    }
}
