//! Symmetric integer quantization (INT8 / INT4).
//!
//! Integer formats store a signed integer code and rely on an external scale
//! factor (per group or per tensor) for magnitude — this is how AWQ-style
//! INT4 schemes work, which the paper notes are performance-equivalent to
//! MXFP4 from DECA's point of view.

use crate::FormatError;

/// A symmetric signed-integer quantizer with `bits` bits per code.
///
/// Codes are two's-complement in the range `[-2^(bits-1)+1, 2^(bits-1)-1]`
/// (the most negative code is unused so the range is symmetric).
///
/// ```
/// use deca_numerics::IntCodec;
/// let int8 = IntCodec::int8();
/// let (codes, scale) = int8.quantize_group(&[0.5, -1.0, 0.25, 1.0]);
/// let back = int8.dequantize(codes[1], scale);
/// assert!((back - -1.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntCodec {
    bits: u8,
}

impl IntCodec {
    /// Creates an integer codec with the given bit width (2..=8).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidGeometry`] if `bits` is outside `2..=8`.
    pub fn new(bits: u8) -> Result<Self, FormatError> {
        if !(2..=8).contains(&bits) {
            return Err(FormatError::InvalidGeometry {
                exp_bits: 0,
                man_bits: bits,
            });
        }
        Ok(IntCodec { bits })
    }

    /// The standard INT8 codec.
    #[must_use]
    pub fn int8() -> Self {
        IntCodec { bits: 8 }
    }

    /// The standard INT4 codec.
    #[must_use]
    pub fn int4() -> Self {
        IntCodec { bits: 4 }
    }

    /// Bits per code.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Largest positive code value.
    #[must_use]
    pub fn max_code(self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }

    /// Quantizes a group of values with a single shared scale, returning the
    /// codes (sign-extended into `i8`) and the scale.
    ///
    /// The scale maps the group's maximum magnitude onto the maximum code.
    /// An all-zero group gets scale 1.0 so dequantization is well-defined.
    #[must_use]
    pub fn quantize_group(self, values: &[f32]) -> (Vec<i8>, f32) {
        let max_abs = values.iter().fold(0f32, |m, v| m.max(v.abs()));
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / self.max_code() as f32
        };
        let codes = values
            .iter()
            .map(|v| {
                let q = (v / scale).round();
                q.clamp(-(self.max_code() as f32), self.max_code() as f32) as i8
            })
            .collect();
        (codes, scale)
    }

    /// Dequantizes a single code with the given scale.
    #[must_use]
    pub fn dequantize(self, code: i8, scale: f32) -> f32 {
        f32::from(code) * scale
    }

    /// Encodes a code into its unsigned storage representation (the low
    /// `bits` bits of the two's-complement value), as it would be packed in a
    /// compressed tile.
    #[must_use]
    pub fn to_storage(self, code: i8) -> u8 {
        (code as u8) & (((1u16 << self.bits) - 1) as u8)
    }

    /// Decodes a storage byte back into a sign-extended code.
    #[must_use]
    pub fn from_storage(self, raw: u8) -> i8 {
        let shift = 8 - self.bits;
        (raw << shift).cast_signed() >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_width_validation() {
        assert!(IntCodec::new(1).is_err());
        assert!(IntCodec::new(9).is_err());
        assert!(IntCodec::new(4).is_ok());
        assert_eq!(IntCodec::int8().bits(), 8);
        assert_eq!(IntCodec::int4().bits(), 4);
    }

    #[test]
    fn max_codes() {
        assert_eq!(IntCodec::int8().max_code(), 127);
        assert_eq!(IntCodec::int4().max_code(), 7);
    }

    #[test]
    fn quantize_group_maps_max_to_max_code() {
        let c = IntCodec::int8();
        let (codes, scale) = c.quantize_group(&[2.0, -4.0, 1.0]);
        assert_eq!(codes[1], -127);
        assert!((scale - 4.0 / 127.0).abs() < 1e-9);
        assert!((c.dequantize(codes[0], scale) - 2.0).abs() < 0.05);
    }

    #[test]
    fn all_zero_group_is_stable() {
        let c = IntCodec::int4();
        let (codes, scale) = c.quantize_group(&[0.0, 0.0]);
        assert_eq!(codes, vec![0, 0]);
        assert_eq!(scale, 1.0);
        assert_eq!(c.dequantize(0, scale), 0.0);
    }

    #[test]
    fn int4_roundtrip_error_is_bounded() {
        let c = IntCodec::int4();
        let values = [0.9f32, -0.3, 0.05, -1.0, 0.62];
        let (codes, scale) = c.quantize_group(&values);
        for (v, code) in values.iter().zip(&codes) {
            let back = c.dequantize(*code, scale);
            // Max error is half a quantization step.
            assert!((back - v).abs() <= scale / 2.0 + 1e-6, "{v} -> {back}");
        }
    }

    #[test]
    fn storage_roundtrip_sign_extends() {
        let c = IntCodec::int4();
        for code in -7i8..=7 {
            let raw = c.to_storage(code);
            assert!(raw <= 0x0F);
            assert_eq!(c.from_storage(raw), code);
        }
        let c8 = IntCodec::int8();
        for code in [-128i8, -1, 0, 1, 127] {
            assert_eq!(c8.from_storage(c8.to_storage(code)), code);
        }
    }
}
