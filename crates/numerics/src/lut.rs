//! Dequantization LUT content.
//!
//! DECA's dequantization stage is an array of `L` "big" LUTs, each holding
//! 256 BF16 entries and internally split into four 64-entry sub-LUTs with one
//! read port each (§6.1). The *content* of those LUTs is a pure function of
//! the quantized format; this module builds it. The geometry (how many
//! parallel lookups per cycle a given bit-width allows) lives with the
//! accelerator model in the `deca` crate.

use crate::{Bf16, IntCodec, QuantFormat};

/// The 256-entry BF16 dequantization table for one quantized format.
///
/// For formats narrower than 8 bits only the low `2^bits` entries are
/// meaningful; the rest are replicated so that any 8-bit address decodes to a
/// valid value (the paper notes redundant entries for narrow formats).
///
/// ```
/// use deca_numerics::{DequantTable, QuantFormat};
/// let lut = DequantTable::for_format(QuantFormat::Fp4);
/// assert_eq!(lut.lookup(0b0001).to_f32(), 0.5); // FP4 code 1 = 0.5
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DequantTable {
    format: QuantFormat,
    entries: Vec<Bf16>,
}

impl DequantTable {
    /// Number of entries in a big LUT.
    pub const ENTRIES: usize = 256;
    /// Number of sub-LUTs per big LUT.
    pub const SUB_LUTS: usize = 4;
    /// Entries per sub-LUT.
    pub const SUB_LUT_ENTRIES: usize = Self::ENTRIES / Self::SUB_LUTS;

    /// Builds the table for a quantized format.
    ///
    /// Integer formats are stored *unscaled* (code value as BF16); the group
    /// scale is applied by the scaling stage, exactly as DECA does for
    /// MX-style formats.
    ///
    /// # Panics
    ///
    /// Panics if called for [`QuantFormat::Bf16`], which is never dequantized
    /// through a LUT.
    #[must_use]
    pub fn for_format(format: QuantFormat) -> Self {
        assert!(
            format.bits() <= 8,
            "dequant LUTs only exist for formats of at most 8 bits, got {format}"
        );
        let entries: Vec<Bf16> = match format {
            QuantFormat::Bf16 => unreachable!("checked above"),
            QuantFormat::Int8 => (0..Self::ENTRIES)
                .map(|c| {
                    let codec = IntCodec::int8();
                    Bf16::from_f32(f32::from(codec.from_storage(c as u8)))
                })
                .collect(),
            QuantFormat::Int4 => (0..Self::ENTRIES)
                .map(|c| {
                    let codec = IntCodec::int4();
                    Bf16::from_f32(f32::from(codec.from_storage((c % 16) as u8)))
                })
                .collect(),
            float_fmt => {
                let mf = float_fmt
                    .minifloat()
                    .expect("non-integer sub-8-bit formats have a minifloat codec");
                let native = 1usize << mf.bits();
                (0..Self::ENTRIES)
                    .map(|c| mf.decode_bf16((c % native) as u8))
                    .collect()
            }
        };
        DequantTable { format, entries }
    }

    /// The format this table dequantizes.
    #[must_use]
    pub fn format(&self) -> QuantFormat {
        self.format
    }

    /// Looks up the BF16 value for a code.
    #[must_use]
    pub fn lookup(&self, code: u8) -> Bf16 {
        self.entries[usize::from(code)]
    }

    /// All 256 entries (including the replicated ones for narrow formats).
    #[must_use]
    pub fn entries(&self) -> &[Bf16] {
        &self.entries
    }

    /// The entries of one 64-entry sub-LUT (`index` in `0..4`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    #[must_use]
    pub fn sub_lut(&self, index: usize) -> &[Bf16] {
        assert!(index < Self::SUB_LUTS, "sub-LUT index {index} out of range");
        let start = index * Self::SUB_LUT_ENTRIES;
        &self.entries[start..start + Self::SUB_LUT_ENTRIES]
    }

    /// Number of *distinct* codes the format actually uses (`2^bits`).
    #[must_use]
    pub fn native_codes(&self) -> usize {
        1usize << self.format.bits().min(8)
    }

    /// How many independent lookups one big LUT can serve per cycle for this
    /// format: 1 for 8-bit and 7-bit codes that span sub-LUT boundaries is
    /// conservative, so the paper's rule is used directly — `1` for 8-bit,
    /// `2` for 7-bit, `4` for 6-bit and below (§6.1).
    #[must_use]
    pub fn lookups_per_lut_per_cycle(&self) -> usize {
        lookups_per_lut_per_cycle(self.format.bits())
    }
}

/// The paper's rule for parallel lookups from one big LUT per cycle as a
/// function of the code bit-width: `1` for 8 bits, `2` for 7 bits, `4` for 6
/// bits or fewer.
#[must_use]
pub fn lookups_per_lut_per_cycle(bits: u8) -> usize {
    match bits {
        8 => 1,
        7 => 2,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Minifloat;

    #[test]
    fn bf8_table_matches_codec() {
        let lut = DequantTable::for_format(QuantFormat::Bf8);
        let mf = Minifloat::bf8();
        for code in 0..=255u8 {
            let direct = mf.decode(code);
            let via_lut = lut.lookup(code).to_f32();
            if direct.is_nan() {
                assert!(via_lut.is_nan());
            } else {
                assert_eq!(via_lut, direct, "code {code:#x}");
            }
        }
    }

    #[test]
    fn fp4_table_replicates_16_entries() {
        let lut = DequantTable::for_format(QuantFormat::Fp4);
        assert_eq!(lut.native_codes(), 16);
        for code in 0..=255u8 {
            assert_eq!(
                lut.lookup(code).to_f32(),
                lut.lookup(code % 16).to_f32(),
                "entries must repeat with period 16"
            );
        }
        assert_eq!(lut.lookup(0).to_f32(), 0.0);
        assert_eq!(lut.lookup(0b0111).to_f32(), 6.0); // FP4 max
    }

    #[test]
    fn int4_table_sign_extends() {
        let lut = DequantTable::for_format(QuantFormat::Int4);
        assert_eq!(lut.lookup(0x1).to_f32(), 1.0);
        assert_eq!(lut.lookup(0xF).to_f32(), -1.0);
        assert_eq!(lut.lookup(0x8).to_f32(), -8.0);
    }

    #[test]
    fn int8_table_sign_extends() {
        let lut = DequantTable::for_format(QuantFormat::Int8);
        assert_eq!(lut.lookup(1).to_f32(), 1.0);
        assert_eq!(lut.lookup(0xFF).to_f32(), -1.0);
        assert_eq!(lut.lookup(0x80).to_f32(), -128.0);
    }

    #[test]
    fn sub_lut_partitioning() {
        let lut = DequantTable::for_format(QuantFormat::Bf8);
        assert_eq!(lut.entries().len(), DequantTable::ENTRIES);
        let mut reassembled = Vec::new();
        for i in 0..DequantTable::SUB_LUTS {
            assert_eq!(lut.sub_lut(i).len(), DequantTable::SUB_LUT_ENTRIES);
            reassembled.extend_from_slice(lut.sub_lut(i));
        }
        assert_eq!(reassembled.len(), DequantTable::ENTRIES);
        assert_eq!(&reassembled[..], lut.entries());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_lut_index_out_of_range_panics() {
        let lut = DequantTable::for_format(QuantFormat::Bf8);
        let _ = lut.sub_lut(4);
    }

    #[test]
    #[should_panic(expected = "at most 8 bits")]
    fn bf16_has_no_lut() {
        let _ = DequantTable::for_format(QuantFormat::Bf16);
    }

    #[test]
    fn parallel_lookup_rule() {
        assert_eq!(lookups_per_lut_per_cycle(8), 1);
        assert_eq!(lookups_per_lut_per_cycle(7), 2);
        assert_eq!(lookups_per_lut_per_cycle(6), 4);
        assert_eq!(lookups_per_lut_per_cycle(4), 4);
        assert_eq!(lookups_per_lut_per_cycle(1), 4);
        let lut = DequantTable::for_format(QuantFormat::Bf8);
        assert_eq!(lut.lookups_per_lut_per_cycle(), 1);
        let lut = DequantTable::for_format(QuantFormat::Fp4);
        assert_eq!(lut.lookups_per_lut_per_cycle(), 4);
    }

    #[test]
    fn custom_format_lut() {
        let fmt = QuantFormat::Custom {
            exp_bits: 3,
            man_bits: 2,
        };
        let lut = DequantTable::for_format(fmt);
        assert_eq!(lut.native_codes(), 64);
        assert_eq!(lut.format(), fmt);
        // Code 0 is zero for every float format.
        assert_eq!(lut.lookup(0).to_f32(), 0.0);
    }
}
