//! Property-based tests for the pluggable decompression engines.
//!
//! The contract every backend must honor: for any consistent compressed
//! tile, under every compression scheme (dense and sparse, every quantized
//! format), the engine's output is **bit-identical** to the scalar
//! reference's — and inconsistent tiles are rejected with
//! `CompressError::CorruptTile`, never silently decompressed.

use deca_compress::{
    generator::WeightGenerator, pack_codes, AutoTunedEngine, Bitmask, CalibrationTable,
    CompressError, CompressedTile, CompressionScheme, Compressor, DecompressEngine,
    DecompressScratch, Decompressor, DenseTile, EngineKind, SimdEngine, TILE_ELEMS,
};
use deca_numerics::QuantFormat;
use proptest::prelude::*;

/// Every quantized format × dense/sparse combination the substrate
/// supports, indexed for proptest.
fn scheme_for(format_idx: usize, density: f64) -> CompressionScheme {
    let formats = [
        QuantFormat::Bf16,
        QuantFormat::Bf8,
        QuantFormat::E4m3,
        QuantFormat::Fp4,
        QuantFormat::Int8,
        QuantFormat::Int4,
        QuantFormat::Custom {
            exp_bits: 3,
            man_bits: 2,
        },
    ];
    let format = formats[format_idx % formats.len()];
    // Group quantization for the formats that need an external scale
    // (MX-style 4-bit and integer codes), none otherwise.
    let group = match format {
        QuantFormat::Fp4 | QuantFormat::Int8 | QuantFormat::Int4 => Some(32),
        _ => None,
    };
    CompressionScheme::new(format, density, group).expect("valid scheme")
}

fn decompress_with(engine: &dyn DecompressEngine, tile: &CompressedTile) -> DenseTile {
    let mut out = DenseTile::zero();
    let mut scratch = DecompressScratch::new();
    engine
        .decompress_tile_into(tile, &mut scratch, &mut out)
        .expect("engine decompression");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three engines produce bit-identical dense tiles to the scalar
    /// reference across every scheme (dense + sparse, all formats).
    #[test]
    fn engines_are_bit_identical_to_the_reference(
        seed in 0u64..500,
        format_idx in 0usize..7,
        density_pct in 5u32..=100,
    ) {
        let scheme = scheme_for(format_idx, f64::from(density_pct) / 100.0);
        let tile = WeightGenerator::new(seed).dense_matrix(16, 32).tile(0, 0);
        let compressed = Compressor::new(scheme).compress_tile(&tile).expect("compress");
        let reference = Decompressor::new().decompress_tile(&compressed).expect("reference");
        for kind in EngineKind::all() {
            let out = decompress_with(kind.build().as_ref(), &compressed);
            for (pos, (a, b)) in reference.elements().iter().zip(out.elements()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{} disagrees at position {} under {}", kind, pos, scheme
                );
            }
        }
    }

    /// Whole-matrix decompression (including the threaded fan-out path and
    /// ragged edge tiles) agrees with the reference for every engine.
    #[test]
    fn matrix_decompression_is_engine_independent(
        seed in 0u64..200,
        rows in 1usize..70,
        cols in 1usize..70,
        format_idx in 0usize..7,
        sparse in any::<bool>(),
    ) {
        let density = if sparse { 0.3 } else { 1.0 };
        let scheme = scheme_for(format_idx, density);
        let m = WeightGenerator::new(seed).dense_matrix(rows, cols);
        let cm = Compressor::new(scheme).compress_matrix(&m).expect("compress");
        let reference = Decompressor::new().decompress_matrix(&cm).expect("reference");
        for kind in EngineKind::all() {
            let out = kind.build().decompress_matrix(&cm).expect("engine");
            prop_assert_eq!(&out, &reference, "{} under {}", kind, scheme);
        }
    }

    /// The streaming scratch/output buffers can be reused across arbitrary
    /// scheme sequences without leaking state between tiles.
    #[test]
    fn buffer_reuse_never_leaks_between_tiles(
        seed_a in 0u64..200,
        seed_b in 0u64..200,
        fmt_a in 0usize..7,
        fmt_b in 0usize..7,
    ) {
        let dense = scheme_for(fmt_a, 1.0);
        let sparse = scheme_for(fmt_b, 0.2);
        let tile_a = WeightGenerator::new(seed_a).dense_matrix(16, 32).tile(0, 0);
        let tile_b = WeightGenerator::new(seed_b).dense_matrix(16, 32).tile(0, 0);
        let a = Compressor::new(dense).compress_tile(&tile_a).expect("compress");
        let b = Compressor::new(sparse).compress_tile(&tile_b).expect("compress");
        let reference = Decompressor::new().decompress_tile(&b).expect("reference");
        for kind in EngineKind::all() {
            let engine = kind.build();
            let mut out = DenseTile::zero();
            let mut scratch = DecompressScratch::new();
            engine.decompress_tile_into(&a, &mut scratch, &mut out).expect("dense tile");
            engine.decompress_tile_into(&b, &mut scratch, &mut out).expect("sparse tile");
            prop_assert_eq!(&out, &reference, "{}", kind);
        }
    }

    /// The SIMD engine stays bit-identical whichever path runs: the
    /// feature-detected vector kernels and the forced portable fallback
    /// (the path non-AVX2 hosts always take) agree with the reference on
    /// every scheme.
    #[test]
    fn simd_fallback_is_bit_identical_to_the_reference(
        seed in 0u64..500,
        format_idx in 0usize..7,
        density_pct in 5u32..=100,
    ) {
        let scheme = scheme_for(format_idx, f64::from(density_pct) / 100.0);
        let tile = WeightGenerator::new(seed).dense_matrix(16, 32).tile(0, 0);
        let compressed = Compressor::new(scheme).compress_tile(&tile).expect("compress");
        let reference = Decompressor::new().decompress_tile(&compressed).expect("reference");
        for engine in [SimdEngine::new(), SimdEngine::portable()] {
            let out = decompress_with(&engine, &compressed);
            for (pos, (a, b)) in reference.elements().iter().zip(out.elements()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "simd (avx2={}) disagrees at position {} under {}",
                    engine.uses_avx2(), pos, scheme
                );
            }
        }
    }

    /// Calibration tables built from a fixed override are fully
    /// deterministic — identical tables, identical per-class choices — and
    /// the auto-tuned engine they drive keeps the bit-exact contract for
    /// every override and worker count.
    #[test]
    fn auto_tuner_fixed_override_is_deterministic(
        kind_idx in 0usize..3,
        threads in 1usize..5,
        seed in 0u64..200,
        format_idx in 0usize..7,
    ) {
        let kind = [EngineKind::Scalar, EngineKind::WordParallel, EngineKind::Simd][kind_idx];
        let table = CalibrationTable::fixed(kind, threads);
        prop_assert_eq!(&table, &CalibrationTable::fixed(kind, threads));
        for lut in [false, true] {
            for sparse in [false, true] {
                for scaled in [false, true] {
                    prop_assert_eq!(table.tile_choice(lut, sparse, scaled), kind);
                }
            }
        }
        prop_assert_eq!(table.matrix_threads(), threads);
        let engine = AutoTunedEngine::with_table(table);
        let scheme = scheme_for(format_idx, 0.4);
        let m = WeightGenerator::new(seed).dense_matrix(40, 50);
        let cm = Compressor::new(scheme).compress_matrix(&m).expect("compress");
        let reference = Decompressor::new().decompress_matrix(&cm).expect("reference");
        prop_assert_eq!(engine.decompress_matrix(&cm).expect("engine"), reference);
    }
}

/// A sparse tile whose bitmask claims more nonzeros than the payload stores
/// (a corrupted weight stream).
fn forged_popcount_mismatch() -> CompressedTile {
    let scheme = CompressionScheme::bf8_sparse(0.5);
    let mut mask = Bitmask::new(TILE_ELEMS);
    for i in 0..256 {
        mask.set(i, true);
    }
    let codes: Vec<u16> = (0..200u16).collect(); // 56 codes short
    let bytes = pack_codes(&codes, 8);
    CompressedTile::new_unchecked(scheme, bytes, codes.len(), Some(mask), vec![])
}

/// A dense tile that stores fewer than 512 codes.
fn forged_short_dense() -> CompressedTile {
    let scheme = CompressionScheme::bf8_dense();
    let codes: Vec<u16> = (0..400u16).collect();
    let bytes = pack_codes(&codes, 8);
    CompressedTile::new_unchecked(scheme, bytes, codes.len(), None, vec![])
}

/// A group-quantized tile whose scale vector was truncated (or stripped):
/// indexing `scales[pos / group]` must never be reachable.
fn forged_scale_count(scales: usize) -> CompressedTile {
    let scheme = CompressionScheme::mxfp4(); // needs 512/32 = 16 scales
    let codes = vec![0u16; TILE_ELEMS];
    let bytes = pack_codes(&codes, 4);
    CompressedTile::new_unchecked(
        scheme,
        bytes,
        TILE_ELEMS,
        None,
        vec![deca_numerics::mx::ScaleE8M0::ONE; scales],
    )
}

/// A sparse tile whose bitmask covers more than one tile's worth of
/// positions, with a bit set past position 511: expansion must never write
/// out of bounds.
fn forged_oversized_bitmask() -> CompressedTile {
    let scheme = CompressionScheme::bf8_sparse(0.5);
    let mut mask = Bitmask::new(TILE_ELEMS + 64);
    mask.set(0, true);
    mask.set(TILE_ELEMS + 10, true);
    let codes: Vec<u16> = vec![1, 2];
    let bytes = pack_codes(&codes, 8);
    CompressedTile::new_unchecked(scheme, bytes, codes.len(), Some(mask), vec![])
}

#[test]
fn every_engine_rejects_a_popcount_mismatch() {
    let forged = forged_popcount_mismatch();
    for kind in EngineKind::all() {
        let engine = kind.build();
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        let err = engine
            .decompress_tile_into(&forged, &mut scratch, &mut out)
            .expect_err("popcount mismatch must be rejected");
        assert!(
            matches!(err, CompressError::CorruptTile { .. }),
            "{kind}: {err}"
        );
    }
}

#[test]
fn every_engine_rejects_a_short_dense_tile() {
    let forged = forged_short_dense();
    for kind in EngineKind::all() {
        let engine = kind.build();
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        let err = engine
            .decompress_tile_into(&forged, &mut scratch, &mut out)
            .expect_err("short dense payload must be rejected");
        assert!(
            matches!(err, CompressError::CorruptTile { .. }),
            "{kind}: {err}"
        );
    }
}

#[test]
fn every_engine_rejects_corrupt_scale_vectors() {
    // Truncated (would index out of bounds) and stripped (would silently
    // decompress unscaled) scale vectors must both fault.
    for scales in [1, 0, 20] {
        let forged = forged_scale_count(scales);
        for kind in EngineKind::all() {
            let engine = kind.build();
            let mut out = DenseTile::zero();
            let mut scratch = DecompressScratch::new();
            let err = engine
                .decompress_tile_into(&forged, &mut scratch, &mut out)
                .expect_err("corrupt scale vector must be rejected");
            assert!(
                matches!(err, CompressError::CorruptTile { .. }),
                "{kind} with {scales} scales: {err}"
            );
        }
    }
}

#[test]
fn every_engine_rejects_an_oversized_bitmask() {
    let forged = forged_oversized_bitmask();
    for kind in EngineKind::all() {
        let engine = kind.build();
        let mut out = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        let err = engine
            .decompress_tile_into(&forged, &mut scratch, &mut out)
            .expect_err("oversized bitmask must be rejected");
        assert!(
            matches!(err, CompressError::CorruptTile { .. }),
            "{kind}: {err}"
        );
    }
}

#[test]
fn corrupt_tiles_abort_matrix_decompression() {
    // A matrix containing one forged tile must fail for every engine,
    // including the threaded fan-out (errors cross the thread boundary).
    let scheme = CompressionScheme::bf8_dense();
    let good = Compressor::new(scheme)
        .compress_tile(&WeightGenerator::new(1).dense_matrix(16, 32).tile(0, 0))
        .expect("compress");
    let tiles = vec![good.clone(), forged_short_dense(), good.clone(), good];
    let cm = deca_compress::CompressedMatrix::new(scheme, 32, 64, tiles).expect("matrix");
    for kind in EngineKind::all() {
        let err = kind
            .build()
            .decompress_matrix(&cm)
            .expect_err("forged tile must abort the matrix");
        assert!(matches!(err, CompressError::CorruptTile { .. }), "{kind}");
    }
}
