//! Property-based tests for the compression substrate.
//!
//! These exercise the core invariants the rest of the system relies on:
//! bit-exact container round-trips, preservation of the sparsity pattern,
//! and bounded quantization error.

use deca_compress::{
    generator::WeightGenerator, Bitmask, CompressionScheme, Compressor, Decompressor, DenseTile,
    TILE_COLS, TILE_ELEMS, TILE_ROWS,
};
use proptest::prelude::*;

fn tile_from_sparse_values(values: &[f32]) -> DenseTile {
    assert_eq!(values.len(), TILE_ELEMS);
    DenseTile::from_f32(values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitmask byte serialization round-trips for arbitrary patterns and
    /// lengths.
    #[test]
    fn bitmask_bytes_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..600)) {
        let mut mask = Bitmask::new(bits.len());
        for (i, b) in bits.iter().enumerate() {
            mask.set(i, *b);
        }
        let bytes = mask.to_bytes();
        let back = Bitmask::from_bytes(&bytes, bits.len());
        prop_assert_eq!(&back, &mask);
        prop_assert_eq!(back.popcount(), bits.iter().filter(|b| **b).count());
    }

    /// The exclusive prefix sums and expansion indices of any bitmask agree.
    #[test]
    fn bitmask_prefix_sums_are_consistent(bits in proptest::collection::vec(any::<bool>(), 1..600)) {
        let mut mask = Bitmask::new(bits.len());
        for (i, b) in bits.iter().enumerate() {
            mask.set(i, *b);
        }
        let sums = mask.prefix_sums();
        let idx = mask.expansion_indices();
        prop_assert_eq!(sums.len(), bits.len() + 1);
        for (i, entry) in idx.iter().enumerate() {
            if let Some(k) = entry {
                prop_assert_eq!(*k, sums[i]);
            } else {
                prop_assert_eq!(sums[i + 1], sums[i]);
            }
        }
        // Windows of any size partition the popcount.
        let total: usize = mask.window_popcounts(7).iter().sum();
        prop_assert_eq!(total, mask.popcount());
    }

    /// The zero/nonzero pattern of a tile survives any sparse compression
    /// scheme (no nonzero is dropped, no zero is invented), provided pruning
    /// is disabled so the input pattern is authoritative.
    #[test]
    fn sparsity_pattern_is_preserved(
        seed in 0u64..1000,
        density in 0.02f64..0.9,
        quantized in any::<bool>(),
    ) {
        let gen = WeightGenerator::new(seed);
        let matrix = gen.sparse_matrix(TILE_ROWS, TILE_COLS, density);
        let tile = matrix.tile(0, 0);
        let scheme = if quantized {
            CompressionScheme::bf8_sparse(density.min(0.95))
        } else {
            CompressionScheme::bf16_sparse(density.min(0.95))
        };
        let compressed = Compressor::new(scheme).without_pruning().compress_tile(&tile).unwrap();
        let restored = Decompressor::new().decompress_tile(&compressed).unwrap();
        // Half of E5M2's smallest subnormal: only weights below this may
        // legitimately flush to zero under BF8 quantization.
        let flush_threshold = deca_numerics::Minifloat::bf8().min_subnormal() / 2.0 * 1.01;
        for r in 0..TILE_ROWS {
            for c in 0..TILE_COLS {
                let orig = tile.get(r, c);
                let back = restored.get(r, c);
                if orig.is_zero() {
                    prop_assert!(back.is_zero(), "zero became nonzero at ({}, {})", r, c);
                } else if back.is_zero() {
                    prop_assert!(
                        quantized && orig.to_f32().abs() <= flush_threshold,
                        "nonzero {} flushed to zero at ({}, {})", orig.to_f32(), r, c
                    );
                }
            }
        }
    }

    /// BF16-sparse compression is bit-exact for the surviving weights.
    #[test]
    fn bf16_sparse_is_lossless(seed in 0u64..1000, density in 0.05f64..1.0) {
        let gen = WeightGenerator::new(seed);
        let matrix = gen.sparse_matrix(TILE_ROWS, TILE_COLS, density);
        let tile = matrix.tile(0, 0);
        let scheme = CompressionScheme::bf16_sparse(0.99);
        let compressed = Compressor::new(scheme).without_pruning().compress_tile(&tile).unwrap();
        let restored = Decompressor::new().decompress_tile(&compressed).unwrap();
        for (a, b) in tile.elements().iter().zip(restored.elements()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// BF8 quantization error is bounded by E5M2's half-ULP relative error
    /// (12.5 %) for every element of every tile.
    #[test]
    fn bf8_error_is_bounded(seed in 0u64..1000) {
        let gen = WeightGenerator::new(seed);
        let tile = gen.dense_matrix(TILE_ROWS, TILE_COLS).tile(0, 0);
        let compressed = Compressor::new(CompressionScheme::bf8_dense()).compress_tile(&tile).unwrap();
        let restored = Decompressor::new().decompress_tile(&compressed).unwrap();
        // Below the normal range the error bound is absolute (half a
        // subnormal step) rather than relative.
        let half_subnormal_step = deca_numerics::Minifloat::bf8().min_subnormal() / 2.0 * 1.01;
        for (a, b) in tile.elements().iter().zip(restored.elements()) {
            let orig = a.to_f32();
            let back = b.to_f32();
            if orig != 0.0 {
                let rel_ok = ((back - orig) / orig).abs() <= 0.13;
                let abs_ok = (back - orig).abs() <= half_subnormal_step;
                prop_assert!(rel_ok || abs_ok, "{} -> {}", orig, back);
            }
        }
    }

    /// The compressed byte size of any tile matches the scheme's analytic
    /// expectation when the tile's density equals the scheme density.
    #[test]
    fn byte_size_matches_scheme_accounting(density_pct in 1u32..=100) {
        let density = f64::from(density_pct) / 100.0;
        let gen = WeightGenerator::new(u64::from(density_pct));
        let tile = gen.dense_matrix(TILE_ROWS, TILE_COLS).tile(0, 0);
        let scheme = if density < 1.0 {
            CompressionScheme::bf8_sparse(density)
        } else {
            CompressionScheme::bf8_dense()
        };
        let compressed = Compressor::new(scheme).compress_tile(&tile).unwrap();
        // Magnitude pruning keeps round(512·d) values, so sizes match the
        // analytic model to within one element.
        let expected = scheme.expected_tile_bytes();
        let actual = compressed.byte_size() as f64;
        prop_assert!((actual - expected).abs() <= 2.0,
            "scheme {} expected {} got {}", scheme, expected, actual);
    }

    /// Compressing an already-decompressed tile again is lossless
    /// (idempotence of quantization).
    #[test]
    fn recompression_is_idempotent(seed in 0u64..500) {
        let gen = WeightGenerator::new(seed);
        let tile = gen.dense_matrix(TILE_ROWS, TILE_COLS).tile(0, 0);
        let scheme = CompressionScheme::bf8_sparse(0.4);
        let comp = Compressor::new(scheme);
        let dec = Decompressor::new();
        let once = dec.decompress_tile(&comp.compress_tile(&tile).unwrap()).unwrap();
        let twice = dec.decompress_tile(&comp.without_pruning().compress_tile(&once).unwrap()).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// Pack/unpack of arbitrary tiles built from explicit values keeps every
    /// element addressable at its original (row, col).
    #[test]
    fn element_addressing_is_row_major(row in 0usize..TILE_ROWS, col in 0usize..TILE_COLS) {
        let mut values = vec![0.0f32; TILE_ELEMS];
        values[row * TILE_COLS + col] = 1.5;
        let tile = tile_from_sparse_values(&values);
        prop_assert_eq!(tile.get(row, col).to_f32(), 1.5);
        prop_assert_eq!(tile.nonzero_count(), 1);
        let scheme = CompressionScheme::bf16_sparse(0.5);
        let compressed = Compressor::new(scheme).without_pruning().compress_tile(&tile).unwrap();
        let restored = Decompressor::new().decompress_tile(&compressed).unwrap();
        prop_assert_eq!(restored.get(row, col).to_f32(), 1.5);
    }
}
