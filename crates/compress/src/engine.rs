//! Pluggable streaming decompression engines (Fig. 1, right).
//!
//! The paper's central observation is that *online weight decompression is
//! the hot loop of compressed LLM inference*: every weight tile fetched from
//! memory must be dequantized, expanded and scaled before the TMUL can
//! consume it. This module turns the single hardcoded scalar path into an
//! enumerable backend axis behind one trait.
//!
//! # The streaming, zero-copy contract
//!
//! [`DecompressEngine::decompress_tile_into`] never allocates on the hot
//! path: the caller owns a reusable output [`DenseTile`] and a
//! [`DecompressScratch`] holding the unpacked-code and group-scale buffers,
//! and every backend is required to produce **bit-exact** output — the same
//! 512 BF16 bit patterns the scalar reference produces. This mirrors the
//! hardware contract of Fig. 1: whatever circuit performs dequantization,
//! the TMUL must see identical dense BF16 tiles.
//!
//! # Backends and their Fig. 1 correspondence
//!
//! * [`ScalarEngine`] — the functional ground truth: one dense position at a
//!   time, a running nonzero counter standing in for the prefix sum. This is
//!   the per-element loop a naive CPU implementation executes.
//! * [`WordParallelEngine`] — the software analogue of DECA's POPCNT +
//!   parallel-prefix-sum + crossbar datapath (§6.1): it walks the bitmask as
//!   64-bit words, skips zero words entirely, locates nonzeros with
//!   count-trailing-zeros, and dequantizes through a precomputed per-format
//!   LUT array instead of re-deriving tables.
//! * [`ParallelMatrixEngine`] — whole-matrix decompression fanned out over
//!   OS threads with `std::thread::scope`, one disjoint band of tile rows
//!   per worker: the software stand-in for one DECA PE per core working on a
//!   Parlooper partition.
//!
//! [`EngineKind`] names the backends so that higher layers (executor,
//! simulator, LLM estimator, benchmarks) can record *which* engine produced
//! or validated a result.

use deca_numerics::{Bf16, DequantTable, QuantFormat};

use crate::{
    CompressError, CompressedMatrix, CompressedTile, DenseTile, WeightMatrix, TILE_COLS,
    TILE_ELEMS, TILE_ROWS,
};

/// Precomputed dequantization tables for every ≤8-bit quantized format,
/// indexed by format — the replacement for the interior-mutable linear-scan
/// LUT cache the reference decompressor used to carry.
///
/// All tables are built eagerly at construction (a few KB in total), so
/// lookups are a slice index, the structure is `Sync`, and no tile ever pays
/// for table construction.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatLuts {
    tables: Vec<DequantTable>,
}

/// Named formats with a fixed slot (everything except `Custom`).
const NAMED_SLOTS: usize = 5;

fn lut_slot(format: QuantFormat) -> Option<usize> {
    match format {
        QuantFormat::Bf16 => None,
        QuantFormat::Bf8 => Some(0),
        QuantFormat::E4m3 => Some(1),
        QuantFormat::Fp4 => Some(2),
        QuantFormat::Int8 => Some(3),
        QuantFormat::Int4 => Some(4),
        QuantFormat::Custom { exp_bits, man_bits } => custom_combinations()
            .position(|combo| combo == (exp_bits, man_bits))
            .map(|i| NAMED_SLOTS + i),
    }
}

/// Every valid `Custom { exp_bits, man_bits }` combination that fits in a
/// LUT (1 sign + exp + man ≤ 8 bits), in deterministic order.
fn custom_combinations() -> impl Iterator<Item = (u8, u8)> {
    (1u8..=5).flat_map(|e| (0u8..=6).filter_map(move |m| (1 + e + m <= 8).then_some((e, m))))
}

impl FormatLuts {
    /// Builds the tables for every supported ≤8-bit format.
    #[must_use]
    pub fn precomputed() -> Self {
        let mut tables = vec![
            DequantTable::for_format(QuantFormat::Bf8),
            DequantTable::for_format(QuantFormat::E4m3),
            DequantTable::for_format(QuantFormat::Fp4),
            DequantTable::for_format(QuantFormat::Int8),
            DequantTable::for_format(QuantFormat::Int4),
        ];
        for (exp_bits, man_bits) in custom_combinations() {
            tables.push(DequantTable::for_format(QuantFormat::Custom {
                exp_bits,
                man_bits,
            }));
        }
        FormatLuts { tables }
    }

    /// The process-wide shared instance, built once on first use. The
    /// tables are immutable and a pure function of the formats, so every
    /// engine and decompressor shares them instead of re-deriving ~30
    /// tables per construction.
    #[must_use]
    pub fn shared() -> &'static FormatLuts {
        static SHARED: std::sync::OnceLock<FormatLuts> = std::sync::OnceLock::new();
        SHARED.get_or_init(FormatLuts::precomputed)
    }

    /// The dequantization table for `format`, or `None` for BF16 (which
    /// bypasses the LUTs entirely).
    ///
    /// # Panics
    ///
    /// Panics for non-BF16 formats wider than 8 bits, which have no LUT —
    /// the same contract as [`DequantTable::for_format`].
    #[must_use]
    pub fn table(&self, format: QuantFormat) -> Option<&DequantTable> {
        if format == QuantFormat::Bf16 {
            return None;
        }
        let slot =
            lut_slot(format).unwrap_or_else(|| panic!("no dequantization LUT for format {format}"));
        Some(&self.tables[slot])
    }

    /// Dequantizes one code of `format` (BF16 codes pass through as raw bit
    /// patterns), exactly as the reference decompressor does.
    #[must_use]
    pub fn dequantize(&self, format: QuantFormat, code: u16) -> Bf16 {
        match self.table(format) {
            None => Bf16::from_bits(code),
            Some(table) => table.lookup(code as u8),
        }
    }
}

impl Default for FormatLuts {
    fn default() -> Self {
        FormatLuts::precomputed()
    }
}

/// Reusable scratch buffers for streaming decompression: the unpacked
/// nonzero codes and the per-group scales promoted to BF16. Create one per
/// worker and pass it to every [`DecompressEngine::decompress_tile_into`]
/// call — no per-tile allocation survives after the buffers warm up.
#[derive(Debug, Default, Clone)]
pub struct DecompressScratch {
    /// Unpacked nonzero codes of the tile being decompressed.
    codes: Vec<u16>,
    /// Per-group scale factors as BF16 (empty unless group-quantized).
    group_scales: Vec<Bf16>,
}

impl DecompressScratch {
    /// Creates empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        DecompressScratch::default()
    }

    /// The codes unpacked by the most recent tile decompression.
    #[must_use]
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Unpacks a tile's nonzero codes into this scratch's code buffer and
    /// returns them — the entry point for external streaming consumers
    /// (e.g. the vOp pipeline) that share the zero-copy contract.
    pub fn unpack<'s>(&'s mut self, tile: &CompressedTile) -> &'s [u16] {
        tile.unpack_nonzeros_into(&mut self.codes);
        &self.codes
    }
}

/// A streaming tile/matrix decompression backend.
///
/// Implementations must be bit-exact with respect to [`ScalarEngine`]: for
/// any consistent [`CompressedTile`], `decompress_tile_into` must produce a
/// [`DenseTile`] whose 512 BF16 bit patterns are identical to the scalar
/// reference's, and must reject inconsistent tiles with
/// [`CompressError::CorruptTile`].
pub trait DecompressEngine: std::fmt::Debug + Send + Sync {
    /// A short stable name identifying the backend (used in reports,
    /// benchmark baselines and error messages).
    fn name(&self) -> &'static str;

    /// Decompresses one tile into the caller-provided output buffer using
    /// the caller-provided scratch space. The output tile is fully
    /// overwritten (zeros included).
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::CorruptTile`] if the tile's memory
    /// structures disagree (bitmask popcount vs. stored codes, dense code
    /// count vs. tile size).
    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError>;

    /// Decompresses a whole matrix into a caller-provided dense matrix,
    /// streaming tile by tile through one reused tile buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidShape`] if `out` does not match the
    /// matrix dimensions, and propagates tile-level errors.
    fn decompress_matrix_into(
        &self,
        matrix: &CompressedMatrix,
        out: &mut WeightMatrix,
    ) -> Result<(), CompressError> {
        check_output_shape(matrix, out)?;
        let mut tile = DenseTile::zero();
        let mut scratch = DecompressScratch::new();
        for tr in 0..matrix.tile_rows() {
            for tc in 0..matrix.tile_cols() {
                self.decompress_tile_into(matrix.tile(tr, tc), &mut scratch, &mut tile)?;
                store_tile(out, tr, tc, &tile);
            }
        }
        Ok(())
    }

    /// Convenience wrapper allocating the output matrix.
    ///
    /// # Errors
    ///
    /// Propagates tile-level errors.
    fn decompress_matrix(&self, matrix: &CompressedMatrix) -> Result<WeightMatrix, CompressError> {
        let mut out = WeightMatrix::zeros(matrix.rows(), matrix.cols());
        self.decompress_matrix_into(matrix, &mut out)?;
        Ok(out)
    }
}

fn check_output_shape(matrix: &CompressedMatrix, out: &WeightMatrix) -> Result<(), CompressError> {
    if out.rows() != matrix.rows() || out.cols() != matrix.cols() {
        return Err(CompressError::InvalidShape {
            rows: out.rows(),
            cols: out.cols(),
            reason: "output matrix shape does not match the compressed matrix",
        });
    }
    Ok(())
}

/// Writes a decompressed tile into its matrix position, clipping at the
/// matrix edge (tiles past the edge are zero-padded).
fn store_tile(out: &mut WeightMatrix, tr: usize, tc: usize, tile: &DenseTile) {
    let rows = out.rows();
    let cols = out.cols();
    let row_base = tr * TILE_ROWS;
    let band = &mut out.data_mut()[row_base * cols..];
    store_tile_in_band(band, rows - row_base, cols, tc, tile);
}

/// Writes a tile into a band of `band_rows` matrix rows starting at the
/// tile's row base. `band` is the row-major storage of those rows.
fn store_tile_in_band(
    band: &mut [f32],
    band_rows: usize,
    cols: usize,
    tc: usize,
    tile: &DenseTile,
) {
    let col_base = tc * TILE_COLS;
    let tile_cols = TILE_COLS.min(cols.saturating_sub(col_base));
    for (r, row) in tile.elements().chunks_exact(TILE_COLS).enumerate() {
        if r >= band_rows {
            break;
        }
        let dst = &mut band[r * cols + col_base..r * cols + col_base + tile_cols];
        for (d, v) in dst.iter_mut().zip(&row[..tile_cols]) {
            *d = v.to_f32();
        }
    }
}

/// What a backend needs to decompress one validated tile: the shared
/// dequantization table (if any), the scale-group size and the raw scales.
struct TilePlan<'a> {
    table: Option<&'a DequantTable>,
    group: usize,
    scales: &'a [deca_numerics::mx::ScaleE8M0],
}

/// Validates a tile's three memory structures (§5.2) via
/// [`CompressedTile::validate`], unpacks its codes into scratch, and
/// returns the dequantization plan shared by all backends — a corrupted
/// weight stream must fault here, never index out of bounds or silently
/// decompress unscaled.
fn prepare<'a>(
    luts: &'a FormatLuts,
    tile: &'a CompressedTile,
    scratch: &mut DecompressScratch,
) -> Result<TilePlan<'a>, CompressError> {
    tile.validate()?;
    let scheme = tile.scheme();
    tile.unpack_nonzeros_into(&mut scratch.codes);
    Ok(TilePlan {
        table: luts.table(scheme.format()),
        group: scheme.group_size().unwrap_or(usize::MAX),
        scales: tile.scales(),
    })
}

/// The scalar reference backend: per-element dequantize → expand → scale,
/// exactly the semantics of the original `Decompressor` but borrowing the
/// caller's buffers instead of allocating per tile.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScalarEngine;

impl ScalarEngine {
    /// Creates the engine (the per-format LUTs are shared process-wide).
    #[must_use]
    pub fn new() -> Self {
        ScalarEngine
    }

    /// The precomputed per-format LUT array.
    #[must_use]
    pub fn luts(&self) -> &'static FormatLuts {
        FormatLuts::shared()
    }
}

impl DecompressEngine for ScalarEngine {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError> {
        let plan = prepare(self.luts(), tile, scratch)?;
        let value_of = |code: u16| match plan.table {
            Some(t) => t.lookup(code as u8),
            None => Bf16::from_bits(code),
        };
        out.fill_zero();
        if let Some(mask) = tile.bitmask() {
            let mut nz = 0usize;
            for pos in 0..TILE_ELEMS {
                if !mask.get(pos) {
                    continue;
                }
                let mut value = value_of(scratch.codes[nz]);
                if !plan.scales.is_empty() {
                    value = value * plan.scales[pos / plan.group].to_bf16();
                }
                out.set(pos / TILE_COLS, pos % TILE_COLS, value);
                nz += 1;
            }
        } else {
            for (pos, &code) in scratch.codes.iter().enumerate() {
                let mut value = value_of(code);
                if !plan.scales.is_empty() {
                    value = value * plan.scales[pos / plan.group].to_bf16();
                }
                out.set(pos / TILE_COLS, pos % TILE_COLS, value);
            }
        }
        Ok(())
    }
}

/// The word-parallel backend: the software analogue of DECA's POPCNT +
/// prefix-sum + crossbar datapath. The bitmask is consumed as 64-bit words
/// (zero words are skipped outright, nonzeros located with
/// count-trailing-zeros), group scales are promoted to BF16 once per tile,
/// and dequantization indexes the precomputed LUT array directly.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WordParallelEngine;

impl WordParallelEngine {
    /// Creates the engine (the per-format LUTs are shared process-wide).
    #[must_use]
    pub fn new() -> Self {
        WordParallelEngine
    }
}

impl DecompressEngine for WordParallelEngine {
    fn name(&self) -> &'static str {
        "word-parallel"
    }

    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError> {
        let plan = prepare(FormatLuts::shared(), tile, scratch)?;
        let (table, group) = (plan.table, plan.group);
        // Promote the group scales once per tile instead of once per element
        // (bit-exact: the per-element multiply uses the same BF16 value).
        scratch.group_scales.clear();
        scratch
            .group_scales
            .extend(plan.scales.iter().map(|s| s.to_bf16()));
        let group_scales = &scratch.group_scales[..];
        let codes = &scratch.codes[..];
        out.fill_zero();
        let dst = out.elements_mut();
        let value_of = |code: u16| match table {
            Some(t) => t.lookup(code as u8),
            None => Bf16::from_bits(code),
        };
        if let Some(mask) = tile.bitmask() {
            let mut nz = 0usize;
            for (wi, &word) in mask.words().iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let pos = wi * 64 + w.trailing_zeros() as usize;
                    let mut value = value_of(codes[nz]);
                    if !group_scales.is_empty() {
                        value = value * group_scales[pos / group];
                    }
                    dst[pos] = value;
                    nz += 1;
                    w &= w - 1;
                }
            }
        } else if group_scales.is_empty() {
            for (slot, &code) in dst.iter_mut().zip(codes) {
                *slot = value_of(code);
            }
        } else {
            for (pos, (slot, &code)) in dst.iter_mut().zip(codes).enumerate() {
                *slot = value_of(code) * group_scales[pos / group];
            }
        }
        Ok(())
    }
}

/// Whole-matrix decompression fanned out over OS threads: tile rows are
/// split into disjoint bands (each band is a contiguous row-major slice of
/// the output) and each worker streams its bands through an inner
/// [`WordParallelEngine`] with its own scratch and tile buffer.
#[derive(Debug, Default, Clone)]
pub struct ParallelMatrixEngine {
    inner: WordParallelEngine,
    threads: Option<usize>,
}

impl ParallelMatrixEngine {
    /// Creates the engine with as many workers as the host exposes.
    #[must_use]
    pub fn new() -> Self {
        ParallelMatrixEngine {
            inner: WordParallelEngine::new(),
            threads: None,
        }
    }

    /// Caps the worker count (useful for reproducible benchmarking).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = Some(threads);
        self
    }

    fn worker_count(&self, tile_rows: usize) -> usize {
        let available = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        available.clamp(1, tile_rows.max(1))
    }
}

impl DecompressEngine for ParallelMatrixEngine {
    fn name(&self) -> &'static str {
        "parallel-matrix"
    }

    fn decompress_tile_into(
        &self,
        tile: &CompressedTile,
        scratch: &mut DecompressScratch,
        out: &mut DenseTile,
    ) -> Result<(), CompressError> {
        // Single tiles have no fan-out axis; delegate to the inner engine.
        self.inner.decompress_tile_into(tile, scratch, out)
    }

    fn decompress_matrix_into(
        &self,
        matrix: &CompressedMatrix,
        out: &mut WeightMatrix,
    ) -> Result<(), CompressError> {
        check_output_shape(matrix, out)?;
        let rows = matrix.rows();
        let cols = matrix.cols();
        let tile_rows = matrix.tile_rows();
        let tile_cols = matrix.tile_cols();
        let workers = self.worker_count(tile_rows);

        // One band of up to 16 matrix rows per tile row; bands are disjoint
        // contiguous slices of the row-major output, so the scoped threads
        // never alias.
        let bands: Vec<(usize, &mut [f32])> = out
            .data_mut()
            .chunks_mut(TILE_ROWS * cols)
            .enumerate()
            .collect();
        let mut groups: Vec<Vec<(usize, &mut [f32])>> = Vec::new();
        groups.resize_with(workers, Vec::new);
        for (i, band) in bands {
            groups[i % workers].push((i, band));
        }

        let results: Vec<Result<(), CompressError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || {
                        let mut tile = DenseTile::zero();
                        let mut scratch = DecompressScratch::new();
                        for (tr, band) in group {
                            let band_rows = (rows - tr * TILE_ROWS).min(TILE_ROWS);
                            for tc in 0..tile_cols {
                                self.inner.decompress_tile_into(
                                    matrix.tile(tr, tc),
                                    &mut scratch,
                                    &mut tile,
                                )?;
                                store_tile_in_band(band, band_rows, cols, tc, &tile);
                            }
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("decompression worker panicked"))
                .collect()
        });
        results.into_iter().collect()
    }
}

/// The enumerable backend axis: names every provided engine so that higher
/// layers can select one and report which one ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EngineKind {
    /// [`ScalarEngine`] — the per-element functional reference.
    Scalar,
    /// [`WordParallelEngine`] — u64 bitmask words + popcount prefix sums.
    WordParallel,
    /// [`ParallelMatrixEngine`] — scoped-thread fan-out over tile rows.
    ParallelMatrix,
}

impl EngineKind {
    /// Every provided backend, in reference-first order.
    #[must_use]
    pub fn all() -> [EngineKind; 3] {
        [
            EngineKind::Scalar,
            EngineKind::WordParallel,
            EngineKind::ParallelMatrix,
        ]
    }

    /// The backend's stable name (matches [`DecompressEngine::name`]).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Scalar => "scalar",
            EngineKind::WordParallel => "word-parallel",
            EngineKind::ParallelMatrix => "parallel-matrix",
        }
    }

    /// Instantiates the backend.
    #[must_use]
    pub fn build(self) -> Box<dyn DecompressEngine> {
        match self {
            EngineKind::Scalar => Box::new(ScalarEngine::new()),
            EngineKind::WordParallel => Box::new(WordParallelEngine::new()),
            EngineKind::ParallelMatrix => Box::new(ParallelMatrixEngine::new()),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator::WeightGenerator, CompressionScheme, Compressor, Decompressor};

    fn sample_tile(scheme: CompressionScheme, seed: u64) -> CompressedTile {
        let tile = WeightGenerator::new(seed).dense_matrix(16, 32).tile(0, 0);
        Compressor::new(scheme)
            .compress_tile(&tile)
            .expect("compress")
    }

    fn schemes() -> Vec<CompressionScheme> {
        vec![
            CompressionScheme::bf16_dense(),
            CompressionScheme::bf16_sparse(0.3),
            CompressionScheme::bf8_dense(),
            CompressionScheme::bf8_sparse(0.5),
            CompressionScheme::bf8_sparse(0.05),
            CompressionScheme::mxfp4(),
            CompressionScheme::mxfp4_sparse(0.4),
        ]
    }

    #[test]
    fn all_engines_match_the_reference_tile_output() {
        let reference = Decompressor::new();
        for scheme in schemes() {
            let tile = sample_tile(scheme, 31);
            let expected = reference.decompress_tile(&tile).expect("reference");
            for kind in EngineKind::all() {
                let engine = kind.build();
                let mut out = DenseTile::zero();
                let mut scratch = DecompressScratch::new();
                engine
                    .decompress_tile_into(&tile, &mut scratch, &mut out)
                    .expect("engine");
                for (a, b) in expected.elements().iter().zip(out.elements()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{kind} on {scheme}");
                }
            }
        }
    }

    #[test]
    fn output_tile_is_fully_overwritten() {
        // A reused output buffer must not leak values from a previous tile.
        let engine = WordParallelEngine::new();
        let mut scratch = DecompressScratch::new();
        let mut out = DenseTile::zero();
        let dense = sample_tile(CompressionScheme::bf8_dense(), 5);
        engine
            .decompress_tile_into(&dense, &mut scratch, &mut out)
            .expect("dense");
        let sparse = sample_tile(CompressionScheme::bf8_sparse(0.05), 6);
        engine
            .decompress_tile_into(&sparse, &mut scratch, &mut out)
            .expect("sparse");
        let reference = Decompressor::new().decompress_tile(&sparse).expect("ref");
        assert_eq!(out, reference);
    }

    #[test]
    fn matrix_decompression_matches_reference_for_ragged_shapes() {
        let g = WeightGenerator::new(9);
        let m = g.dense_matrix(50, 70); // not tile-aligned on purpose
        let cm = Compressor::new(CompressionScheme::bf8_sparse(0.3))
            .compress_matrix(&m)
            .expect("compress");
        let expected = Decompressor::new().decompress_matrix(&cm).expect("ref");
        for kind in EngineKind::all() {
            let got = kind.build().decompress_matrix(&cm).expect("engine");
            assert_eq!(got, expected, "{kind}");
        }
    }

    #[test]
    fn parallel_engine_thread_cap_is_respected_and_correct() {
        let g = WeightGenerator::new(10);
        let m = g.dense_matrix(128, 96);
        let cm = Compressor::new(CompressionScheme::mxfp4())
            .compress_matrix(&m)
            .expect("compress");
        let expected = Decompressor::new().decompress_matrix(&cm).expect("ref");
        for threads in [1, 2, 7] {
            let engine = ParallelMatrixEngine::new().with_threads(threads);
            assert_eq!(
                engine.decompress_matrix(&cm).expect("engine"),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let g = WeightGenerator::new(11);
        let cm = Compressor::new(CompressionScheme::bf8_dense())
            .compress_matrix(&g.dense_matrix(32, 32))
            .expect("compress");
        let mut wrong = WeightMatrix::zeros(16, 32);
        for kind in EngineKind::all() {
            assert!(matches!(
                kind.build().decompress_matrix_into(&cm, &mut wrong),
                Err(CompressError::InvalidShape { .. })
            ));
        }
    }

    #[test]
    fn format_luts_cover_every_sub_byte_format() {
        let luts = FormatLuts::precomputed();
        for format in [
            QuantFormat::Bf8,
            QuantFormat::E4m3,
            QuantFormat::Fp4,
            QuantFormat::Int8,
            QuantFormat::Int4,
            QuantFormat::Custom {
                exp_bits: 3,
                man_bits: 2,
            },
        ] {
            let table = luts.table(format).expect("table");
            assert_eq!(table.format(), format);
            let direct = DequantTable::for_format(format);
            assert_eq!(table.entries(), direct.entries());
        }
        assert!(luts.table(QuantFormat::Bf16).is_none());
        assert_eq!(
            luts.dequantize(QuantFormat::Bf16, Bf16::ONE.to_bits())
                .to_f32(),
            1.0
        );
    }

    #[test]
    fn engine_kind_labels_round_trip() {
        for kind in EngineKind::all() {
            assert_eq!(kind.build().name(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
    }
}
